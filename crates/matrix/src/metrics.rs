//! Accuracy metrics used throughout the paper's evaluation.
//!
//! All metrics are computed in `f64` regardless of the precision of the
//! factorization being judged, so the measurement never pollutes the
//! measured error. They are the three quantities §3.2 and §3.6 define:
//!
//! - backward error `||A - Q R||_2 / ||A||_2` (Figure 3);
//! - orthogonality `||I - Q^T Q||_2` (Figure 4);
//! - the LLS accuracy metric `||A^T (A x - b)||_2` (Figure 9).

use crate::gemm::{gemm, gemv, Op};
use crate::mat::{Mat, MatRef};
use crate::norms::spectral_norm;

/// Backward error of a QR factorization: `||A - Q R||_2 / ||A||_2`.
pub fn qr_backward_error(a: MatRef<'_, f64>, q: MatRef<'_, f64>, r: MatRef<'_, f64>) -> f64 {
    assert_eq!(q.nrows(), a.nrows(), "q rows");
    assert_eq!(r.ncols(), a.ncols(), "r cols");
    assert_eq!(q.ncols(), r.nrows(), "inner dim");
    let mut e = a.to_owned();
    gemm(-1.0, Op::NoTrans, q, Op::NoTrans, r, 1.0, e.as_mut());
    let na = spectral_norm(a);
    if na == 0.0 {
        return spectral_norm(e.as_ref());
    }
    spectral_norm(e.as_ref()) / na
}

/// Loss of orthogonality: `||I - Q^T Q||_2`.
pub fn orthogonality_error(q: MatRef<'_, f64>) -> f64 {
    let n = q.ncols();
    let mut s: Mat<f64> = Mat::identity(n, n);
    gemm(-1.0, Op::Trans, q, Op::NoTrans, q, 1.0, s.as_mut());
    spectral_norm(s.as_ref())
}

/// The paper's LLS accuracy metric: `||A^T (A x - b)||_2`.
///
/// Zero at the exact least-squares solution (normal equations residual).
pub fn lls_accuracy(a: MatRef<'_, f64>, x: &[f64], b: &[f64]) -> f64 {
    assert_eq!(x.len(), a.ncols(), "x length");
    assert_eq!(b.len(), a.nrows(), "b length");
    let mut r = b.to_vec();
    gemv(1.0, Op::NoTrans, a, x, -1.0, &mut r); // r = A x - b
    let mut atr = vec![0.0; a.ncols()];
    gemv(1.0, Op::Trans, a, &r, 0.0, &mut atr);
    crate::blas1::nrm2(&atr)
}

/// Relative distance between two vectors: `||x - y|| / ||y||`.
pub fn rel_vec_error(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let mut d = 0.0f64;
    let mut ny = 0.0f64;
    for (a, b) in x.iter().zip(y) {
        d += (a - b) * (a - b);
        ny += b * b;
    }
    if ny == 0.0 {
        return d.sqrt();
    }
    (d / ny).sqrt()
}

/// Relative low-rank approximation error in the Frobenius norm,
/// `||A - B||_F / ||A||_F`.
///
/// This is the metric behind the paper's Table 4: for the arithmetic
/// spectrum with `cond = 1e6`, the truncation error
/// `sqrt(sum_{i>r} sigma_i^2 / sum_i sigma_i^2) ~ (1 - r/n)^{3/2}`
/// reproduces the published 9.77e-1 / ... / 3.53e-1 column exactly, which
/// the 2-norm does not.
pub fn lowrank_error_fro(a: MatRef<'_, f64>, b: MatRef<'_, f64>) -> f64 {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let mut e = a.to_owned();
    for j in 0..a.ncols() {
        for (ei, &bi) in e.col_mut(j).iter_mut().zip(b.col(j)) {
            *ei -= bi;
        }
    }
    let na = crate::norms::fro_norm(a);
    if na == 0.0 {
        return crate::norms::fro_norm(e.as_ref());
    }
    crate::norms::fro_norm(e.as_ref()) / na
}

/// Relative low-rank approximation error `||A - B||_2 / ||A||_2` (the
/// 2-norm variant; equals `sigma_{r+1}/sigma_1` for exact truncation).
pub fn lowrank_error(a: MatRef<'_, f64>, b: MatRef<'_, f64>) -> f64 {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let mut e = a.to_owned();
    for j in 0..a.ncols() {
        for (ei, &bi) in e.col_mut(j).iter_mut().zip(b.col(j)) {
            *ei -= bi;
        }
    }
    let na = spectral_norm(a);
    if na == 0.0 {
        return spectral_norm(e.as_ref());
    }
    spectral_norm(e.as_ref()) / na
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, rng};
    use crate::lapack::Householder;

    #[test]
    fn exact_factorization_has_tiny_errors() {
        let a = gen::gaussian(40, 12, &mut rng(1));
        let h = Householder::factor(a.clone());
        let q = h.q();
        let r = h.r();
        assert!(qr_backward_error(a.as_ref(), q.as_ref(), r.as_ref()) < 1e-14);
        assert!(orthogonality_error(q.as_ref()) < 1e-14);
    }

    #[test]
    fn perturbed_factorization_detected() {
        let a = gen::gaussian(30, 8, &mut rng(2));
        let h = Householder::factor(a.clone());
        let mut q = h.q();
        let r = h.r();
        q[(0, 0)] += 1e-4;
        assert!(qr_backward_error(a.as_ref(), q.as_ref(), r.as_ref()) > 1e-6);
        assert!(orthogonality_error(q.as_ref()) > 1e-6);
    }

    #[test]
    fn lls_accuracy_zero_at_solution() {
        let a = gen::gaussian(25, 6, &mut rng(3));
        let b: Vec<f64> = (0..25).map(|i| (i as f64).sin()).collect();
        let h = Householder::factor(a.clone());
        let x = h.solve_lls(&b);
        assert!(lls_accuracy(a.as_ref(), &x, &b) < 1e-11);
        // A wrong x scores much worse.
        let xbad = vec![0.0; 6];
        assert!(lls_accuracy(a.as_ref(), &xbad, &b) > 1e-2);
    }

    #[test]
    fn rel_vec_error_basics() {
        assert_eq!(rel_vec_error(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((rel_vec_error(&[1.1, 0.0], &[1.0, 0.0]) - 0.1).abs() < 1e-12);
        assert_eq!(rel_vec_error(&[3.0, 4.0], &[0.0, 0.0]), 5.0);
    }

    #[test]
    fn lowrank_error_fro_matches_tail_energy() {
        // diag(3, 4) truncated to diag(3, 0): fro error = 4/5.
        let mut a: crate::mat::Mat<f64> = crate::mat::Mat::zeros(3, 2);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 4.0;
        let mut b = a.clone();
        b[(1, 1)] = 0.0;
        let e = lowrank_error_fro(a.as_ref(), b.as_ref());
        assert!((e - 0.8).abs() < 1e-14, "e={e}");
    }

    #[test]
    fn lowrank_error_of_truncated_svd() {
        // Rank-1 truncation of a diag(3, 1) style matrix has error 1/3.
        let mut a: crate::mat::Mat<f64> = crate::mat::Mat::zeros(4, 2);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 1.0;
        let mut b = a.clone();
        b[(1, 1)] = 0.0;
        let e = lowrank_error(a.as_ref(), b.as_ref());
        assert!((e - 1.0 / 3.0).abs() < 1e-10, "e={e}");
    }
}
