//! Property tests for the paper's algorithms: the invariants that must hold
//! for *any* input, not just the curated experiment matrices.

use densemat::gen::{self, Spectrum};
use densemat::metrics::{lls_accuracy, orthogonality_error, qr_backward_error};
use densemat::Mat;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tcqr_core::caqr::caqr_tsqr;
use tcqr_core::lls::{cgls_qr, RefineConfig};
use tcqr_core::mgs::mgs_qr;
use tcqr_core::rgsqrf::{rgsqrf, RgsqrfConfig};
use tcqr_core::scaling::{compute_column_scaling, scale_columns, unscale_r};
use tensor_engine::{EngineConfig, GpuSim};

fn small_cfg() -> RgsqrfConfig {
    RgsqrfConfig {
        cutoff: 16,
        caqr_width: 4,
        caqr_block_rows: 16,
        ..RgsqrfConfig::default()
    }
}

/// Random tall matrix (f64) with bounded dimensions.
fn tall() -> impl Strategy<Value = Mat<f64>> {
    (1usize..12, 1usize..40, any::<u64>()).prop_map(|(n, extra, seed)| {
        let m = n + extra;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        gen::gaussian(m, n, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn mgs_invariants_on_any_tall_matrix(a in tall()) {
        let n = a.ncols();
        let mut q = a.clone();
        let mut r = Mat::zeros(n, n);
        mgs_qr(q.as_mut(), r.as_mut());
        let m = a.nrows() as f64;
        prop_assert!(qr_backward_error(a.as_ref(), q.as_ref(), r.as_ref()) < 1e-12 * m);
        // Gaussian draws are almost surely well-conditioned at these sizes.
        prop_assert!(orthogonality_error(q.as_ref()) < 1e-9 * m);
        for j in 0..n {
            prop_assert!(r[(j, j)] >= 0.0, "GS diagonal convention");
        }
    }

    #[test]
    fn caqr_equals_flat_mgs_for_any_blocking(
        a in tall(),
        block_factor in 1usize..5,
    ) {
        let n = a.ncols();
        let block_rows = 2 * n * block_factor;
        let mut q1 = a.clone();
        let mut r1 = Mat::zeros(n, n);
        caqr_tsqr(q1.as_mut(), r1.as_mut(), block_rows);
        let mut q2 = a.clone();
        let mut r2 = Mat::zeros(n, n);
        mgs_qr(q2.as_mut(), r2.as_mut());
        // Unique positive-diagonal QR: factors agree to roundoff.
        for j in 0..n {
            for i in 0..=j {
                prop_assert!(
                    (r1[(i, j)] - r2[(i, j)]).abs() < 1e-8 * r2[(j, j)].abs().max(1.0),
                    "R ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn rgsqrf_fp32_engine_invariants(a in tall()) {
        let eng = GpuSim::new(EngineConfig::no_tensorcore());
        let a32: Mat<f32> = a.convert();
        let f = rgsqrf(&eng, a32.as_ref(), &small_cfg());
        let m = a.nrows() as f64;
        let be = qr_backward_error(
            a.as_ref(),
            f.q.convert::<f64>().as_ref(),
            f.r.convert::<f64>().as_ref(),
        );
        prop_assert!(be < 1e-4 * m.sqrt().max(1.0), "backward error {be}");
        for j in 0..a.ncols() {
            for i in j + 1..a.ncols() {
                prop_assert_eq!(f.r[(i, j)], 0.0);
            }
        }
        prop_assert!(eng.clock() > 0.0);
    }

    #[test]
    fn rgsqrf_tc_engine_backward_error_bounded(a in tall()) {
        let eng = GpuSim::default();
        let a32: Mat<f32> = a.convert();
        let f = rgsqrf(&eng, a32.as_ref(), &small_cfg());
        let be = qr_backward_error(
            a.as_ref(),
            f.q.convert::<f64>().as_ref(),
            f.r.convert::<f64>().as_ref(),
        );
        // fp16 unit roundoff times a generous constant.
        prop_assert!(be < 0.05, "backward error {be}");
    }

    #[test]
    fn scaling_roundtrip_is_bit_exact(
        a in tall(),
        exponents in proptest::collection::vec(-18i32..18, 1..12),
    ) {
        // Apply wild power-of-ten column scalings, then verify the
        // power-of-two safeguard roundtrips exactly.
        let mut a32: Mat<f32> = a.convert();
        for j in 0..a32.ncols() {
            let e = exponents[j % exponents.len()];
            densemat::blas1::scal(10f32.powi(e), a32.col_mut(j));
        }
        prop_assume!(a32.all_finite());
        let s = compute_column_scaling(a32.as_ref());
        let mut b = a32.clone();
        scale_columns(b.as_mut(), &s);
        // Every scaled column within fp16-safe magnitude.
        for j in 0..b.ncols() {
            let amax = b.col(j).iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            prop_assert!(amax < 1.0 || amax == 0.0, "col {j}: {amax}");
        }
        unscale_r(b.as_mut(), &s);
        prop_assert_eq!(a32, b);
    }

    #[test]
    fn cgls_converges_on_well_conditioned_problems(
        n in 2usize..10,
        extra in 8usize..40,
        logc in 0.0f64..3.0,
        seed in any::<u64>(),
    ) {
        let m = n + extra;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = gen::rand_svd(m, n, Spectrum::Arithmetic { cond: 10f64.powf(logc) }, &mut rng);
        let b: Vec<f64> = gen::gaussian(m, 1, &mut rng).data().to_vec();
        let eng = GpuSim::default();
        let out = cgls_qr(&eng, &a, &b, &small_cfg(), &RefineConfig::default());
        prop_assert!(out.converged, "history: {:?}", out.history);
        let acc = lls_accuracy(a.as_ref(), &out.x, &b);
        prop_assert!(acc < 1e-9 * (m as f64), "accuracy {acc}");
    }

    #[test]
    fn cgls_iterations_bounded_by_problem_dimension(
        n in 2usize..10,
        extra in 8usize..30,
        seed in any::<u64>(),
    ) {
        // CG theory: at most n iterations in exact arithmetic; the
        // preconditioned version should take far fewer, and never more than
        // a small multiple of n even with roundoff.
        let m = n + extra;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = gen::rand_svd(m, n, Spectrum::Geometric { cond: 100.0 }, &mut rng);
        let b: Vec<f64> = gen::gaussian(m, 1, &mut rng).data().to_vec();
        let out = cgls_qr(&GpuSim::default(), &a, &b, &small_cfg(), &RefineConfig::default());
        prop_assert!(
            out.iterations <= 3 * n + 5,
            "{} iterations for n = {n}",
            out.iterations
        );
    }

    #[test]
    fn engine_clock_is_additive_and_deterministic(a in tall()) {
        let a32: Mat<f32> = a.convert();
        let cfg = small_cfg();
        let eng = GpuSim::default();
        let _ = rgsqrf(&eng, a32.as_ref(), &cfg);
        let t1 = eng.clock();
        let _ = rgsqrf(&eng, a32.as_ref(), &cfg);
        let t2 = eng.clock();
        prop_assert!((t2 - 2.0 * t1).abs() < 1e-12 * t1.max(1e-30), "clock not additive");
    }
}
