//! End-to-end tests for the fault-injection campaign + recovery ladder:
//!
//! - a constructed-but-disabled `FaultPlan` leaves solver outputs and the
//!   modeled-time ledger *bit-identical* to a run with no plan at all
//!   (the zero-cost-when-off contract);
//! - every fault kind at a fixed seed is detected, the ladder terminates
//!   within the retry budget, and the corrected LLS solve matches the
//!   fault-free accuracy class;
//! - an exhausted retry budget surfaces as a typed
//!   [`TcqrError::RetryBudgetExhausted`] — never a panic or a hang.

use densemat::gen::{self, rng};
use densemat::metrics::lls_accuracy;
use densemat::Mat;
use tcqr_core::lls::{cgls_qr, try_cgls_qr, RefineConfig};
use tcqr_core::rgsqrf::RgsqrfConfig;
use tcqr_core::{OnExhausted, RecoveryPolicy, Rung, TcqrError};
use tensor_engine::{FaultKind, FaultPlan, GpuSim, Phase};

fn small_cfg() -> RgsqrfConfig {
    RgsqrfConfig {
        cutoff: 32,
        caqr_width: 8,
        caqr_block_rows: 64,
        ..RgsqrfConfig::default()
    }
}

fn problem(m: usize, n: usize, cond: f64, seed: u64) -> (Mat<f64>, Vec<f64>) {
    let a = gen::rand_svd(m, n, gen::Spectrum::Geometric { cond }, &mut rng(seed));
    let b: Vec<f64> = (0..m).map(|i| ((i * 37 + 11) as f64 * 0.01).sin()).collect();
    (a, b)
}

const PHASES: [Phase; 5] = [
    Phase::Panel,
    Phase::Update,
    Phase::Solve,
    Phase::Refine,
    Phase::Other,
];

/// Run the full CGLS pipeline and capture every bit that could drift:
/// the solution vector, the modeled clock, and the per-phase ledger.
fn cgls_fingerprint(plan: Option<FaultPlan>) -> (Vec<u64>, u64, Vec<u64>) {
    let eng = GpuSim::default();
    eng.set_fault_plan(plan);
    let (a, b) = problem(384, 64, 1e3, 17);
    let out = cgls_qr(&eng, &a, &b, &small_cfg(), &RefineConfig::default());
    let x_bits: Vec<u64> = out.x.iter().map(|v| v.to_bits()).collect();
    let ledger_bits: Vec<u64> = PHASES.iter().map(|&p| eng.ledger().get(p).to_bits()).collect();
    (x_bits, eng.clock().to_bits(), ledger_bits)
}

#[test]
fn disabled_fault_plan_is_bit_identical_to_no_plan() {
    let baseline = cgls_fingerprint(None);

    // An empty plan and a constructed-but-budgetless plan must both leave
    // the engine disarmed and the run untouched.
    let disabled = cgls_fingerprint(Some(FaultPlan::disabled()));
    assert_eq!(baseline, disabled, "FaultPlan::disabled() perturbed the run");

    let mut budgetless = FaultPlan::new(42, vec![FaultKind::BitFlip, FaultKind::Overflow]);
    budgetless.max_faults = 0;
    assert!(!budgetless.is_active());
    let zeroed = cgls_fingerprint(Some(budgetless));
    assert_eq!(baseline, zeroed, "zero-budget plan perturbed the run");
}

#[test]
fn every_fault_kind_is_detected_and_corrected() {
    let (a, b) = problem(384, 64, 1e3, 23);
    let cfg = small_cfg();
    let refine = RefineConfig::default();

    // Fault-free reference accuracy.
    let clean_eng = GpuSim::default();
    let clean = cgls_qr(&clean_eng, &a, &b, &cfg, &refine);
    let acc_clean = lls_accuracy(a.as_ref(), &clean.x, &b);
    assert!(clean.converged);

    for kind in FaultKind::ALL {
        let eng = GpuSim::default();
        let mut plan = FaultPlan::new(7, vec![kind]);
        plan.period = 3;
        plan.max_faults = 8;
        eng.set_fault_plan(Some(plan));

        let out = try_cgls_qr(&eng, &a, &b, &cfg, &refine, &RecoveryPolicy::default())
            .unwrap_or_else(|e| panic!("{kind:?}: ladder failed to terminate cleanly: {e}"));

        let stats = eng.fault_stats();
        assert!(stats.injected >= 1, "{kind:?}: campaign injected nothing");
        assert_eq!(
            stats.detected, stats.injected,
            "{kind:?}: {} fault(s) escaped detection",
            stats.injected - stats.detected
        );
        assert_eq!(eng.precision_override(), None, "{kind:?}: override leaked");

        let acc = lls_accuracy(a.as_ref(), &out.x, &b);
        assert!(
            acc <= acc_clean * 100.0 + 1e-10,
            "{kind:?}: corrected accuracy {acc} vs fault-free {acc_clean}"
        );
    }
}

#[test]
fn exhausted_retry_budget_is_a_typed_error_not_a_panic() {
    let eng = GpuSim::default();
    // Period 1 with an effectively unlimited budget: every TC GEMM of every
    // attempt is corrupted, so a ladder without the f32 escape hatch must
    // exhaust.
    let mut plan = FaultPlan::new(5, vec![FaultKind::NanColumn]);
    plan.period = 1;
    plan.max_faults = 1_000_000;
    eng.set_fault_plan(Some(plan));

    let policy = RecoveryPolicy {
        max_retries: 2,
        escalation: vec![Rung::Recompute],
        on_exhausted: OnExhausted::Error,
    };
    let (a, b) = problem(256, 48, 100.0, 29);
    let err = try_cgls_qr(&eng, &a, &b, &small_cfg(), &RefineConfig::default(), &policy)
        .unwrap_err();
    match err {
        TcqrError::RetryBudgetExhausted { op, attempts, .. } => {
            assert_eq!(attempts, 3, "initial try + 2 retries");
            assert!(!op.is_empty());
        }
        other => panic!("expected RetryBudgetExhausted, got {other}"),
    }
    assert_eq!(eng.precision_override(), None, "override must be restored");
}

#[test]
fn keep_last_policy_degrades_instead_of_erroring() {
    let eng = GpuSim::default();
    let mut plan = FaultPlan::new(5, vec![FaultKind::NanColumn]);
    plan.period = 1;
    plan.max_faults = 1_000_000;
    eng.set_fault_plan(Some(plan));

    let policy = RecoveryPolicy {
        max_retries: 1,
        escalation: vec![Rung::Recompute],
        on_exhausted: OnExhausted::KeepLast,
    };
    let (a, b) = problem(256, 48, 100.0, 31);
    // The corrupted preconditioner either limps through refinement or, if
    // its R diagonal is unusable, comes back as a typed NonFinite error —
    // but never a panic and never RetryBudgetExhausted.
    match try_cgls_qr(&eng, &a, &b, &small_cfg(), &RefineConfig::default(), &policy) {
        Ok(out) => assert!(out.iterations <= RefineConfig::default().max_iters),
        Err(TcqrError::NonFinite { .. }) => {}
        Err(other) => panic!("KeepLast must not surface {other}"),
    }
}

/// Two tenants on independent engines, one armed, running *concurrently*:
/// the unarmed tenant's bits must be indistinguishable from running alone,
/// and the armed tenant must still detect-and-correct everything. This is
/// the single-crate version of the pool-level no-bleed stress test in
/// `tcqr-batch`.
#[test]
fn concurrent_armed_neighbor_does_not_bleed() {
    let (a, b) = problem(384, 64, 1e3, 41);
    let cfg = small_cfg();
    let refine = RefineConfig::default();

    // Solo reference for the unarmed tenant.
    let solo_eng = GpuSim::default();
    let solo = cgls_qr(&solo_eng, &a, &b, &cfg, &refine);
    let solo_bits: Vec<u64> = solo.x.iter().map(|v| v.to_bits()).collect();
    let solo_clock = solo_eng.clock().to_bits();

    // Same tenant next to a fault-armed neighbor, both running at once.
    let clean_eng = GpuSim::default();
    let armed_eng = GpuSim::default();
    let mut plan = FaultPlan::all(97);
    plan.period = 2;
    armed_eng.set_fault_plan(Some(plan));

    let (clean_out, armed_out) = rayon::join(
        || cgls_qr(&clean_eng, &a, &b, &cfg, &refine),
        || cgls_qr(&armed_eng, &a, &b, &cfg, &refine),
    );

    let clean_bits: Vec<u64> = clean_out.x.iter().map(|v| v.to_bits()).collect();
    assert_eq!(solo_bits, clean_bits, "armed neighbor changed unarmed bits");
    assert_eq!(
        solo_clock,
        clean_eng.clock().to_bits(),
        "armed neighbor changed the unarmed clock"
    );
    for p in PHASES {
        assert_eq!(
            solo_eng.ledger().get(p).to_bits(),
            clean_eng.ledger().get(p).to_bits(),
            "armed neighbor changed the unarmed {p:?} ledger"
        );
    }

    // The unarmed engine saw no campaign at all.
    let clean_stats = clean_eng.fault_stats();
    assert_eq!(clean_stats.injected, 0, "fault plan bled across engines");

    // The armed engine detected everything it injected and still solved.
    let armed_stats = armed_eng.fault_stats();
    assert!(armed_stats.injected > 0, "armed neighbor never injected");
    assert_eq!(
        armed_stats.injected, armed_stats.detected,
        "a fault escaped detection on the armed engine"
    );
    assert!(armed_out.iterations <= refine.max_iters);
}
