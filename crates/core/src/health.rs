//! Numerical-health monitoring: cheap, trace-visible answers to "is the
//! factorization still healthy?"
//!
//! The paper's failure modes are all *numerical* long before they are
//! visible in the output: Q drifting from orthogonality with cond(A)
//! (Figure 4), CGLS residuals stalling when the R preconditioner carries
//! fp16 damage (§4.2.2), overflow when §3.5's scaling is skipped. This
//! module centralizes the monitors that watch for them:
//!
//! - [`sample_orthogonality`] measures `||I - Q^T Q||` and emits a
//!   `health.orthogonality` op event (consumed by `tcqr-metrics` as the
//!   `tcqr_orthogonality_error{level,stage}` gauges);
//! - [`emit_scaling`] reports the §3.5 power-of-two exponent range as a
//!   `health.scaling` event;
//! - [`decay_slope`] fits the log10 residual-decay rate of a refinement
//!   history (the slope of the Figure 9 curves; a healthy preconditioned
//!   CGLS run is steeply negative, a stalled one is ~0).
//!
//! The orthogonality check costs an `O(m n^2)` f64 GEMM per sample — real
//! money next to the factorization itself — so sampling is **off by
//! default** and gated by [`enabled`]: set the `TCQR_HEALTH` environment
//! variable (any value but `0`/empty) or call [`set_enabled`] to turn it
//! on. The scaling and decay monitors are O(n) and always on.

use std::sync::atomic::{AtomicI8, Ordering};

use densemat::MatRef;
use tcqr_trace::Value;
use tensor_engine::GpuSim;

use crate::scaling::ColumnScaling;

/// Programmatic override: -1 = follow the environment, 0 = off, 1 = on.
static OVERRIDE: AtomicI8 = AtomicI8::new(-1);

/// Whether the expensive health monitors (orthogonality sampling) run.
///
/// Defaults to the `TCQR_HEALTH` environment variable (unset, empty, or
/// `"0"` means off); [`set_enabled`] overrides it either way.
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => std::env::var_os("TCQR_HEALTH").is_some_and(|v| !v.is_empty() && v != "0"),
    }
}

/// Force the expensive monitors on (`Some(true)`), off (`Some(false)`), or
/// back to the `TCQR_HEALTH` environment default (`None`).
pub fn set_enabled(on: Option<bool>) {
    OVERRIDE.store(
        match on {
            None => -1,
            Some(false) => 0,
            Some(true) => 1,
        },
        Ordering::Relaxed,
    );
}

/// Measure `||I - Q^T Q||_max` of an f32 Q factor (promoted to f64, so the
/// measurement itself adds no rounding at the scale being measured) and
/// emit a `health.orthogonality` trace event.
///
/// `level` is the RGSQRF recursion depth (0 = the full factorization) and
/// `stage` distinguishes the first pass (`"factor"`) from the §3.3 second
/// pass (`"reortho"`). Returns `None` without computing anything when
/// [`enabled`] is false or the engine's tracer is off.
pub fn sample_orthogonality(
    eng: &GpuSim,
    q: MatRef<'_, f32>,
    level: usize,
    stage: &str,
) -> Option<f64> {
    let tracer = eng.tracer();
    if !enabled() || !tracer.enabled() {
        return None;
    }
    let q64 = q.to_owned().convert::<f64>();
    let value = densemat::metrics::orthogonality_error(q64.as_ref());
    tracer.op(
        "health.orthogonality",
        &[
            ("level", Value::from(level)),
            ("stage", Value::from(stage)),
            ("m", Value::from(q.nrows())),
            ("n", Value::from(q.ncols())),
            ("value", Value::from(value)),
        ],
    );
    Some(value)
}

/// Emit a `health.scaling` event describing the §3.5 column scaling that was
/// applied: how many columns were rescaled and the base-2 exponent range of
/// the factors. No-op for the identity scaling (nothing was done).
pub fn emit_scaling(eng: &GpuSim, scaling: &ColumnScaling) {
    let Some((min_exp, max_exp)) = scaling.exponent_range() else {
        return;
    };
    eng.tracer().op(
        "health.scaling",
        &[
            ("min_exp", Value::from(min_exp as i64)),
            ("max_exp", Value::from(max_exp as i64)),
            ("scaled_cols", Value::from(scaling.scaled_cols())),
        ],
    );
}

/// Warn that §3.5 scaling found NaN-poisoned columns and left them alone.
///
/// `solver` names the entry point (e.g. `"rgsqrf_scaled"`), `nan_cols` the
/// column indices reported by
/// [`crate::scaling::compute_column_scaling_checked`]. Emits one
/// `scaling.nan_column` warning in the style of `engine.fp16_overflow` —
/// the data was poisoned *before* the factorization, and every downstream
/// GEMM will propagate it. No-op when `nan_cols` is empty.
pub fn warn_nan_columns(eng: &GpuSim, solver: &str, nan_cols: &[usize]) {
    if nan_cols.is_empty() {
        return;
    }
    eng.tracer().warn(
        "scaling.nan_column",
        &[
            ("solver", Value::from(solver)),
            ("nan_cols", Value::from(nan_cols.len())),
            ("first_col", Value::from(nan_cols[0])),
            (
                "msg",
                Value::from(
                    "input columns contain NaN; column scaling left them \
                     unscaled and the factorization output will carry NaN",
                ),
            ),
        ],
    );
}

/// Least-squares slope of `log10(rel_residual)` against iteration number.
///
/// `history[k]` is taken as the relative residual after iteration `k + 1`
/// (the convention of `RefineOutcome::history`). Non-finite and non-positive
/// entries are skipped; `None` if fewer than two usable points remain. A
/// healthy preconditioned refiner decays geometrically — slope around
/// `-1` means one decimal digit per iteration; a stall shows as a slope
/// near zero.
pub fn decay_slope(history: &[f64]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = history
        .iter()
        .enumerate()
        .filter(|(_, &r)| r.is_finite() && r > 0.0)
        .map(|(i, &r)| ((i + 1) as f64, r.log10()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|(x, _)| x).sum();
    let sy: f64 = pts.iter().map(|(_, y)| y).sum();
    let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom == 0.0 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_slope_of_geometric_decay_is_minus_one() {
        // rel = 10^-k after iteration k.
        let history: Vec<f64> = (1..=8).map(|k| 10f64.powi(-k)).collect();
        let slope = decay_slope(&history).unwrap();
        assert!((slope + 1.0).abs() < 1e-12, "slope {slope}");
    }

    #[test]
    fn decay_slope_of_a_stall_is_near_zero() {
        let history = vec![1e-3; 10];
        let slope = decay_slope(&history).unwrap();
        assert!(slope.abs() < 1e-12, "slope {slope}");
    }

    #[test]
    fn decay_slope_skips_unusable_points() {
        assert_eq!(decay_slope(&[]), None);
        assert_eq!(decay_slope(&[1e-3]), None);
        assert_eq!(decay_slope(&[0.0, -1.0, f64::NAN]), None);
        // The bad points don't poison the fit.
        let slope = decay_slope(&[1e-1, f64::NAN, 1e-3]).unwrap();
        assert!(slope < 0.0);
    }

    /// The override toggle and the gated monitors, exercised in ONE test:
    /// `set_enabled` flips process-global state, so spreading these
    /// assertions over parallel test functions would race.
    #[test]
    fn override_gates_the_orthogonality_monitor() {
        use crate::rgsqrf::{rgsqrf, RgsqrfConfig};
        use densemat::gen::{self, rng};
        use std::sync::Arc;
        use tcqr_trace::{MemSink, Tracer};
        use tensor_engine::{EngineConfig, GpuSim};

        let sink = Arc::new(MemSink::new());
        let eng = GpuSim::with_tracer(
            EngineConfig::no_tensorcore(),
            Tracer::new(sink.clone()),
        );
        let a = gen::gaussian(96, 48, &mut rng(7)).convert::<f32>();
        let cfg = RgsqrfConfig {
            cutoff: 16,
            caqr_width: 8,
            caqr_block_rows: 32,
            ..RgsqrfConfig::default()
        };

        set_enabled(Some(false));
        assert!(!enabled());
        let _ = rgsqrf(&eng, a.as_ref(), &cfg);
        let quiet = sink.drain();
        assert!(
            !quiet.iter().any(|e| e.name == "health.orthogonality"),
            "disabled monitors must not emit"
        );

        set_enabled(Some(true));
        assert!(enabled());
        let _ = rgsqrf(&eng, a.as_ref(), &cfg);
        set_enabled(None); // back to TCQR_HEALTH (not set under cargo test)

        let events = sink.drain();
        let samples: Vec<_> = events
            .iter()
            .filter(|e| e.name == "health.orthogonality")
            .collect();
        assert!(!samples.is_empty(), "enabled monitors must sample");
        for s in &samples {
            let v = s.f64_field("value").unwrap();
            assert!(v.is_finite() && v < 1e-3, "drift {v} on a Gaussian matrix");
            assert!(s.str_field("stage").is_some());
            assert!(s.u64_field("level").is_some());
        }
    }

    #[test]
    fn warn_nan_columns_emits_once_with_context() {
        use std::sync::Arc;
        use tcqr_trace::{MemSink, Tracer};
        use tensor_engine::{EngineConfig, GpuSim};

        let sink = Arc::new(MemSink::new());
        let eng = GpuSim::with_tracer(
            EngineConfig::no_tensorcore(),
            Tracer::new(sink.clone()),
        );
        // Clean input: silence.
        warn_nan_columns(&eng, "rgsqrf_scaled", &[]);
        assert!(sink.is_empty());
        // Poisoned input: one warning naming the solver and the columns.
        warn_nan_columns(&eng, "rgsqrf_scaled", &[2, 5]);
        let events = sink.drain();
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev.name, "scaling.nan_column");
        assert_eq!(ev.str_field("solver"), Some("rgsqrf_scaled"));
        assert_eq!(ev.u64_field("nan_cols"), Some(2));
        assert_eq!(ev.u64_field("first_col"), Some(2));
    }

    #[test]
    fn emit_scaling_reports_exponent_range() {
        use crate::scaling::ColumnScaling;
        use std::sync::Arc;
        use tcqr_trace::{MemSink, Tracer};
        use tensor_engine::{EngineConfig, GpuSim};

        let sink = Arc::new(MemSink::new());
        let eng = GpuSim::with_tracer(
            EngineConfig::no_tensorcore(),
            Tracer::new(sink.clone()),
        );
        // Identity: nothing to report.
        emit_scaling(&eng, &ColumnScaling::identity(4));
        assert!(sink.is_empty());
        // 2^-3 and 2^5 factors on two of four columns.
        let scaling = ColumnScaling {
            scales: vec![1.0, 0.125, 32.0, 1.0],
        };
        emit_scaling(&eng, &scaling);
        let events = sink.drain();
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev.name, "health.scaling");
        assert_eq!(ev.f64_field("min_exp"), Some(-3.0));
        assert_eq!(ev.f64_field("max_exp"), Some(5.0));
        assert_eq!(ev.u64_field("scaled_cols"), Some(2));
    }
}
