//! Rounding-error bounds for the mixed-precision engine — the §3.6 / §5
//! theory, executable.
//!
//! Two bound families for the TensorCore GEMM (fp16 inputs, fp32
//! accumulation; Blanchard/Higham/Lopez/Mary/Pranesh 2019):
//!
//! - **deterministic**: every rounding conspires —
//!   `|C - Ĉ| <= (2 u16 + k u32) |A||B|` elementwise;
//! - **probabilistic** (Higham & Mary 2018): roundings act like independent
//!   zero-mean perturbations, so the error concentrates like a random walk —
//!   with probability ~`1 - 2 exp(-lambda^2 / 2)` the `k`-fold accumulation
//!   contributes `lambda sqrt(k) u32` instead of `k u32`, and the input
//!   rounding contributes `~2 u16` of *elementwise* relative error whose
//!   cancellation in the sum shrinks the normwise constant by `~sqrt(k)`.
//!
//! The paper's §5 notes that for half precision "the traditional
//! deterministic analysis is too pessimistic to give any useful error
//! bound"; the `ablation-bounds` experiment measures exactly how pessimistic
//! against the real engine.

use densemat::{Mat, MatRef};

/// fp16 unit roundoff.
pub const U16: f64 = 4.8828125e-4; // 2^-11
/// bf16 unit roundoff.
pub const UBF16: f64 = 3.90625e-3; // 2^-9
/// fp32 unit roundoff.
pub const U32: f64 = 5.960464477539063e-8; // 2^-24
/// Effective unit roundoff of the error-corrected (Ootomo–Yokota hi/lo
/// split) operand representation: `x ≈ hi + lo·2^-11` with
/// `|x - (hi + lo·2^-11)| <= 2^-22 |x|` for in-range inputs.
pub const UEC: f64 = 2.384185791015625e-7; // 2^-22

/// Deterministic elementwise bound constant for a `k`-term TensorCore dot
/// product: `|c - ĉ| <= det_tc_bound(k, u_in) * (|a|^T |b|)`.
pub fn det_tc_bound(k: usize, u_in: f64) -> f64 {
    let k = k as f64;
    // Input roundings: (1+d_a)(1+d_b) ~ 1 + 2 u_in; accumulation: gamma_k.
    2.0 * u_in + u_in * u_in + gamma(k, U32)
}

/// Deterministic elementwise bound constant for a `k`-term *error-corrected*
/// TensorCore dot product (hi/lo split, three products, fp32 accumulation):
/// `|c - ĉ| <= det_ec_bound(k) * (|a|^T |b|)`.
///
/// The split replaces the `2 u16` input-rounding term of [`det_tc_bound`]
/// with `2 u_ec` ([`UEC`], the split's representation error), the dropped
/// `lo·lo` cross product contributes at worst `u16^2` per term, and the
/// three accumulated partial products round through fp32 for an extra two
/// terms of `gamma` headroom (`k + 2` instead of `k`).
pub fn det_ec_bound(k: usize) -> f64 {
    let k = k as f64;
    2.0 * UEC + UEC * UEC + U16 * U16 + gamma(k + 2.0, U32)
}

/// The classic `gamma_n = n u / (1 - n u)` factor.
pub fn gamma(n: f64, u: f64) -> f64 {
    let nu = n * u;
    assert!(nu < 1.0, "gamma undefined for n u >= 1");
    nu / (1.0 - nu)
}

/// Probabilistic bound constant (holds with probability at least
/// `~1 - 4 exp(-lambda^2/2)` per entry under the independent-rounding
/// model), for the normwise metric of [`gemm_relative_error`]: the
/// input-rounding perturbations cancel like a random walk (a `1/sqrt(k)`
/// factor against the `|||A||| |||B|||` normalization) and the `k`-fold
/// fp32 accumulation contributes `lambda sqrt(k) u32` instead of `k u32`.
pub fn prob_tc_bound(k: usize, u_in: f64, lambda: f64) -> f64 {
    let sk = (k as f64).sqrt().max(1.0);
    lambda * (2.0 * u_in / sk + sk * U32)
}

/// Normwise relative error of a computed product against an `f64` reference:
/// `||C_ref - C|| / (|||A||| |||B|||)` in the Frobenius norm — the quantity
/// the bounds above control (up to the norm equivalence constant).
pub fn gemm_relative_error(
    a: MatRef<'_, f64>,
    b: MatRef<'_, f64>,
    c: MatRef<'_, f64>,
) -> f64 {
    let mut cref: Mat<f64> = Mat::zeros(c.nrows(), c.ncols());
    densemat::gemm(
        1.0,
        densemat::Op::NoTrans,
        a,
        densemat::Op::NoTrans,
        b,
        0.0,
        cref.as_mut(),
    );
    let mut diff = cref.clone();
    for j in 0..c.ncols() {
        for (d, &v) in diff.col_mut(j).iter_mut().zip(c.col(j)) {
            *d -= v;
        }
    }
    let na = densemat::norms::fro_norm(a);
    let nb = densemat::norms::fro_norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    densemat::norms::fro_norm(diff.as_ref()) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gen::{self, rng};
    use densemat::{Mat, Op};
    use tensor_engine::{GpuSim, Phase};

    fn measured_error_on(eng: &GpuSim, m: usize, k: usize, n: usize, seed: u64) -> f64 {
        let a64 = gen::uniform_pm1(m, k, &mut rng(seed));
        let b64 = gen::uniform_pm1(k, n, &mut rng(seed + 1));
        let a32: Mat<f32> = a64.convert();
        let b32: Mat<f32> = b64.convert();
        let mut c32: Mat<f32> = Mat::zeros(m, n);
        eng.gemm_f32(
            Phase::Update,
            1.0,
            Op::NoTrans,
            a32.as_ref(),
            Op::NoTrans,
            b32.as_ref(),
            0.0,
            c32.as_mut(),
        );
        gemm_relative_error(a64.as_ref(), b64.as_ref(), c32.convert::<f64>().as_ref())
    }

    fn measured_tc_error(m: usize, k: usize, n: usize, seed: u64) -> f64 {
        measured_error_on(&GpuSim::default(), m, k, n, seed)
    }

    fn measured_ec_error(m: usize, k: usize, n: usize, seed: u64) -> f64 {
        let eng = GpuSim::default();
        eng.set_precision_override(Some(tensor_engine::PrecisionOverride::ErrorCorrected));
        measured_error_on(&eng, m, k, n, seed)
    }

    #[test]
    fn gamma_basics() {
        assert!(gamma(10.0, U32) > 9.9 * U32);
        assert!(gamma(10.0, U32) < 10.1 * U32);
    }

    #[test]
    #[should_panic(expected = "gamma undefined")]
    fn gamma_rejects_nu_ge_one() {
        let _ = gamma(1e12, U16);
    }

    #[test]
    fn deterministic_bound_holds_empirically() {
        for (k, seed) in [(64usize, 1u64), (256, 2), (1024, 3)] {
            let err = measured_tc_error(64, k, 64, seed);
            let bound = det_tc_bound(k, U16);
            assert!(
                err <= bound,
                "k={k}: measured {err} exceeds deterministic bound {bound}"
            );
        }
    }

    #[test]
    fn error_corrected_bound_holds_and_undercuts_plain_fp16() {
        for (k, seed) in [(64usize, 11u64), (256, 12), (1024, 13)] {
            let err = measured_ec_error(64, k, 64, seed);
            let bound = det_ec_bound(k);
            assert!(
                err <= bound,
                "k={k}: measured EC error {err} exceeds det_ec_bound {bound}"
            );
            assert!(
                bound < det_tc_bound(k, U16),
                "k={k}: the EC bound must undercut the plain fp16 bound"
            );
            let plain = measured_tc_error(64, k, 64, seed);
            assert!(
                err < plain / 16.0,
                "k={k}: measured EC error {err} should be far below plain {plain}"
            );
        }
    }

    #[test]
    fn probabilistic_bound_holds_and_is_much_tighter() {
        // lambda = 6: failure probability ~ 4 exp(-18) ~ 6e-8 per entry.
        for (k, seed) in [(256usize, 4u64), (1024, 5), (4096, 6)] {
            let err = measured_tc_error(32, k, 32, seed);
            let prob = prob_tc_bound(k, U16, 6.0);
            let det = det_tc_bound(k, U16);
            assert!(err <= prob, "k={k}: measured {err} vs probabilistic {prob}");
            assert!(
                prob < det,
                "k={k}: probabilistic {prob} should undercut deterministic {det}"
            );
        }
    }

    #[test]
    fn pessimism_grows_with_k() {
        // The deterministic/probabilistic gap widens like sqrt(k) — the §5
        // "too pessimistic" observation, quantified.
        let ratio = |k: usize| det_tc_bound(k, U16) / prob_tc_bound(k, U16, 6.0);
        assert!(ratio(4096) > 1.5 * ratio(256));
    }

    #[test]
    fn measured_error_cancels_like_a_random_walk() {
        // Under the |||A||| |||B||| normalization, stochastic cancellation
        // makes the relative error *shrink* with k (like 1/sqrt(k) while
        // input rounding dominates); a deterministic worst case would keep
        // it flat at ~2 u16. 16x more terms should cut it at least in half.
        let e1 = measured_tc_error(32, 256, 32, 7);
        let e2 = measured_tc_error(32, 4096, 32, 8);
        assert!(
            e2 < e1 * 0.5,
            "no cancellation visible: k=256 gives {e1}, k=4096 gives {e2}"
        );
        assert!(e1 < 2.0 * U16, "even k=256 must be far below the det bound");
    }
}
