//! CholeskyQR and CholeskyQR2 — the related-work baseline of the paper's §5
//! (Yamazaki/Tomov/Dongarra 2015).
//!
//! `A^T A = R^T R`, then `Q = A R^{-1}`: one big syrk-shaped GEMM plus a
//! triangular solve — even more GEMM-friendly than recursive Gram-Schmidt.
//! The catch the paper points out: forming `A^T A` squares the condition
//! number, so the orthogonality error grows with `kappa(A)^2` and the
//! Cholesky itself fails outright once `kappa(A)^2` reaches `1/u`. The
//! ablation benchmarks contrast this cliff with RGSQRF's linear-in-kappa
//! behaviour.

use crate::rgsqrf::QrFactors;
use densemat::tri::{potrf_upper, trsm_right_upper, trmm_left_upper, NotPositiveDefinite};
use densemat::{Mat, Op};
use tensor_engine::{CachedOperand, Class, GpuSim, Phase};

/// One round of CholeskyQR on the simulated engine.
///
/// The Gram-matrix GEMM routes through the engine (and therefore through
/// TensorCore when enabled — which is exactly what makes this baseline
/// fragile in half precision). Fails with [`NotPositiveDefinite`] when the
/// squared condition number exceeds the working precision.
pub fn cholqr(eng: &GpuSim, a: &Mat<f32>) -> Result<QrFactors, NotPositiveDefinite> {
    let m = a.nrows();
    let n = a.ncols();
    assert!(m >= n, "cholqr: need m >= n");
    // G = A^T A (reduction-shape GEMM; the TensorCore temptation). A feeds
    // both operand slots, so round it through the half format once instead
    // of twice — bit-identical, half the rounding work.
    let mut g: Mat<f32> = Mat::zeros(n, n);
    let a_half = eng.cache_operand(Phase::Update, a.as_ref());
    let a_op = CachedOperand::new(a.as_ref(), a_half.as_ref());
    eng.gemm_f32_cached(
        Phase::Update,
        true,
        1.0,
        Op::Trans,
        a_op,
        Op::NoTrans,
        a_op,
        0.0,
        g.as_mut(),
    );
    // R = chol(G); numerically tiny next to the GEMM.
    potrf_upper(g.as_mut())?;
    eng.charge_gemm(Phase::Panel, Class::Fp32, n, n, n / 3 + 1);
    // Q = A R^{-1}.
    let mut q = a.clone();
    trsm_right_upper(1.0, Op::NoTrans, g.as_ref(), q.as_mut());
    eng.charge_trsm(Phase::Update, Class::Fp32, n, m);
    // Zero the strict lower triangle of the returned R.
    let mut r: Mat<f32> = Mat::zeros(n, n);
    for j in 0..n {
        r.col_mut(j)[..=j].copy_from_slice(&g.col(j)[..=j]);
    }
    Ok(QrFactors { q, r })
}

/// CholeskyQR2: run CholeskyQR twice and merge the R factors, recovering
/// orthogonality when the first pass merely degraded (rather than failed).
pub fn cholqr2(eng: &GpuSim, a: &Mat<f32>) -> Result<QrFactors, NotPositiveDefinite> {
    let first = cholqr(eng, a)?;
    let second = cholqr(eng, &first.q)?;
    // R = R2 R1.
    let mut r = first.r;
    trmm_left_upper(1.0, Op::NoTrans, second.r.as_ref(), r.as_mut());
    let n = r.ncols();
    eng.charge_gemm(Phase::Other, Class::Fp32, n, n, (n / 2).max(1));
    Ok(QrFactors { q: second.q, r })
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gen::{self, rng};
    use densemat::metrics::{orthogonality_error, qr_backward_error};
    use tensor_engine::{EngineConfig, GpuSim};

    fn matrix(cond: f64, seed: u64) -> Mat<f32> {
        gen::rand_svd(256, 32, gen::Spectrum::Geometric { cond }, &mut rng(seed)).convert()
    }

    #[test]
    fn cholqr_works_when_well_conditioned() {
        let eng = GpuSim::new(EngineConfig::no_tensorcore());
        let a = matrix(10.0, 1);
        let f = cholqr(&eng, &a).expect("well-conditioned CholQR");
        let be = qr_backward_error(
            a.convert::<f64>().as_ref(),
            f.q.convert::<f64>().as_ref(),
            f.r.convert::<f64>().as_ref(),
        );
        assert!(be < 1e-5, "backward error {be}");
        let oe = orthogonality_error(f.q.convert::<f64>().as_ref());
        assert!(oe < 1e-4, "orthogonality {oe}");
    }

    #[test]
    fn cholqr_orthogonality_degrades_quadratically() {
        let eng = GpuSim::new(EngineConfig::no_tensorcore());
        let o1 = orthogonality_error(
            cholqr(&eng, &matrix(1e1, 2)).unwrap().q.convert::<f64>().as_ref(),
        );
        let o2 = orthogonality_error(
            cholqr(&eng, &matrix(1e3, 3)).unwrap().q.convert::<f64>().as_ref(),
        );
        // Two orders of magnitude in kappa: roughly four in orthogonality.
        assert!(
            o2 > o1 * 100.0,
            "expected steep (kappa^2) degradation: {o1} -> {o2}"
        );
    }

    #[test]
    fn cholqr_fails_at_high_condition_number_in_f32() {
        // kappa^2 = 1e10 > 1/eps_f32 ~ 8.4e6: Cholesky must break down.
        let eng = GpuSim::new(EngineConfig::no_tensorcore());
        let a = matrix(1e5, 4);
        assert!(cholqr(&eng, &a).is_err(), "expected breakdown");
    }

    #[test]
    fn cholqr_with_tensorcore_fails_even_earlier() {
        // In fp16 the Gram matrix loses definiteness around kappa^2 ~ 2e3.
        let tc = GpuSim::default();
        let a = matrix(300.0, 5);
        let plain = GpuSim::new(EngineConfig::no_tensorcore());
        assert!(cholqr(&plain, &a).is_ok(), "f32 still fine at kappa=300");
        match cholqr(&tc, &a) {
            Err(_) => {} // breakdown: acceptable
            Ok(f) => {
                let oe = orthogonality_error(f.q.convert::<f64>().as_ref());
                assert!(oe > 1e-3, "fp16 CholQR suspiciously orthogonal: {oe}");
            }
        }
    }

    #[test]
    fn gram_gemm_rounds_its_operand_exactly_once() {
        // A is both operands of G = A^T A; the cached-operand path must
        // round its m*n elements once (the per-GEMM scheme rounded 2*m*n).
        let eng = GpuSim::default(); // TC in the update
        let a = matrix(10.0, 7);
        let _ = cholqr(&eng, &a).expect("well-conditioned CholQR");
        assert_eq!(
            eng.counters().round.total,
            (a.nrows() * a.ncols()) as u64,
            "expected exactly one rounding of A"
        );
    }

    #[test]
    fn cholqr2_restores_orthogonality_in_the_survivable_regime() {
        let eng = GpuSim::new(EngineConfig::no_tensorcore());
        let a = matrix(1e2, 6);
        let once = cholqr(&eng, &a).unwrap();
        let twice = cholqr2(&eng, &a).unwrap();
        let o1 = orthogonality_error(once.q.convert::<f64>().as_ref());
        let o2 = orthogonality_error(twice.q.convert::<f64>().as_ref());
        assert!(o2 < o1, "CholQR2 should improve orthogonality: {o1} -> {o2}");
        assert!(o2 < 1e-4, "CholQR2 orthogonality {o2}");
        // And it still factorizes A.
        let be = qr_backward_error(
            a.convert::<f64>().as_ref(),
            twice.q.convert::<f64>().as_ref(),
            twice.r.convert::<f64>().as_ref(),
        );
        assert!(be < 1e-5, "backward error {be}");
    }
}
