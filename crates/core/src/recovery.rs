//! Retry-with-escalation recovery for fault-corrupted factorizations.
//!
//! When a fault-injection campaign is armed on the engine
//! ([`GpuSim::fault_armed`]), the solvers wrap their engine-facing work in
//! [`run_with_recovery`]: after each attempt they poll the engine's
//! [`FaultStats`](tensor_engine::FaultStats) and the output's finiteness,
//! and on corruption they retry up an escalation ladder
//! ([`RecoveryPolicy::escalation`]):
//!
//! 1. [`Rung::Recompute`] — run the same computation again (transient faults
//!    are the common case; the campaign budget also drains).
//! 2. [`Rung::Rescale`] — tighten the §3.5 column scaling by extra
//!    power-of-two headroom bits, pulling intermediates further from the
//!    fp16 overflow edge (a dynamic generalization of the paper's scaling).
//! 3. [`Rung::EscalateEc`] — rerun with the engine in error-corrected mode
//!    ([`PrecisionOverride::ErrorCorrected`], the Ootomo–Yokota hi/lo split):
//!    near-f32 accuracy while staying on the tensor cores, at roughly 3×
//!    TensorCore cost — far cheaper than abandoning the units outright.
//! 4. [`Rung::EscalateBf16`] — rerun with the engine's half format
//!    overridden to bfloat16 (f32's exponent range: overflow faults lose
//!    their bite).
//! 5. [`Rung::EscalateF32`] — disable TensorCore entirely for the attempt.
//!    No TC GEMMs means no injection sites, so this rung always runs clean —
//!    the ladder's safety net.
//! 6. [`Rung::Reortho`] — re-orthogonalize (§3.3's "twice is enough"),
//!    for callers whose failure mode is accuracy rather than corruption.
//!
//! **The ladder is gated strictly on [`GpuSim::fault_armed`]**: with faults
//! off, [`run_with_recovery`] makes exactly one attempt and returns it
//! unconditionally, so solver outputs, ledger charges, and the ablations'
//! intentional-overflow experiments are bit-identical to the pre-recovery
//! code.

use crate::error::TcqrError;
use tcqr_trace::Value;
use tensor_engine::{GpuSim, PrecisionOverride};

/// One escalation step of the recovery ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rung {
    /// Retry the identical computation.
    Recompute,
    /// Retry with extra power-of-two column-scaling headroom.
    Rescale,
    /// Retry in error-corrected mode (hi/lo split GEMM on the tensor
    /// cores): near-f32 accuracy at ~3× TensorCore cost.
    EscalateEc,
    /// Retry with the engine's half format overridden to bfloat16.
    EscalateBf16,
    /// Retry with TensorCore disabled (plain f32 — no injection sites).
    EscalateF32,
    /// Retry with an extra re-orthogonalization pass.
    Reortho,
}

impl Rung {
    /// Stable lowercase name used in trace events and metrics labels.
    pub fn as_str(self) -> &'static str {
        match self {
            Rung::Recompute => "recompute",
            Rung::Rescale => "rescale",
            Rung::EscalateEc => "escalate-ec",
            Rung::EscalateBf16 => "escalate-bf16",
            Rung::EscalateF32 => "escalate-f32",
            Rung::Reortho => "reortho",
        }
    }
}

/// What [`run_with_recovery`] does when every permitted attempt came back
/// corrupted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OnExhausted {
    /// Return [`TcqrError::RetryBudgetExhausted`] (or
    /// [`TcqrError::FaultDetected`] when the policy permitted no retries).
    Error,
    /// Return the last attempt's (corrupted) result anyway — for callers
    /// that prefer degraded output over no output.
    KeepLast,
}

/// Governs how hard the solvers fight a detected corruption.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries permitted after the initial attempt. 0 means detect-only.
    pub max_retries: usize,
    /// The escalation ladder; retry `i` uses `escalation[i - 1]`, and the
    /// last rung repeats if `max_retries` exceeds the ladder length. An
    /// empty ladder retries with [`Rung::Recompute`].
    pub escalation: Vec<Rung>,
    /// Behavior when every attempt was corrupted.
    pub on_exhausted: OnExhausted,
}

impl Default for RecoveryPolicy {
    /// The full ladder. Because [`Rung::EscalateF32`] removes every
    /// injection site, the default policy is guaranteed to terminate with a
    /// clean result — campaigns against the panicking solver wrappers can
    /// never exhaust it.
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 5,
            escalation: vec![
                Rung::Recompute,
                Rung::Rescale,
                Rung::EscalateEc,
                Rung::EscalateBf16,
                Rung::EscalateF32,
            ],
            on_exhausted: OnExhausted::Error,
        }
    }
}

impl RecoveryPolicy {
    /// A detect-only policy: no retries, typed error on corruption.
    pub fn detect_only() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            escalation: Vec::new(),
            on_exhausted: OnExhausted::Error,
        }
    }

    /// The rung retry number `retry` (1-based) escalates to.
    fn rung_for(&self, retry: usize) -> Rung {
        self.escalation
            .get(retry - 1)
            .or(self.escalation.last())
            .copied()
            .unwrap_or(Rung::Recompute)
    }
}

/// Per-attempt knobs handed to the solver body by [`run_with_recovery`].
#[derive(Clone, Copy, Debug)]
pub struct Attempt {
    /// 0 for the initial attempt, then 1..=max_retries.
    pub index: usize,
    /// The rung this retry escalated to (`None` on the initial attempt).
    pub rung: Option<Rung>,
    /// Extra power-of-two column-scaling headroom bits accumulated from
    /// [`Rung::Rescale`] rungs (2 bits per rung).
    pub headroom: u32,
    /// Whether a [`Rung::Reortho`] rung has fired.
    pub reortho: bool,
}

impl Attempt {
    fn first() -> Attempt {
        Attempt {
            index: 0,
            rung: None,
            headroom: 0,
            reortho: false,
        }
    }
}

/// Restores the engine's precision override on scope exit, panic included.
struct OverrideGuard<'a> {
    eng: &'a GpuSim,
    prev: Option<PrecisionOverride>,
}

impl Drop for OverrideGuard<'_> {
    fn drop(&mut self) {
        self.eng.set_precision_override(self.prev);
    }
}

/// Run `body` with the engine's recovery ladder.
///
/// With no armed fault plan this is exactly one call to `body`, returned
/// unconditionally — bit-identical to the pre-recovery behavior, including
/// for runs that legitimately overflow fp16 (the ablations rely on that).
///
/// Armed, each attempt is judged corrupted when the engine's detected-fault
/// count grew during it or `healthy` rejects its output; corrupted attempts
/// retry up the policy's escalation ladder. Each retry emits a
/// `recovery.retry` warning and the loop closes with a `recovery.outcome`
/// op event (fields: `op`, `attempts`, `recovered`, `rung`).
pub fn run_with_recovery<T>(
    eng: &GpuSim,
    op: &'static str,
    policy: &RecoveryPolicy,
    mut body: impl FnMut(&Attempt) -> T,
    healthy: impl Fn(&T) -> bool,
) -> Result<T, TcqrError> {
    if !eng.fault_armed() {
        return Ok(body(&Attempt::first()));
    }

    let tracer = eng.tracer();
    let guard = OverrideGuard {
        eng,
        prev: eng.precision_override(),
    };
    let mut attempt = Attempt::first();
    loop {
        let before = eng.fault_stats().detected;
        let out = body(&attempt);
        let detected = eng.fault_stats().detected - before;
        let corrupted = detected > 0 || !healthy(&out);
        if !corrupted {
            tracer.op(
                "recovery.outcome",
                &[
                    ("op", Value::from(op)),
                    ("attempts", Value::from(attempt.index + 1)),
                    ("recovered", Value::from(true)),
                    (
                        "rung",
                        Value::from(attempt.rung.map_or("none", Rung::as_str)),
                    ),
                ],
            );
            drop(guard);
            return Ok(out);
        }

        if attempt.index >= policy.max_retries {
            tracer.op(
                "recovery.outcome",
                &[
                    ("op", Value::from(op)),
                    ("attempts", Value::from(attempt.index + 1)),
                    ("recovered", Value::from(false)),
                    (
                        "rung",
                        Value::from(attempt.rung.map_or("none", Rung::as_str)),
                    ),
                ],
            );
            drop(guard);
            return match policy.on_exhausted {
                OnExhausted::KeepLast => Ok(out),
                OnExhausted::Error if policy.max_retries == 0 => {
                    Err(TcqrError::FaultDetected {
                        op,
                        detail: format!(
                            "a fault campaign corrupted the computation \
                             ({detected} detection(s)) and the policy permits no retries"
                        ),
                    })
                }
                OnExhausted::Error => Err(TcqrError::RetryBudgetExhausted {
                    op,
                    attempts: attempt.index + 1,
                    detail: format!(
                        "every attempt was corrupted (last: {detected} detection(s))"
                    ),
                }),
            };
        }

        // Escalate.
        let retry = attempt.index + 1;
        let rung = policy.rung_for(retry);
        attempt.index = retry;
        attempt.rung = Some(rung);
        match rung {
            Rung::Recompute => {}
            Rung::Rescale => attempt.headroom += 2,
            Rung::Reortho => attempt.reortho = true,
            // The precision override is sticky for the rest of the ladder:
            // once ec/bf16/f32 was needed, dropping back down would just
            // fail again. The guard restores the caller's override on exit.
            Rung::EscalateEc => {
                eng.set_precision_override(Some(PrecisionOverride::ErrorCorrected))
            }
            Rung::EscalateBf16 => {
                eng.set_precision_override(Some(PrecisionOverride::Bf16))
            }
            Rung::EscalateF32 => {
                eng.set_precision_override(Some(PrecisionOverride::Fp32))
            }
        }
        tracer.warn(
            "recovery.retry",
            &[
                ("op", Value::from(op)),
                ("attempt", Value::from(retry)),
                ("rung", Value::from(rung.as_str())),
                ("detected", Value::from(detected)),
                (
                    "msg",
                    Value::from(
                        "a detected fault corrupted the computation; retrying up \
                         the recovery ladder",
                    ),
                ),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::{Mat, Op};
    use tensor_engine::{FaultKind, FaultPlan, Phase};

    #[test]
    fn rung_schedule_follows_the_ladder_then_repeats_the_last() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.rung_for(1), Rung::Recompute);
        assert_eq!(p.rung_for(2), Rung::Rescale);
        assert_eq!(p.rung_for(3), Rung::EscalateEc);
        assert_eq!(p.rung_for(4), Rung::EscalateBf16);
        assert_eq!(p.rung_for(5), Rung::EscalateF32);
        assert_eq!(p.rung_for(9), Rung::EscalateF32, "last rung repeats");
        let empty = RecoveryPolicy {
            escalation: vec![],
            ..RecoveryPolicy::default()
        };
        assert_eq!(empty.rung_for(1), Rung::Recompute);
    }

    #[test]
    fn rung_names_are_distinct() {
        let names: std::collections::BTreeSet<_> = [
            Rung::Recompute,
            Rung::Rescale,
            Rung::EscalateEc,
            Rung::EscalateBf16,
            Rung::EscalateF32,
            Rung::Reortho,
        ]
        .iter()
        .map(|r| r.as_str())
        .collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn unarmed_engine_makes_exactly_one_attempt() {
        let eng = GpuSim::default();
        let mut calls = 0;
        let out = run_with_recovery(
            &eng,
            "test",
            &RecoveryPolicy::default(),
            |att| {
                calls += 1;
                assert_eq!(att.index, 0);
                42
            },
            |_| false, // even "unhealthy" output is returned unconditionally
        )
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(calls, 1);
    }

    /// Drives a real armed engine through the ladder: every attempt runs a
    /// TC GEMM that the plan corrupts (period 1, ample budget), so only the
    /// f32 rung — no TensorCore, no injection sites — can come back clean.
    #[test]
    fn armed_engine_climbs_to_the_f32_rung_and_restores_the_override() {
        let eng = GpuSim::default();
        let mut plan = FaultPlan::new(9, vec![FaultKind::NanColumn]);
        plan.period = 1;
        plan.max_faults = 1000;
        eng.set_fault_plan(Some(plan));

        let a = Mat::from_fn(24, 16, |i, j| ((i * 7 + j) % 5) as f32 * 0.25 + 0.1);
        let b = Mat::from_fn(16, 12, |i, j| ((i + 2 * j) % 3) as f32 * 0.5 - 0.4);
        let mut rungs = Vec::new();
        let out = run_with_recovery(
            &eng,
            "test",
            &RecoveryPolicy::default(),
            |att| {
                rungs.push(att.rung);
                let mut c: Mat<f32> = Mat::zeros(24, 12);
                eng.gemm_f32(
                    Phase::Update,
                    1.0,
                    Op::NoTrans,
                    a.as_ref(),
                    Op::NoTrans,
                    b.as_ref(),
                    0.0,
                    c.as_mut(),
                );
                c
            },
            |c| c.all_finite(),
        )
        .unwrap();
        assert!(out.all_finite());
        assert_eq!(
            rungs.last().copied().flatten(),
            Some(Rung::EscalateF32),
            "ladder should have climbed to f32: {rungs:?}"
        );
        assert_eq!(eng.precision_override(), None, "override must be restored");
        let stats = eng.fault_stats();
        assert!(stats.injected >= 1);
        assert_eq!(stats.detected, stats.injected, "nothing may escape");
    }

    #[test]
    fn detect_only_policy_returns_fault_detected() {
        let eng = GpuSim::default();
        let mut plan = FaultPlan::new(3, vec![FaultKind::NanColumn]);
        plan.period = 1;
        plan.max_faults = 1000;
        eng.set_fault_plan(Some(plan));

        let a = Mat::from_fn(16, 8, |i, j| (i + j) as f32 * 0.1 + 0.2);
        let err = run_with_recovery(
            &eng,
            "test",
            &RecoveryPolicy::detect_only(),
            |_| {
                let mut c: Mat<f32> = Mat::zeros(16, 8);
                eng.gemm_f32(
                    Phase::Update,
                    1.0,
                    Op::NoTrans,
                    a.as_ref(),
                    Op::NoTrans,
                    Mat::from_fn(8, 8, |i, j| ((i * j) % 4) as f32 * 0.3).as_ref(),
                    0.0,
                    c.as_mut(),
                );
                c
            },
            |c: &Mat<f32>| c.all_finite(),
        )
        .unwrap_err();
        assert!(matches!(err, TcqrError::FaultDetected { op: "test", .. }), "{err}");
    }

    #[test]
    fn keep_last_returns_the_corrupted_result() {
        let eng = GpuSim::default();
        let mut plan = FaultPlan::new(5, vec![FaultKind::NanColumn]);
        plan.period = 1;
        plan.max_faults = 1000;
        eng.set_fault_plan(Some(plan));
        let policy = RecoveryPolicy {
            max_retries: 1,
            escalation: vec![Rung::Recompute],
            on_exhausted: OnExhausted::KeepLast,
        };
        let a = Mat::from_fn(16, 8, |i, j| (i + j) as f32 * 0.1 + 0.2);
        let b = Mat::from_fn(8, 8, |i, j| ((i * j) % 4) as f32 * 0.3 + 0.1);
        let out = run_with_recovery(
            &eng,
            "test",
            &policy,
            |_| {
                let mut c: Mat<f32> = Mat::zeros(16, 8);
                eng.gemm_f32(
                    Phase::Update,
                    1.0,
                    Op::NoTrans,
                    a.as_ref(),
                    Op::NoTrans,
                    b.as_ref(),
                    0.0,
                    c.as_mut(),
                );
                c
            },
            |c: &Mat<f32>| c.all_finite(),
        )
        .unwrap();
        assert!(!out.all_finite(), "KeepLast hands back the degraded result");
    }
}
