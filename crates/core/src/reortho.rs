//! Re-orthogonalization — §3.3, "twice is enough".
//!
//! Gram-Schmidt Q factors lose orthogonality proportionally to the condition
//! number; running the factorization a second time on Q restores it to
//! working precision (Giraud/Langou/Rozložník/van den Eshof 2005). Because
//! the second input is nearly orthonormal (condition number near 1), the
//! second pass cannot lose anything.
//!
//! `RGSQRF-Reortho` (Figures 4 and 5): `Q = Q2 R2`, then the corrected
//! factors are `Q <- Q2` and `R <- R2 R`.

use crate::rgsqrf::{rgsqrf, QrFactors, RgsqrfConfig};
use densemat::tri::trmm_left_upper;
use densemat::{MatRef, Op};
use tcqr_trace::Value;
use tensor_engine::{Class, GpuSim, Phase};

/// Re-orthogonalize existing factors in place: `(Q, R) <- (Q2, R2 R)`.
pub fn reorthogonalize(eng: &GpuSim, factors: &mut QrFactors, cfg: &RgsqrfConfig) {
    let _span = eng.tracer().span(
        "reortho",
        &[
            ("m", Value::from(factors.q.nrows())),
            ("n", Value::from(factors.q.ncols())),
        ],
    );
    // Each rgsqrf pass keeps its own rounded-Q operand cache internally, so
    // the reortho pipeline rounds every Q panel once per pass, not per GEMM.
    let second = rgsqrf(eng, factors.q.as_ref(), cfg);
    // R <- R2 * R: triangular-triangular product, n^3/3 useful flops;
    // charge it as a (cheap) FP32 GEMM of that size.
    let n = factors.r.ncols();
    trmm_left_upper(1.0, Op::NoTrans, second.r.as_ref(), factors.r.as_mut());
    eng.charge_gemm(Phase::Other, Class::Fp32, n, n, (n / 2).max(1));
    factors.q = second.q;
    // Health monitor (off by default): "twice is enough" should put this
    // at working precision regardless of cond(A) — Figure 4's flat line.
    crate::health::sample_orthogonality(eng, factors.q.as_ref(), 0, "reortho");
}

/// Factor and re-orthogonalize: the paper's `RGSQRF-Reortho` pipeline.
pub fn rgsqrf_reortho(eng: &GpuSim, a: MatRef<'_, f32>, cfg: &RgsqrfConfig) -> QrFactors {
    let mut f = rgsqrf(eng, a, cfg);
    reorthogonalize(eng, &mut f, cfg);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gen::{self, rng};
    use densemat::metrics::{orthogonality_error, qr_backward_error};
    use densemat::Mat;
    use tensor_engine::GpuSim;

    fn ill_conditioned(m: usize, n: usize, cond: f64, seed: u64) -> Mat<f32> {
        gen::rand_svd(m, n, gen::Spectrum::Geometric { cond }, &mut rng(seed)).convert()
    }

    fn small_cfg() -> RgsqrfConfig {
        RgsqrfConfig {
            cutoff: 32,
            caqr_width: 8,
            caqr_block_rows: 64,
            ..RgsqrfConfig::default()
        }
    }

    #[test]
    fn reortho_restores_orthogonality_on_ill_conditioned_input() {
        let eng = GpuSim::default();
        let a = ill_conditioned(512, 64, 1e6, 1);
        let cfg = small_cfg();

        let once = rgsqrf(&eng, a.as_ref(), &cfg);
        let before = orthogonality_error(once.q.convert::<f64>().as_ref());

        let twice = rgsqrf_reortho(&eng, a.as_ref(), &cfg);
        let after = orthogonality_error(twice.q.convert::<f64>().as_ref());

        assert!(
            before > 20.0 * after,
            "reortho should improve a lot: before {before}, after {after}"
        );
        // "Twice is enough": down to the engine's working precision. With
        // TensorCore in the update that is the fp16 unit roundoff scale
        // (~5e-4), independent of cond(A) — the flat line of Figure 4.
        assert!(after < 5e-3, "after {after}");
    }

    #[test]
    fn reortho_reaches_single_precision_without_tensorcore() {
        use tensor_engine::EngineConfig;
        let eng = GpuSim::new(EngineConfig::no_tensorcore());
        let a = ill_conditioned(512, 64, 1e6, 1);
        let cfg = small_cfg();
        let twice = rgsqrf_reortho(&eng, a.as_ref(), &cfg);
        let after = orthogonality_error(twice.q.convert::<f64>().as_ref());
        assert!(after < 1e-4, "f32 engine reortho should reach ~f32: {after}");
    }

    #[test]
    fn reortho_orthogonality_is_cond_independent() {
        // Figure 4: the RGSQRF-Reortho curve is flat in cond(A).
        let eng = GpuSim::default();
        let cfg = small_cfg();
        let mut errs = Vec::new();
        for (seed, cond) in [(10u64, 1e2), (11, 1e6)] {
            let a = ill_conditioned(512, 64, cond, seed);
            let f = rgsqrf_reortho(&eng, a.as_ref(), &cfg);
            errs.push(orthogonality_error(f.q.convert::<f64>().as_ref()));
        }
        let ratio = errs[1] / errs[0];
        assert!(
            ratio < 20.0,
            "reortho orthogonality should not track cond(A): {errs:?}"
        );
    }

    #[test]
    fn reortho_preserves_backward_error() {
        let eng = GpuSim::default();
        let a = ill_conditioned(384, 48, 1e5, 2);
        let cfg = small_cfg();
        let f = rgsqrf_reortho(&eng, a.as_ref(), &cfg);
        let be = qr_backward_error(
            a.convert::<f64>().as_ref(),
            f.q.convert::<f64>().as_ref(),
            f.r.convert::<f64>().as_ref(),
        );
        // Still a valid factorization of A at working-precision scale.
        assert!(be < 5e-2, "backward error {be}");
    }

    #[test]
    fn reortho_r_stays_upper_triangular() {
        let eng = GpuSim::default();
        let a = ill_conditioned(256, 32, 1e4, 3);
        let cfg = small_cfg();
        let f = rgsqrf_reortho(&eng, a.as_ref(), &cfg);
        for j in 0..32 {
            for i in j + 1..32 {
                assert_eq!(f.r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn reortho_on_well_conditioned_input_is_harmless() {
        let eng = GpuSim::default();
        let a: Mat<f32> = gen::gaussian(256, 32, &mut rng(4)).convert();
        let cfg = small_cfg();
        let once = rgsqrf(&eng, a.as_ref(), &cfg);
        let twice = rgsqrf_reortho(&eng, a.as_ref(), &cfg);
        let o1 = orthogonality_error(once.q.convert::<f64>().as_ref());
        let o2 = orthogonality_error(twice.q.convert::<f64>().as_ref());
        assert!(o2 <= o1 * 2.0, "reortho should not damage: {o1} -> {o2}");
    }

    #[test]
    fn reortho_charges_roughly_double_time() {
        let a = ill_conditioned(1024, 128, 1e3, 5);
        let cfg = RgsqrfConfig::default();
        let e1 = GpuSim::default();
        let _ = rgsqrf(&e1, a.as_ref(), &cfg);
        let e2 = GpuSim::default();
        let _ = rgsqrf_reortho(&e2, a.as_ref(), &cfg);
        let ratio = e2.clock() / e1.clock();
        assert!(
            (1.5..=3.0).contains(&ratio),
            "reortho cost ratio {ratio} should be ~2x"
        );
    }
}
