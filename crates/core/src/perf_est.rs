//! The paper's analytic performance estimates — formulas (4) and (7), and
//! the MAGMA hybrid pipeline model behind Table 2.
//!
//! These are the back-of-envelope models the authors used to *decide* on
//! recursive Gram-Schmidt before building it (Figures 1 and 2), evaluated
//! from the same Table 3 calibration the simulated engine charges against.

use tensor_engine::calibration::{interp, CAQR_PANEL_SPEEDUP};
use tensor_engine::perf::householder_qr_flops;

/// Panel algorithm assumed by the RGSQRF estimate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EstPanel {
    /// cuSOLVER SGEQRF panel rates (Table 3 column 6).
    Sgeqrf,
    /// The hand-coded CAQR panel (3.3x the SGEQRF rate).
    Caqr,
}

/// Formula (4): estimated TFLOPS of conventional blocked Householder QR on
/// an `m x n` matrix with panel width `b`, with the trailing update on
/// TensorCore (`tc = true`) or plain SGEMM.
///
/// The factorization spends 2 parts of its flops in the panel and `n / b`
/// parts in the trailing update (Bischof & Van Loan 1987).
pub fn house_blocked_tflops(n: usize, b: usize, tc: bool) -> f64 {
    let s_panel = interp(b, |r| r.sgeqrf);
    let s_gemm = if tc {
        interp(b, |r| r.tc_update)
    } else {
        interp(b, |r| r.s_update)
    };
    let steps = n as f64 / b as f64;
    (steps + 2.0) / (2.0 / s_panel + steps / s_gemm)
}

/// Formula (7): estimated TFLOPS of RGSQRF with recursion cutoff `b`.
///
/// At each level half the flops are the two GEMMs (one reduction-shape, one
/// update-shape, keyed by the half-width) and half are the two recursive
/// calls.
pub fn rgsqrf_tflops(n: usize, b: usize, tc: bool, panel: EstPanel) -> f64 {
    if n <= b {
        let base = interp(n, |r| r.sgeqrf);
        return match panel {
            EstPanel::Sgeqrf => base,
            EstPanel::Caqr => base * CAQR_PANEL_SPEEDUP,
        };
    }
    let h = n / 2;
    let s_rec = rgsqrf_tflops(h, b, tc, panel);
    // Harmonic mean of the two GEMM shapes at this level (equal flops).
    let (s_red, s_upd) = if tc {
        (interp(h, |r| r.tc_reduce), interp(h, |r| r.tc_update))
    } else {
        (interp(h, |r| r.s_reduce), interp(h, |r| r.s_update))
    };
    let s_gemm = 2.0 / (1.0 / s_red + 1.0 / s_upd);
    2.0 / (1.0 / s_rec + 1.0 / s_gemm)
}

/// Sustained CPU TFLOPS of the MAGMA host panel (tall-skinny `xGEQRF` on
/// the paper's 24-core Threadripper with MKL): calibrated so the Table 2
/// large-block rows, where the CPU panel dominates, land near the measured
/// 0.86-1.7 TFLOPS.
pub const MAGMA_CPU_PANEL_TFLOPS: f64 = 0.05;

/// Per-iteration pipeline overhead (host/device synchronization and panel
/// transfer) of the hybrid loop, in seconds. Calibrated against Table 2's
/// small-block rows: at B = 32 the 512 iterations cost ~1.5 s of overhead,
/// which is what pulls the measured rate down to 4.6 TFLOPS even though the
/// panel and update themselves are cheap.
pub const MAGMA_STEP_OVERHEAD_SECS: f64 = 3.0e-3;

/// Table 2's system: MAGMA hybrid QR throughput on an `m x n` matrix with
/// panel width `b`, trailing update on GPU (TensorCore optional), panel on
/// the host, pipelined so each panel overlaps the previous trailing update.
///
/// Modeled per step `i` over the remaining trailing matrix: the GPU applies
/// the block reflector (GEMM-rich `larfb`) while the CPU factors the next
/// panel; the step takes the max of the two. The larfb GEMMs have wide
/// outputs, so their rate is keyed by the trailing width, floored at the
/// panel width.
pub fn magma_hybrid_tflops(m: usize, n: usize, b: usize, tc: bool) -> f64 {
    let steps = n.div_ceil(b);
    let panel_time = |i: usize| {
        let rows = m - i * b;
        let width = b.min(n - i * b);
        2.0 * rows as f64 * width as f64 * width as f64 / (MAGMA_CPU_PANEL_TFLOPS * 1e12)
    };
    let update_time = |i: usize| {
        let rows = m - i * b;
        let width = b.min(n - i * b);
        let trailing = n - i * b - width;
        if trailing == 0 {
            return 0.0;
        }
        let update_flops = 4.0 * rows as f64 * trailing as f64 * width as f64;
        let key = trailing.min(8 * b).max(b);
        let rate = if tc {
            interp(key, |r| r.tc_update)
        } else {
            interp(key, |r| r.s_update)
        };
        update_flops / (rate * 1e12)
    };
    // Software pipeline: panel 0 runs alone; afterwards the GPU's trailing
    // update of step i overlaps the CPU's factorization of panel i+1. Every
    // iteration pays the host/device synchronization overhead.
    let mut time = panel_time(0);
    for i in 0..steps {
        let next_panel = if i + 1 < steps { panel_time(i + 1) } else { 0.0 };
        time += update_time(i).max(next_panel) + MAGMA_STEP_OVERHEAD_SECS;
    }
    householder_qr_flops(m, n) / (time * 1e12)
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 16384;

    #[test]
    fn figure1_tc_update_gains_are_modest() {
        // §3.1.1 conclusion 1: TC in the trailing update of blocked
        // Householder helps by only ~30%, not the 7x raw GEMM ratio.
        let best_tc = (0..8)
            .map(|i| house_blocked_tflops(N, 128 << i, true))
            .fold(0.0f64, f64::max);
        let best_plain = (0..8)
            .map(|i| house_blocked_tflops(N, 128 << i, false))
            .fold(0.0f64, f64::max);
        let gain = best_tc / best_plain;
        assert!(gain > 1.05 && gain < 1.8, "gain {gain}");
    }

    #[test]
    fn figure1_blocked_householder_no_better_than_cusolver() {
        // §3.1.1 conclusion 2: even TC-accelerated, blocked Householder is
        // "no better than cuSOLVER SGEQRF" (~6.7 TFLOPS) — i.e. it never
        // pulls meaningfully ahead, for any block size.
        // Practical block sizes (the formula's 2-parts-panel approximation
        // degrades once B approaches n/2, beyond Figure 1's plotted range).
        let cusolver = interp(N, |r| r.sgeqrf);
        for i in 0..6 {
            let v = house_blocked_tflops(N, 128 << i, true);
            assert!(
                v < 1.25 * cusolver,
                "B={}: {v} vs cuSOLVER {cusolver}",
                128 << i
            );
        }
    }

    #[test]
    fn figure2_rgsqrf_beats_blocked_householder_with_tc() {
        let rgs = rgsqrf_tflops(N, 128, true, EstPanel::Sgeqrf);
        let house = (0..8)
            .map(|i| house_blocked_tflops(N, 128 << i, true))
            .fold(0.0f64, f64::max);
        assert!(
            rgs > house,
            "RGSQRF estimate {rgs} should beat blocked Householder {house}"
        );
    }

    #[test]
    fn figure2_optimal_at_small_cutoff() {
        // §3.1.2: recursive QR achieves (near-)optimal performance already
        // at B = 128.
        let at_128 = rgsqrf_tflops(N, 128, true, EstPanel::Sgeqrf);
        let best = (0..8)
            .map(|i| rgsqrf_tflops(N, 128 << i, true, EstPanel::Sgeqrf))
            .fold(0.0f64, f64::max);
        assert!(at_128 > 0.75 * best, "B=128 {at_128} vs best {best}");
    }

    #[test]
    fn caqr_panel_lifts_estimate_to_paper_magnitude() {
        // §3.1.3: with the CAQR panel the estimate reaches ~27 TFLOPS on
        // 32768 x 16384 (the implementation measured 26.2).
        let v = rgsqrf_tflops(N, 128, true, EstPanel::Caqr);
        assert!(
            (20.0..35.0).contains(&v),
            "estimated {v} TFLOPS, paper says ~27"
        );
    }

    #[test]
    fn table2_magma_shape() {
        // Table 2's qualitative shape on 32768 x 16384: a peak at a small
        // block size, TC roughly a wash, and a collapse at B >= 512 where
        // the unoverlapped CPU panel dominates.
        let m = 32768;
        let bs = [32usize, 64, 128, 256, 512, 768];
        let vals: Vec<f64> = bs.iter().map(|&b| magma_hybrid_tflops(m, N, b, false)).collect();
        let peak = vals.iter().cloned().fold(0.0f64, f64::max);
        let peak_idx = vals.iter().position(|&v| v == peak).unwrap();
        assert!(peak_idx <= 2, "peak should be at B <= 128: {vals:?}");
        assert!(peak < 10.0, "MAGMA hybrid stays below 10 TFLOPS: {vals:?}");
        assert!(vals[4] < peak / 2.0, "B=512 collapses: {vals:?}");
        // TC vs no TC: limited effect (Table 2's two rows nearly match).
        let tc = magma_hybrid_tflops(m, N, 64, true);
        let plain = magma_hybrid_tflops(m, N, 64, false);
        assert!(tc / plain < 1.6, "tc {tc} vs plain {plain}");
        assert!(tc >= plain * 0.95);
    }

    #[test]
    fn without_tc_rgsqrf_estimate_collapses() {
        // Figure 7's right bars: no TensorCore, no win. On a square matrix
        // the 1.5x flop overhead makes RGSQRF-without-TC *slower* in time
        // than cuSOLVER ("may speed down... especially for squarish").
        let with = rgsqrf_tflops(N, 128, true, EstPanel::Caqr);
        let without = rgsqrf_tflops(N, 128, false, EstPanel::Caqr);
        assert!(without < with / 2.5, "with {with}, without {without}");
        // Time comparison at square shape: RGS flops 2n^3 vs Householder
        // 4n^3/3 at the cuSOLVER rate.
        let m = N;
        let rgs_time = tensor_engine::perf::rgsqrf_flops(m, N)
            / (rgsqrf_tflops(N, 128, false, EstPanel::Caqr) * 1e12);
        let cus_time = householder_qr_flops(m, N) / (interp(N, |r| r.sgeqrf) * 1e12);
        assert!(
            rgs_time > 0.8 * cus_time,
            "no-TC RGSQRF should not significantly beat cuSOLVER: {rgs_time} vs {cus_time}"
        );
    }
}
