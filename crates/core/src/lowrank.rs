//! Optimal low-rank approximation via QR-SVD — §3.4 and Table 4.
//!
//! For a tall-skinny `A`: factor `A = Q R`, take the SVD of the small square
//! `R = U S V^T`, and truncate: `A_r = Q U_r S_r V_r^T`. The QR step
//! dominates the cost for `m >> n`, so accelerating it with RGSQRF
//! accelerates the whole pipeline; and because the truncation error is the
//! dominant error term, the mixed-precision roundoff is invisible in the
//! result — the paper's Table 4 shows identical error columns for
//! RGSQRF-SVD and SGEQRF-SVD, with a 6.4x time gap.

use crate::error::TcqrError;
use crate::lls::try_rgsqrf_scaled;
use crate::recovery::{run_with_recovery, RecoveryPolicy};
use crate::rgsqrf::RgsqrfConfig;
use densemat::blas1::scal;
use densemat::lapack::Householder;
use densemat::svd::jacobi_svd;
use densemat::{gemm, Mat, Op};
use tcqr_trace::Value;
use tensor_engine::{CachedOperand, Class, GpuSim, Phase};

/// Which QR algorithm feeds the QR-SVD pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QrKind {
    /// Mixed-precision recursive Gram-Schmidt (this paper).
    Rgsqrf,
    /// Single precision Householder baseline (`SGEQRF` + explicit Q).
    Sgeqrf,
}

impl QrKind {
    /// Stable lowercase name, used as the `kind` field of trace spans.
    pub fn as_str(self) -> &'static str {
        match self {
            QrKind::Rgsqrf => "rgsqrf",
            QrKind::Sgeqrf => "sgeqrf",
        }
    }
}

/// Factors of the QR-SVD decomposition `A = Q (U S V^T)`.
#[derive(Debug)]
pub struct QrSvd {
    /// Orthonormal `m x n` factor from the QR step (f32 pipeline output).
    pub q: Mat<f32>,
    /// Left singular vectors of R (`n x n`).
    pub u: Mat<f64>,
    /// Singular values of R (= singular values of A), descending.
    pub s: Vec<f64>,
    /// Right singular vectors of R (`n x n`).
    pub v: Mat<f64>,
}

impl QrSvd {
    /// Reconstruct the rank-`r` approximation `A_r` in `f64`.
    ///
    /// Shapes are taken from the factors themselves so both the classic
    /// QR-SVD (`Q: m x n`, `V: n x n`) and the sketched variant from
    /// [`randomized_svd`] (`Q: m x l`, `V: n x l`) reconstruct correctly.
    pub fn truncate(&self, rank: usize) -> Mat<f64> {
        let m = self.q.nrows();
        let inner = self.q.ncols();
        let out_cols = self.v.nrows();
        let r = rank.min(inner);
        // W = U_r S_r (inner x r), then A_r = (Q W) V_r^T.
        let mut w: Mat<f64> = Mat::zeros(inner, r);
        for j in 0..r {
            w.col_mut(j).copy_from_slice(self.u.col(j));
            scal(self.s[j], w.col_mut(j));
        }
        let q64: Mat<f64> = self.q.convert();
        let mut qw: Mat<f64> = Mat::zeros(m, r);
        gemm(1.0, Op::NoTrans, q64.as_ref(), Op::NoTrans, w.as_ref(), 0.0, qw.as_mut());
        let vr = self.v.as_ref().submatrix(0, 0, out_cols, r).to_owned();
        let mut out: Mat<f64> = Mat::zeros(m, out_cols);
        gemm(1.0, Op::NoTrans, qw.as_ref(), Op::Trans, vr.as_ref(), 0.0, out.as_mut());
        out
    }
}

/// QR-SVD of a tall-skinny matrix on the simulated engine.
///
/// The SVD of the `n x n` R factor runs as one-sided Jacobi in `f64`
/// (numerically the same role as cuSOLVER's `gesvd` in the paper) and is
/// charged at a dense `O(n^3)` rate; for `m >> n` it is a rounding error in
/// the total next to the QR.
pub fn qr_svd(eng: &GpuSim, a: &Mat<f32>, kind: QrKind, cfg: &RgsqrfConfig) -> QrSvd {
    try_qr_svd(eng, a, kind, cfg, &RecoveryPolicy::default()).unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-tolerant [`qr_svd`]: the RGSQRF pipeline factors through the
/// recovery ladder ([`try_rgsqrf_scaled`]); the Householder baseline runs
/// off-engine and needs no protection.
pub fn try_qr_svd(
    eng: &GpuSim,
    a: &Mat<f32>,
    kind: QrKind,
    cfg: &RgsqrfConfig,
    policy: &RecoveryPolicy,
) -> Result<QrSvd, TcqrError> {
    let m = a.nrows();
    let n = a.ncols();
    if m < n {
        return Err(TcqrError::shape(
            "qr_svd",
            format!("need a tall matrix (got {m} x {n})"),
        ));
    }
    let _span = eng.tracer().span(
        "qr_svd",
        &[
            ("m", Value::from(m)),
            ("n", Value::from(n)),
            ("kind", Value::from(kind.as_str())),
        ],
    );
    let (q, r) = match kind {
        QrKind::Rgsqrf => {
            let f = try_rgsqrf_scaled(eng, a, cfg, policy)?;
            (f.q, f.r)
        }
        QrKind::Sgeqrf => {
            let h = Householder::factor(a.clone());
            eng.charge_sgeqrf(Phase::Panel, m, n);
            // Forming the explicit Q costs another ORGQR pass.
            eng.charge_orgqr(Phase::Other, Class::Fp32, m, n);
            (h.q(), h.r())
        }
    };
    // Jacobi SVD of R: ~10 n^3-class flops; charge as an n^3 GEMM pair.
    let r64: Mat<f64> = r.convert();
    let svd = jacobi_svd(r64.as_ref());
    eng.charge_gemm(Phase::Other, Class::Fp32, n, n, 5 * n);
    Ok(QrSvd {
        q,
        u: svd.u,
        s: svd.s,
        v: svd.v,
    })
}

/// Configuration for [`randomized_svd`].
#[derive(Clone, Copy, Debug)]
pub struct RandomizedSvdConfig {
    /// Oversampling columns beyond the target rank (Halko et al. suggest
    /// 5-10).
    pub oversample: usize,
    /// Power (subspace) iterations; each sharpens the captured spectrum at
    /// the cost of two more big GEMMs.
    pub power_iters: usize,
    /// Seed for the Gaussian test matrix.
    pub seed: u64,
}

impl Default for RandomizedSvdConfig {
    fn default() -> Self {
        RandomizedSvdConfig {
            oversample: 8,
            power_iters: 1,
            seed: 0x5eed,
        }
    }
}

/// Randomized truncated SVD with RGSQRF as the range finder — an extension
/// application: the Halko/Martinsson/Tropp sketch `Y = A Omega` needs
/// exactly the tall-skinny orthogonalization this paper accelerates, and the
/// orthogonality loss of one Gram-Schmidt pass is automatically repaired by
/// re-orthogonalization ("twice is enough") inside the range finder.
///
/// Every big multiply routes through the engine (TensorCore when enabled),
/// so the modeled clock covers the full pipeline.
pub fn randomized_svd(
    eng: &GpuSim,
    a: &Mat<f32>,
    rank: usize,
    rs_cfg: &RandomizedSvdConfig,
    qr_cfg: &RgsqrfConfig,
) -> QrSvd {
    try_randomized_svd(eng, a, rank, rs_cfg, qr_cfg, &RecoveryPolicy::default())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-tolerant [`randomized_svd`]: the whole sketch/range-find/project
/// pipeline retries as one unit up `policy`'s ladder when an armed fault
/// campaign corrupts any of its engine GEMMs.
pub fn try_randomized_svd(
    eng: &GpuSim,
    a: &Mat<f32>,
    rank: usize,
    rs_cfg: &RandomizedSvdConfig,
    qr_cfg: &RgsqrfConfig,
    policy: &RecoveryPolicy,
) -> Result<QrSvd, TcqrError> {
    let m = a.nrows();
    let n = a.ncols();
    if m < n {
        return Err(TcqrError::shape(
            "randomized_svd",
            format!("need a tall matrix (got {m} x {n})"),
        ));
    }
    let l = (rank + rs_cfg.oversample).min(n);
    let _span = eng.tracer().span(
        "randomized_svd",
        &[
            ("m", Value::from(m)),
            ("n", Value::from(n)),
            ("rank", Value::from(rank)),
            ("sketch_cols", Value::from(l)),
            ("power_iters", Value::from(rs_cfg.power_iters)),
        ],
    );
    run_with_recovery(
        eng,
        "randomized_svd",
        policy,
        |_att| randomized_svd_attempt(eng, a, rank, rs_cfg, qr_cfg),
        |f| f.q.all_finite() && f.s.iter().all(|s| s.is_finite()),
    )
}

/// One full pass of the randomized SVD pipeline (all engine work).
fn randomized_svd_attempt(
    eng: &GpuSim,
    a: &Mat<f32>,
    rank: usize,
    rs_cfg: &RandomizedSvdConfig,
    qr_cfg: &RgsqrfConfig,
) -> QrSvd {
    use densemat::gen;
    use tensor_engine::Phase;

    let m = a.nrows();
    let n = a.ncols();
    let l = (rank + rs_cfg.oversample).min(n);

    // A is read-only through the whole pipeline and feeds 2 + 2p big GEMMs
    // (sketch, two per power iteration, projection): round it through the
    // half format once up front instead of once per GEMM.
    let a_half = eng.cache_operand(Phase::Update, a.as_ref());
    let a_op = CachedOperand::new(a.as_ref(), a_half.as_ref());

    // Sketch: Y = A Omega (m x l).
    let omega: Mat<f32> =
        gen::gaussian(n, l, &mut gen::rng(rs_cfg.seed)).convert();
    let mut y: Mat<f32> = Mat::zeros(m, l);
    eng.gemm_f32_cached(
        Phase::Update,
        true,
        1.0,
        Op::NoTrans,
        a_op,
        Op::NoTrans,
        CachedOperand::fresh(omega.as_ref()),
        0.0,
        y.as_mut(),
    );

    // Range finder: Q = orth(Y) via RGSQRF + reortho, with optional power
    // iterations Y <- A (A^T Q) to sharpen the subspace.
    let mut q = crate::reortho::rgsqrf_reortho(eng, y.as_ref(), qr_cfg).q;
    for _ in 0..rs_cfg.power_iters {
        let mut z: Mat<f32> = Mat::zeros(n, l);
        eng.gemm_f32_cached(
            Phase::Update,
            true,
            1.0,
            Op::Trans,
            a_op,
            Op::NoTrans,
            CachedOperand::fresh(q.as_ref()),
            0.0,
            z.as_mut(),
        );
        let zq = crate::reortho::rgsqrf_reortho(eng, z.as_ref(), qr_cfg).q;
        let mut y2: Mat<f32> = Mat::zeros(m, l);
        eng.gemm_f32_cached(
            Phase::Update,
            true,
            1.0,
            Op::NoTrans,
            a_op,
            Op::NoTrans,
            CachedOperand::fresh(zq.as_ref()),
            0.0,
            y2.as_mut(),
        );
        q = crate::reortho::rgsqrf_reortho(eng, y2.as_ref(), qr_cfg).q;
    }

    // Project: B = Q^T A (l x n), then the small SVD of B.
    let mut b: Mat<f32> = Mat::zeros(l, n);
    eng.gemm_f32_cached(
        Phase::Update,
        true,
        1.0,
        Op::Trans,
        CachedOperand::fresh(q.as_ref()),
        Op::NoTrans,
        a_op,
        0.0,
        b.as_mut(),
    );
    // B is l x n with l <= n: SVD via B^T = V S U^T.
    let b64: Mat<f64> = b.convert();
    let bt = b64.transpose();
    let svd = jacobi_svd(bt.as_ref());
    eng.charge_gemm(Phase::Other, Class::Fp32, l, l, 5 * n);
    // A ~ Q B = Q (U_b S V_b^T) with U_b = svd.v, V_b = svd.u.
    QrSvd {
        q,
        u: svd.v,
        s: svd.s,
        v: svd.u,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gen::{self, rng};
    use densemat::metrics::lowrank_error;
    use densemat::svd::singular_values;

    fn small_cfg() -> RgsqrfConfig {
        RgsqrfConfig {
            cutoff: 32,
            caqr_width: 8,
            caqr_block_rows: 64,
            ..RgsqrfConfig::default()
        }
    }

    fn test_matrix(m: usize, n: usize, cond: f64, seed: u64) -> Mat<f64> {
        gen::rand_svd(m, n, gen::Spectrum::Arithmetic { cond }, &mut rng(seed))
    }

    #[test]
    fn singular_values_recovered_through_qr_svd() {
        let eng = GpuSim::default();
        let a64 = test_matrix(256, 32, 1e4, 1);
        let f = qr_svd(&eng, &a64.convert(), QrKind::Rgsqrf, &small_cfg());
        let sref = singular_values(a64.as_ref());
        // fp16-grade QR: relative error of large sigmas at ~1e-3 scale.
        for (got, want) in f.s.iter().zip(&sref).take(8) {
            assert!(
                (got - want).abs() < 2e-2 * want,
                "sigma {got} vs {want}"
            );
        }
    }

    #[test]
    fn truncation_error_matches_optimal_bound() {
        // ||A - A_r||_2 = sigma_{r+1} for the exact truncated SVD; the
        // QR-SVD result must be within the mixed-precision fuzz of that.
        let eng = GpuSim::default();
        let a64 = test_matrix(384, 48, 1e3, 2);
        let sref = singular_values(a64.as_ref());
        let f = qr_svd(&eng, &a64.convert(), QrKind::Rgsqrf, &small_cfg());
        for rank in [4usize, 16, 32] {
            let ar = f.truncate(rank);
            let err = lowrank_error(a64.as_ref(), ar.as_ref());
            let optimal = sref[rank] / sref[0];
            assert!(
                err < optimal * 1.2 + 2e-3,
                "rank {rank}: err {err} vs optimal {optimal}"
            );
        }
    }

    #[test]
    fn rgsqrf_and_sgeqrf_pipelines_agree_on_error() {
        // Table 4's key claim: identical error columns.
        let eng = GpuSim::default();
        let a64 = test_matrix(384, 48, 1e4, 3);
        let a32: Mat<f32> = a64.convert();
        let f_rgs = qr_svd(&eng, &a32, QrKind::Rgsqrf, &small_cfg());
        let f_hh = qr_svd(&eng, &a32, QrKind::Sgeqrf, &small_cfg());
        for rank in [4usize, 12, 24] {
            let e_rgs = lowrank_error(a64.as_ref(), f_rgs.truncate(rank).as_ref());
            let e_hh = lowrank_error(a64.as_ref(), f_hh.truncate(rank).as_ref());
            let rel = (e_rgs - e_hh).abs() / e_hh.max(1e-12);
            assert!(
                rel < 0.05,
                "rank {rank}: RGSQRF {e_rgs} vs SGEQRF {e_hh}"
            );
        }
    }

    #[test]
    fn rgsqrf_pipeline_is_charged_faster() {
        let a64 = test_matrix(2048, 128, 1e3, 4);
        let a32: Mat<f32> = a64.convert();
        let e1 = GpuSim::default();
        let _ = qr_svd(&e1, &a32, QrKind::Rgsqrf, &RgsqrfConfig::default());
        let e2 = GpuSim::default();
        let _ = qr_svd(&e2, &a32, QrKind::Sgeqrf, &RgsqrfConfig::default());
        assert!(
            e1.clock() < e2.clock(),
            "RGSQRF-SVD {} should beat SGEQRF-SVD {}",
            e1.clock(),
            e2.clock()
        );
    }

    #[test]
    fn full_rank_truncation_reconstructs_matrix() {
        let eng = GpuSim::default();
        let a64 = test_matrix(128, 16, 100.0, 5);
        let f = qr_svd(&eng, &a64.convert(), QrKind::Sgeqrf, &small_cfg());
        let ar = f.truncate(16);
        let err = lowrank_error(a64.as_ref(), ar.as_ref());
        assert!(err < 1e-5, "full-rank reconstruction error {err}");
    }

    #[test]
    fn randomized_svd_captures_the_dominant_subspace() {
        // Rapidly decaying spectrum: sketching with modest oversampling must
        // land close to the optimal truncation.
        let eng = GpuSim::default();
        let a64 = gen::rand_svd(
            512,
            96,
            gen::Spectrum::Geometric { cond: 1e5 },
            &mut rng(20),
        );
        let sref = singular_values(a64.as_ref());
        let rank = 16;
        let f = randomized_svd(
            &eng,
            &a64.convert(),
            rank,
            &RandomizedSvdConfig::default(),
            &small_cfg(),
        );
        // Leading singular values recovered to fp16-grade relative accuracy.
        for (got, want) in f.s.iter().zip(&sref).take(8) {
            assert!(
                (got - want).abs() < 3e-2 * want + 1e-6,
                "sigma {got} vs {want}"
            );
        }
        let ar = f.truncate(rank);
        assert_eq!(ar.ncols(), 96, "reconstruction has the original width");
        let err = lowrank_error(a64.as_ref(), ar.as_ref());
        let optimal = sref[rank] / sref[0];
        assert!(
            err < 10.0 * optimal + 5e-3,
            "rank {rank}: err {err} vs optimal {optimal}"
        );
    }

    #[test]
    fn randomized_svd_power_iterations_help_on_flat_spectra() {
        // A slowly decaying spectrum is the hard case for plain sketching;
        // power iterations must not make things worse (and usually help).
        let eng = GpuSim::default();
        let a64 = gen::rand_svd(
            384,
            64,
            gen::Spectrum::Arithmetic { cond: 1e2 },
            &mut rng(21),
        );
        let a32: Mat<f32> = a64.convert();
        let rank = 12;
        let err_of = |iters: usize| {
            let f = randomized_svd(
                &eng,
                &a32,
                rank,
                &RandomizedSvdConfig {
                    power_iters: iters,
                    ..RandomizedSvdConfig::default()
                },
                &small_cfg(),
            );
            lowrank_error(a64.as_ref(), f.truncate(rank).as_ref())
        };
        let e0 = err_of(0);
        let e2 = err_of(2);
        assert!(e2 <= e0 * 1.2, "power iterations hurt: {e0} -> {e2}");
    }

    #[test]
    fn randomized_svd_is_charged_on_the_engine() {
        let eng = GpuSim::default();
        let a64 = gen::rand_svd(256, 48, gen::Spectrum::Geometric { cond: 100.0 }, &mut rng(22));
        let _ = randomized_svd(&eng, &a64.convert(), 8, &RandomizedSvdConfig::default(), &small_cfg());
        assert!(eng.clock() > 0.0);
        assert!(eng.counters().tc_flops > 0.0);
    }

    #[test]
    fn try_variants_report_typed_shape_errors() {
        let eng = GpuSim::default();
        let wide: Mat<f32> = gen::gaussian(8, 16, &mut rng(7)).convert();
        let policy = RecoveryPolicy::default();
        let err = try_qr_svd(&eng, &wide, QrKind::Rgsqrf, &small_cfg(), &policy).unwrap_err();
        assert_eq!(err.op(), "qr_svd");
        assert!(err.to_string().contains("need a tall matrix"), "{err}");
        let err = try_randomized_svd(
            &eng,
            &wide,
            4,
            &RandomizedSvdConfig::default(),
            &small_cfg(),
            &policy,
        )
        .unwrap_err();
        assert_eq!(err.op(), "randomized_svd");
    }

    #[test]
    fn rank_beyond_width_is_clamped() {
        let eng = GpuSim::default();
        let a64 = test_matrix(64, 8, 10.0, 6);
        let f = qr_svd(&eng, &a64.convert(), QrKind::Sgeqrf, &small_cfg());
        let ar = f.truncate(100);
        assert_eq!(ar.ncols(), 8);
    }
}
