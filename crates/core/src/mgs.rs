//! Modified Gram-Schmidt QR — Algorithm 2 of the paper.
//!
//! This is the kernel the paper runs inside one GPU threadblock on a 256x32
//! tile held in shared memory. Here it is the sequential building block of
//! the CAQR panel (`caqr` module), executed per row-block by a rayon task.
//!
//! MGS is used instead of classical Gram-Schmidt because its loss of
//! orthogonality grows only linearly with the condition number (Björck 1994,
//! the paper's §3.6), and instead of Householder because every operation is
//! a vector update that stays in the tile.

use densemat::blas1::{dot, nrm2, scal};
use densemat::{MatMut, Real};
use tcqr_trace::{Tracer, Value};

/// In-place modified Gram-Schmidt QR of a tall tile.
///
/// On exit `q` (shape `m x n`, `m >= n`) holds the orthonormal factor and
/// `r` (at least `n x n`) holds R in its upper triangle with an explicitly
/// zeroed strict lower triangle.
///
/// An exactly zero (or fully annihilated) column produces a zero column in
/// `q` and a zero row in `r` — the rank-deficient convention shared with the
/// SVD module.
pub fn mgs_qr<T: Real>(mut q: MatMut<'_, T>, mut r: MatMut<'_, T>) {
    let m = q.nrows();
    let n = q.ncols();
    assert!(m >= n, "mgs_qr: need m >= n (got {m} x {n})");
    assert!(r.nrows() >= n && r.ncols() >= n, "mgs_qr: R too small");
    for j in 0..n {
        r.col_mut(j)[..n].fill(T::ZERO);
    }
    for k in 0..n {
        // R[k,k] = ||q_k||; q_k /= R[k,k]
        let rkk = nrm2(q.col(k));
        r.set(k, k, rkk);
        if rkk == T::ZERO {
            continue; // rank deficient: leave the zero column in place
        }
        scal(rkk.recip(), q.col_mut(k));
        // R[k, k+1..] = q_k^T Q[:, k+1..];  Q[:, k+1..] -= q_k R[k, k+1..]
        let (head, mut tail) = q.rb().split_at_col_mut(k + 1);
        let qk = head.col(k);
        for (offset, jj) in (k + 1..n).enumerate() {
            let col = tail.col_mut(offset);
            let rkj = dot(qk, col);
            r.set(k, jj, rkj);
            if rkj != T::ZERO {
                densemat::blas1::axpy(-rkj, qk, col);
            }
        }
    }
}

/// [`mgs_qr`] wrapped in an `mgs` trace span (fields: m, n), for callers
/// that want tile factorizations visible in a trace.
pub fn mgs_qr_traced<T: Real>(tracer: &Tracer, q: MatMut<'_, T>, r: MatMut<'_, T>) {
    let span = tracer.span(
        "mgs",
        &[("m", Value::from(q.nrows())), ("n", Value::from(q.ncols()))],
    );
    mgs_qr(q, r);
    drop(span);
}

/// Classical Gram-Schmidt QR of a tall tile (projections against the
/// *original* columns, all computed before subtraction).
///
/// Only used by the ablation benchmarks: its loss of orthogonality grows
/// with the *square* of the condition number (Giraud et al. 2005), which is
/// exactly the contrast §3.6 of the paper draws against MGS.
pub fn cgs_qr<T: Real>(mut q: MatMut<'_, T>, mut r: MatMut<'_, T>) {
    let m = q.nrows();
    let n = q.ncols();
    assert!(m >= n, "cgs_qr: need m >= n (got {m} x {n})");
    assert!(r.nrows() >= n && r.ncols() >= n, "cgs_qr: R too small");
    for j in 0..n {
        r.col_mut(j)[..n].fill(T::ZERO);
    }
    for k in 0..n {
        // Project the ORIGINAL column k against all previous q's at once.
        let (head, mut tail) = q.rb().split_at_col_mut(k);
        let col = tail.col_mut(0);
        for i in 0..k {
            let rik = dot(head.col(i), col);
            r.set(i, k, rik);
        }
        for i in 0..k {
            let rik = r.get(i, k);
            if rik != T::ZERO {
                densemat::blas1::axpy(-rik, head.col(i), col);
            }
        }
        let rkk = nrm2(col);
        r.set(k, k, rkk);
        if rkk != T::ZERO {
            scal(rkk.recip(), col);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gen::{self, rng};
    use densemat::metrics::{orthogonality_error, qr_backward_error};
    use densemat::{Mat, Op};

    fn run_mgs(a: &Mat<f64>) -> (Mat<f64>, Mat<f64>) {
        let mut q = a.clone();
        let n = a.ncols();
        let mut r = Mat::zeros(n, n);
        mgs_qr(q.as_mut(), r.as_mut());
        (q, r)
    }

    #[test]
    fn mgs_factorizes_random_tile() {
        let a = gen::gaussian(256, 32, &mut rng(1));
        let (q, r) = run_mgs(&a);
        assert!(qr_backward_error(a.as_ref(), q.as_ref(), r.as_ref()) < 1e-14);
        assert!(orthogonality_error(q.as_ref()) < 1e-13);
        for j in 0..32 {
            assert!(r[(j, j)] > 0.0, "R diagonal positive for full rank");
            for i in j + 1..32 {
                assert_eq!(r[(i, j)], 0.0, "strict lower triangle zeroed");
            }
        }
    }

    #[test]
    fn mgs_square_matrix() {
        let a = gen::gaussian(16, 16, &mut rng(2));
        let (q, r) = run_mgs(&a);
        assert!(qr_backward_error(a.as_ref(), q.as_ref(), r.as_ref()) < 1e-14);
        assert!(orthogonality_error(q.as_ref()) < 1e-13);
    }

    #[test]
    fn mgs_zero_column_is_rank_deficient_safe() {
        let mut a = gen::gaussian(20, 4, &mut rng(3));
        a.col_mut(2).fill(0.0);
        let (q, r) = run_mgs(&a);
        assert_eq!(r[(2, 2)], 0.0);
        assert!(q.col(2).iter().all(|&x| x == 0.0));
        // Other columns still orthonormal.
        for j in [0usize, 1, 3] {
            let nq = densemat::blas1::nrm2(q.col(j));
            assert!((nq - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mgs_duplicate_column_annihilates() {
        let mut a = gen::gaussian(20, 3, &mut rng(4));
        for i in 0..20 {
            let v = a[(i, 0)];
            a[(i, 2)] = v;
        }
        let (q, r) = run_mgs(&a);
        assert!(r[(2, 2)].abs() < 1e-12, "duplicate column has zero diagonal");
        let _ = q;
    }

    #[test]
    fn mgs_orthogonality_degrades_linearly_cgs_quadratically() {
        // The §3.6 contrast, at f32 so the effect is visible at small sizes.
        let cond = 1e4;
        let a64 = gen::rand_svd(128, 16, gen::Spectrum::Geometric { cond }, &mut rng(5));
        let a: Mat<f32> = a64.convert();
        let n = 16;

        let mut qm = a.clone();
        let mut rm: Mat<f32> = Mat::zeros(n, n);
        mgs_qr(qm.as_mut(), rm.as_mut());
        let mgs_err = orthogonality_error(qm.convert::<f64>().as_ref());

        let mut qc = a.clone();
        let mut rc: Mat<f32> = Mat::zeros(n, n);
        cgs_qr(qc.as_mut(), rc.as_mut());
        let cgs_err = orthogonality_error(qc.convert::<f64>().as_ref());

        let u = f32::EPSILON as f64;
        assert!(
            mgs_err < 50.0 * cond * u,
            "MGS orthogonality {mgs_err} not O(kappa u)"
        );
        assert!(
            cgs_err > 5.0 * mgs_err,
            "CGS ({cgs_err}) should lose much more orthogonality than MGS ({mgs_err})"
        );
    }

    #[test]
    fn cgs_factorizes_well_conditioned() {
        let a = gen::gaussian(64, 8, &mut rng(6));
        let mut q = a.clone();
        let mut r = Mat::zeros(8, 8);
        cgs_qr(q.as_mut(), r.as_mut());
        assert!(qr_backward_error(a.as_ref(), q.as_ref(), r.as_ref()) < 1e-13);
        assert!(orthogonality_error(q.as_ref()) < 1e-12);
    }

    #[test]
    fn r_factor_reproduces_column_norms() {
        // ||a_j||^2 == ||R[..,j]||^2 since Q has orthonormal columns.
        let a = gen::gaussian(100, 10, &mut rng(7));
        let (_, r) = run_mgs(&a);
        for j in 0..10 {
            let na = densemat::blas1::nrm2(a.col(j));
            let nr = densemat::blas1::nrm2(&r.col(j)[..10]);
            assert!((na - nr).abs() < 1e-12 * na);
        }
    }

    #[test]
    fn mgs_reconstruction_column_by_column() {
        let a = gen::gaussian(40, 6, &mut rng(8));
        let (q, r) = run_mgs(&a);
        // a_j must equal Q * R[:, j].
        let mut out = Mat::zeros(40, 6);
        for j in 0..6 {
            densemat::gemv(1.0, Op::NoTrans, q.as_ref(), r.col(j), 0.0, out.col_mut(j));
        }
        for j in 0..6 {
            for i in 0..40 {
                assert!((out[(i, j)] - a[(i, j)]).abs() < 1e-13);
            }
        }
    }
}
