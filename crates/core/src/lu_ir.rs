//! Mixed-precision LU with iterative refinement — the related-work
//! comparator of §5 (Haidar/Tomov/Dongarra/Higham 2017-2018), implemented on
//! the same simulated engine as RGSQRF.
//!
//! Blocked right-looking LU has the same panel/update split as blocked QR,
//! and its trailing update `A22 -= A21 A12` goes straight to TensorCore.
//! Classic iterative refinement then recovers working accuracy:
//!
//! ```text
//! LU = lu(fl16(A));  x = U \ (L \ P b)
//! repeat: r = b - A x  (fp64);  d = U \ (L \ P r);  x += d
//! ```
//!
//! The contrast with this paper's QR route is the point of the ablation
//! benchmarks: LU's growth factor is unbounded (column scaling cannot save
//! it, §3.5), so the half-precision factors degrade faster with the
//! condition number, and refinement stalls earlier than CGLS-on-`R` does.

use crate::error::TcqrError;
use crate::recovery::{run_with_recovery, RecoveryPolicy};
use crate::rgsqrf::RgsqrfConfig;
use densemat::lu::{apply_pivots, SingularLu};
use densemat::tri::{trsm_left_unit_lower, trsv_unit_lower, trsv_upper};
use densemat::{gemv, Mat, Op};
use tensor_engine::{Class, GpuSim, Phase};

/// Configuration for [`lu_ir_solve`].
#[derive(Clone, Copy, Debug)]
pub struct LuIrConfig {
    /// Blocked-LU panel width.
    pub block: usize,
    /// Relative tolerance on the correction, `||d|| <= tol ||x||`.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for LuIrConfig {
    fn default() -> Self {
        LuIrConfig {
            block: 32,
            tol: 1e-12,
            max_iters: 200,
        }
    }
}

/// Outcome of the refinement loop (same shape as the CGLS outcome).
pub use crate::lls::RefineOutcome;

/// Blocked LU with partial pivoting whose trailing updates run through the
/// engine (TensorCore when enabled). Panel and triangular solves stay f32,
/// mirroring the paper's decision to keep low-locality work off the tensor
/// cores.
pub fn getrf_tc(
    eng: &GpuSim,
    a: &mut Mat<f32>,
    block: usize,
) -> Result<Vec<usize>, SingularLu> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "getrf_tc: square matrices only");
    let mut piv = vec![0usize; n];
    let mut k = 0;
    while k < n {
        let nb = block.min(n - k);
        densemat::lu::getrf_panel_range(a.as_mut(), k, nb, &mut piv)?;
        // Panel cost: LU panel flops at the (memory-bound) panel rate.
        let panel_flops = (n - k) as f64 * nb as f64 * nb as f64;
        let rate = eng.perf().sgeqrf_tflops(n - k, nb) * 1e12;
        eng.charge_secs(Phase::Panel, panel_flops / rate);
        if k + nb < n {
            let trailing = n - k - nb;
            {
                let (head, tail) = a.as_mut().split_at_col_mut(k + nb);
                let l11 = head.as_ref().submatrix(k, k, nb, nb);
                let a21 = head.as_ref().submatrix(k + nb, k, trailing, nb);
                let tail_rows = tail.submatrix_mut(k, 0, n - k, trailing);
                let (mut a12, a22) = tail_rows.split_at_row_mut(nb);
                trsm_left_unit_lower(1.0, l11, a12.rb());
                eng.charge_trsm(Phase::Update, Class::Fp32, nb, trailing);
                // The TensorCore trailing update. Unlike the QR recursion,
                // both operands change every outer iteration (A21 is a new
                // panel, A12 was just solved), so there is nothing to cache
                // across calls — the engine's pooled workspace still makes
                // the per-call rounding allocation-free.
                eng.gemm_f32(
                    Phase::Update,
                    -1.0,
                    Op::NoTrans,
                    a21,
                    Op::NoTrans,
                    a12.as_ref(),
                    1.0,
                    a22,
                );
            }
        }
        k += nb;
    }
    Ok(piv)
}

/// Typed-error variant of [`getrf_tc`]: square-shape violations and LU
/// breakdowns both surface as [`TcqrError`] instead of a panic / ad-hoc
/// error type.
pub fn try_getrf_tc(
    eng: &GpuSim,
    a: &mut Mat<f32>,
    block: usize,
) -> Result<Vec<usize>, TcqrError> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(TcqrError::shape(
            "getrf_tc",
            format!("square matrices only (got {n} x {})", a.ncols()),
        ));
    }
    getrf_tc(eng, a, block).map_err(|e| TcqrError::Singular {
        op: "getrf_tc",
        detail: e.to_string(),
    })
}

/// Solve the square system `A x = b` by mixed-precision LU + classic
/// iterative refinement on the engine.
pub fn lu_ir_solve(
    eng: &GpuSim,
    a: &Mat<f64>,
    b: &[f64],
    cfg: &LuIrConfig,
) -> Result<RefineOutcome, SingularLu> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "lu_ir_solve: square system");
    assert_eq!(b.len(), n, "lu_ir_solve: rhs length");
    lu_ir_solve_inner(eng, a, b, cfg, &RecoveryPolicy::default()).unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-tolerant [`lu_ir_solve`] with typed errors: shape violations and
/// exhausted recovery ladders come back as [`TcqrError`], and a genuine LU
/// breakdown maps to [`TcqrError::Singular`].
pub fn try_lu_ir_solve(
    eng: &GpuSim,
    a: &Mat<f64>,
    b: &[f64],
    cfg: &LuIrConfig,
    policy: &RecoveryPolicy,
) -> Result<RefineOutcome, TcqrError> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(TcqrError::shape(
            "lu_ir_solve",
            format!("square system (got {n} x {})", a.ncols()),
        ));
    }
    if b.len() != n {
        return Err(TcqrError::shape(
            "lu_ir_solve",
            format!("rhs length {} does not match n = {n}", b.len()),
        ));
    }
    match lu_ir_solve_inner(eng, a, b, cfg, policy)? {
        Ok(out) => Ok(out),
        Err(e) => Err(TcqrError::Singular {
            op: "lu_ir_solve",
            detail: e.to_string(),
        }),
    }
}

/// Shared body: the outer `Result` carries recovery-layer errors, the inner
/// one a deterministic LU breakdown (which retrying cannot fix).
fn lu_ir_solve_inner(
    eng: &GpuSim,
    a: &Mat<f64>,
    b: &[f64],
    cfg: &LuIrConfig,
    policy: &RecoveryPolicy,
) -> Result<Result<RefineOutcome, SingularLu>, TcqrError> {
    let n = a.nrows();

    // Factor in mixed precision, behind the recovery ladder when a fault
    // campaign is armed (the TC trailing updates are injection targets).
    let factored = run_with_recovery(
        eng,
        "lu_ir_solve",
        policy,
        |_att| {
            let mut a32: Mat<f32> = a.convert();
            getrf_tc(eng, &mut a32, cfg.block).map(|piv| (a32, piv))
        },
        |r| match r {
            Ok((lu, _)) => lu.all_finite(),
            // A breakdown with no detected fault is a property of the
            // matrix, not a transient: retrying cannot help.
            Err(_) => true,
        },
    )?;
    let (a32, piv) = match factored {
        Ok(t) => t,
        Err(e) => return Ok(Err(e)),
    };
    // Corrupted factors kept by OnExhausted::KeepLast can carry a zero/NaN
    // U diagonal on which the triangular solves would panic; only reachable
    // while a campaign is armed.
    if eng.fault_armed() {
        for j in 0..n {
            let d = a32[(j, j)];
            if !d.is_finite() || d == 0.0 {
                return Err(TcqrError::NonFinite {
                    op: "lu_ir_solve",
                    detail: format!(
                        "U diagonal entry {j} is {d} after fault recovery; \
                         the triangular solve cannot proceed"
                    ),
                });
            }
        }
    }
    // Solves run in f64 on the widened low-precision factors (the factors
    // carry fp16-grade error; the *solve* arithmetic is not the bottleneck).
    let lu64: Mat<f64> = a32.convert();

    let solve = |v: &mut Vec<f64>| {
        apply_pivots(&piv, v);
        trsv_unit_lower(Op::NoTrans, lu64.as_ref(), v);
        trsv_upper(Op::NoTrans, lu64.as_ref(), v);
    };

    // Initial solve.
    let mut x = b.to_vec();
    solve(&mut x);
    eng.charge_trsv(Phase::Solve, Class::Fp32, n);
    eng.charge_trsv(Phase::Solve, Class::Fp32, n);

    let norm_b = densemat::blas1::nrm2(b);
    if norm_b == 0.0 {
        return Ok(Ok(RefineOutcome {
            x: vec![0.0; n],
            iterations: 0,
            converged: true,
            stalled: false,
            history: vec![],
        }));
    }

    let mut history = Vec::new();
    let mut r = vec![0.0f64; n];
    let mut best = f64::INFINITY;
    let mut stalled = 0usize;
    for it in 1..=cfg.max_iters {
        // r = b - A x in working (f64) precision.
        r.copy_from_slice(b);
        gemv(-1.0, Op::NoTrans, a.as_ref(), &x, 1.0, &mut r);
        eng.charge_gemv(Phase::Refine, Class::Fp64, n, n);
        let mut d = r.clone();
        solve(&mut d);
        eng.charge_trsv(Phase::Refine, Class::Fp64, n);
        eng.charge_trsv(Phase::Refine, Class::Fp64, n);
        let norm_d = densemat::blas1::nrm2(&d);
        let norm_x = densemat::blas1::nrm2(&x).max(1e-300);
        densemat::blas1::axpy(1.0, &d, &mut x);
        let rel = norm_d / norm_x;
        history.push(rel);
        if rel <= cfg.tol {
            return Ok(Ok(RefineOutcome {
                x,
                iterations: it,
                converged: true,
                stalled: false,
                history,
            }));
        }
        if rel >= best * 0.5 {
            // Refinement contracts by ~kappa * u_factor per step; a ratio
            // near 1 means divergence or stagnation.
            stalled += 1;
            if stalled >= 3 {
                return Ok(Ok(RefineOutcome {
                    x,
                    iterations: it,
                    converged: false,
                    stalled: true,
                    history,
                }));
            }
        } else {
            stalled = 0;
        }
        best = best.min(rel);
    }
    Ok(Ok(RefineOutcome {
        x,
        iterations: cfg.max_iters,
        converged: false,
        stalled: false,
        history,
    }))
}

/// Charge-only replay of [`lu_ir_solve`] for paper-scale comparisons.
pub fn cost_lu_ir(eng: &GpuSim, n: usize, block: usize, iterations: usize) {
    let class = if eng.uses_tc(Phase::Update) {
        Class::TensorCore
    } else {
        Class::Fp32
    };
    let mut k = 0;
    while k < n {
        let nb = block.min(n - k);
        let panel_flops = (n - k) as f64 * nb as f64 * nb as f64;
        let rate = eng.perf().sgeqrf_tflops(n - k, nb) * 1e12;
        eng.charge_secs(Phase::Panel, panel_flops / rate);
        if k + nb < n {
            let trailing = n - k - nb;
            eng.charge_trsm(Phase::Update, Class::Fp32, nb, trailing);
            eng.charge_gemm(Phase::Update, class, trailing, trailing, nb);
        }
        k += nb;
    }
    eng.charge_trsv(Phase::Solve, Class::Fp32, n);
    eng.charge_trsv(Phase::Solve, Class::Fp32, n);
    for _ in 0..iterations {
        eng.charge_gemv(Phase::Refine, Class::Fp64, n, n);
        eng.charge_trsv(Phase::Refine, Class::Fp64, n);
        eng.charge_trsv(Phase::Refine, Class::Fp64, n);
    }
}

/// A square-system solve via this paper's machinery, for the head-to-head
/// ablation: RGSQRF + CGLS treats `A x = b` as a (square) least squares
/// problem. More flops than LU, but the orthogonal factorization keeps the
/// preconditioner healthy to much larger condition numbers.
pub fn qr_square_solve(
    eng: &GpuSim,
    a: &Mat<f64>,
    b: &[f64],
    qr_cfg: &RgsqrfConfig,
    refine: &crate::lls::RefineConfig,
) -> RefineOutcome {
    crate::lls::cgls_qr(eng, a, b, qr_cfg, refine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gen::{self, rng, Spectrum};
    use densemat::metrics::rel_vec_error;
    use tensor_engine::EngineConfig;

    fn system_spec(
        n: usize,
        spec: Spectrum,
        seed: u64,
    ) -> (Mat<f64>, Vec<f64>, Vec<f64>) {
        let a = gen::rand_svd(n, n, spec, &mut rng(seed));
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos()).collect();
        let mut b = vec![0.0; n];
        gemv(1.0, Op::NoTrans, a.as_ref(), &xtrue, 0.0, &mut b);
        (a, b, xtrue)
    }

    fn system(n: usize, cond: f64, seed: u64) -> (Mat<f64>, Vec<f64>, Vec<f64>) {
        system_spec(n, Spectrum::Geometric { cond }, seed)
    }

    #[test]
    fn getrf_tc_matches_plain_lu_without_tensorcore() {
        let eng = GpuSim::new(EngineConfig::no_tensorcore());
        let a64 = gen::gaussian(48, 48, &mut rng(1));
        let a32: Mat<f32> = a64.convert();
        let mut f_tc = a32.clone();
        let piv_tc = getrf_tc(&eng, &mut f_tc, 16).unwrap();
        let mut f_ref = a32.clone();
        let mut piv_ref = vec![0usize; 48];
        densemat::lu::getrf_blocked(f_ref.as_mut(), &mut piv_ref, 16).unwrap();
        assert_eq!(piv_tc, piv_ref);
        for j in 0..48 {
            for i in 0..48 {
                assert!((f_tc[(i, j)] - f_ref[(i, j)]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn lu_ir_reaches_double_precision_on_easy_systems() {
        let eng = GpuSim::default();
        let (a, b, xtrue) = system(96, 50.0, 2);
        let out = lu_ir_solve(&eng, &a, &b, &LuIrConfig::default()).unwrap();
        assert!(out.converged, "history {:?}", out.history);
        assert!(out.iterations < 30, "{} iterations", out.iterations);
        let err = rel_vec_error(&out.x, &xtrue);
        assert!(err < 1e-10, "solution error {err}");
    }

    #[test]
    fn lu_ir_iterations_grow_with_cond() {
        let eng = GpuSim::default();
        let (a1, b1, _) = system(96, 5.0, 3);
        let easy = lu_ir_solve(&eng, &a1, &b1, &LuIrConfig::default()).unwrap();
        let (a2, b2, _) = system(96, 500.0, 4);
        let hard = lu_ir_solve(&eng, &a2, &b2, &LuIrConfig::default()).unwrap();
        assert!(
            hard.iterations >= easy.iterations,
            "easy {} vs hard {}",
            easy.iterations,
            hard.iterations
        );
    }

    #[test]
    fn lu_ir_with_fp16_factors_fails_before_qr_cgls_does() {
        // The §5 contrast at a condition number where fp16 LU refinement is
        // past its convergence horizon but CGLS on the QR's R still works.
        // (Cluster2 spectrum: CGLS's favourable case — with the *geometric*
        // spectrum both methods struggle, which is the paper's own §4.2.2
        // stress-case observation.)
        let cond = 1e5;
        let (a, b, xtrue) = system_spec(128, Spectrum::Cluster2 { cond }, 5);
        let eng = GpuSim::default();
        let lu = lu_ir_solve(&eng, &a, &b, &LuIrConfig::default()).unwrap();
        let qr = qr_square_solve(
            &eng,
            &a,
            &b,
            &RgsqrfConfig {
                cutoff: 32,
                caqr_width: 8,
                caqr_block_rows: 64,
                ..RgsqrfConfig::default()
            },
            &crate::lls::RefineConfig::default(),
        );
        let lu_err = rel_vec_error(&lu.x, &xtrue);
        let qr_err = rel_vec_error(&qr.x, &xtrue);
        assert!(qr.converged, "QR+CGLS should still converge at cond {cond}");
        assert!(qr_err < 1e-8, "QR+CGLS error {qr_err}");
        assert!(
            !lu.converged || lu_err > 10.0 * qr_err,
            "LU-IR unexpectedly kept up: lu_err {lu_err} (converged: {}), qr_err {qr_err}",
            lu.converged
        );
    }

    #[test]
    fn cost_replay_matches_real_clock() {
        let (a, b, _) = system(96, 10.0, 6);
        let real = GpuSim::default();
        let out = lu_ir_solve(&real, &a, &b, &LuIrConfig::default()).unwrap();
        let replay = GpuSim::default();
        cost_lu_ir(&replay, 96, LuIrConfig::default().block, out.iterations);
        let (tr, tp) = (real.clock(), replay.clock());
        assert!(
            ((tr - tp) / tr).abs() < 0.02,
            "clock mismatch: {tr} vs {tp}"
        );
    }

    #[test]
    fn singular_system_reported() {
        let eng = GpuSim::default();
        let mut a: Mat<f64> = Mat::zeros(8, 8);
        a[(0, 0)] = 1.0; // rank 1
        let b = vec![1.0; 8];
        assert!(lu_ir_solve(&eng, &a, &b, &LuIrConfig::default()).is_err());
    }

    #[test]
    fn try_variants_report_typed_errors() {
        let eng = GpuSim::default();
        let policy = RecoveryPolicy::default();

        let rect: Mat<f64> = Mat::zeros(8, 6);
        let err =
            try_lu_ir_solve(&eng, &rect, &[0.0; 8], &LuIrConfig::default(), &policy)
                .unwrap_err();
        assert!(matches!(err, TcqrError::ShapeMismatch { op: "lu_ir_solve", .. }), "{err}");

        let mut singular: Mat<f64> = Mat::zeros(8, 8);
        singular[(0, 0)] = 1.0;
        let err =
            try_lu_ir_solve(&eng, &singular, &[1.0; 8], &LuIrConfig::default(), &policy)
                .unwrap_err();
        assert!(matches!(err, TcqrError::Singular { op: "lu_ir_solve", .. }), "{err}");
        assert!(err.to_string().contains("broke down at column"), "{err}");

        let mut rect32: Mat<f32> = Mat::zeros(4, 6);
        let err = try_getrf_tc(&eng, &mut rect32, 2).unwrap_err();
        assert!(err.to_string().contains("square matrices only"), "{err}");
    }
}
