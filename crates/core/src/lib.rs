//! # tcqr-core
//!
//! The primary contribution of *"High Accuracy Matrix Computations on Neural
//! Engines: A Study of QR Factorization and its Applications"* (HPDC '20),
//! implemented against the simulated neural engine of [`tensor_engine`]:
//!
//! - [`rgsqrf`] — recursive Gram-Schmidt QR (Algorithm 1), the factorization
//!   that exposes enough locality for tensor cores;
//! - [`caqr`] + [`mgs`] — the communication-avoiding Gram-Schmidt panel
//!   (§3.1.3, Algorithm 2);
//! - [`reortho`] — re-orthogonalization, "twice is enough" (§3.3);
//! - [`scaling`] — exact power-of-two column scaling against FP16
//!   overflow/underflow (§3.5);
//! - [`health`] — numerical-health monitors: orthogonality-drift sampling,
//!   scaling-exponent reporting, residual-decay slopes (off by default,
//!   gated by `TCQR_HEALTH` / [`health::set_enabled`]);
//! - [`lls`] — least-squares solvers: RGSQRF direct, cuSOLVER-style
//!   baselines, and the CGLS/LSQR refiners with R as right preconditioner
//!   (Algorithm 3);
//! - [`lowrank`] — QR-SVD optimal low-rank approximation (§3.4);
//! - [`solver`] — the [`solver::Solver`] trait: one dispatch surface over
//!   the `try_*` entry points, shared by the batch scheduler and the
//!   `tcqr-serve` service (new workloads implement it once and plug into
//!   both);
//! - [`recovery`] + [`error`] — the fault-recovery ladder (retry, dynamic
//!   rescale, bf16/f32 escalation) behind the engine's ABFT detectors, and
//!   the typed errors the `try_*` solver entry points return;
//! - [`cholqr`] — the CholeskyQR/CholeskyQR2 related-work baseline (§5);
//! - [`perf_est`] — the paper's analytic performance formulas (4)/(7) and
//!   the Table 2 hybrid pipeline model.
//!
//! ## Quick start
//!
//! ```
//! use densemat::gen::{self, rng};
//! use tcqr_core::rgsqrf::{rgsqrf, RgsqrfConfig};
//! use tensor_engine::GpuSim;
//!
//! let a = gen::gaussian(512, 128, &mut rng(0)).convert::<f32>();
//! let engine = GpuSim::default(); // TensorCore in the trailing update
//! let f = rgsqrf(&engine, a.as_ref(), &RgsqrfConfig::default());
//! assert_eq!(f.q.ncols(), 128);
//! println!("modeled V100 time: {:.3} ms", engine.clock() * 1e3);
//! ```

#![warn(missing_docs)]

pub mod caqr;
pub mod cholqr;
pub mod cost;
pub mod error;
pub mod error_analysis;
pub mod health;
pub mod lls;
pub mod lowrank;
pub mod lu_ir;
pub mod mgs;
pub mod perf_est;
pub mod recovery;
pub mod reortho;
pub mod rgsqrf;
pub mod scaling;
pub mod solver;

pub use error::TcqrError;
pub use lls::{RefineConfig, RefineOutcome};
pub use solver::{
    LlsMethod, LlsProblem, LuIrProblem, QrSvdProblem, RgsqrfProblem, SolveOutput, Solver,
};
pub use recovery::{OnExhausted, RecoveryPolicy, Rung};
pub use rgsqrf::{PanelKind, QrFactors, RgsqrfConfig};
