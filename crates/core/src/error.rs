//! Typed errors for the public solver boundaries.
//!
//! Historically every precondition violation in `tcqr-core` was an
//! `assert!`/`panic!`. That is fine for internal invariants, but user input
//! (shapes, configurations, fault campaigns) reaches the same sites, and a
//! fault-injection campaign must be able to report "the retry budget ran
//! out" without tearing the process down. Each public solver now has a
//! `try_*` variant returning `Result<_, TcqrError>`; the original panicking
//! entry points remain as thin wrappers whose panic message is the error's
//! [`Display`](std::fmt::Display) form, so existing callers (and
//! `#[should_panic]` tests) see exactly the messages they always did.

use std::fmt;

/// Error type of the `try_*` solver entry points.
#[derive(Clone, Debug, PartialEq)]
pub enum TcqrError {
    /// Input shapes or configuration violate a documented precondition.
    ShapeMismatch {
        /// The public entry point that rejected the input.
        op: &'static str,
        /// Human-readable description (the former panic message).
        detail: String,
    },
    /// A solver output carried NaN/Inf where the contract requires finite
    /// values and no recovery path was available.
    NonFinite {
        /// The public entry point that produced the output.
        op: &'static str,
        /// Human-readable description.
        detail: String,
    },
    /// The square system's factorization hit a zero pivot (LU only).
    Singular {
        /// The public entry point that failed.
        op: &'static str,
        /// Human-readable description.
        detail: String,
    },
    /// An armed fault campaign corrupted the computation and the policy
    /// forbade retrying (`max_retries == 0` with
    /// [`OnExhausted::Error`](crate::recovery::OnExhausted::Error)).
    FaultDetected {
        /// The public entry point whose computation was corrupted.
        op: &'static str,
        /// Human-readable description.
        detail: String,
    },
    /// The recovery ladder retried [`attempts`](Self::RetryBudgetExhausted)
    /// times and every attempt came back corrupted.
    RetryBudgetExhausted {
        /// The public entry point that exhausted its retries.
        op: &'static str,
        /// Total attempts made (initial try plus retries).
        attempts: usize,
        /// Human-readable description.
        detail: String,
    },
    /// The engine executing the job died (an availability fault, see
    /// `tensor_engine::avail`) and no healthy engine remained to take the
    /// job over — the fleet-level analogue of a data fault the recovery
    /// ladder could not repair.
    EngineLost {
        /// The public entry point whose job was stranded.
        op: &'static str,
        /// Pool index of the last engine that held the job.
        engine: usize,
        /// Human-readable description.
        detail: String,
    },
}

impl TcqrError {
    /// Shorthand for a [`TcqrError::ShapeMismatch`].
    pub fn shape(op: &'static str, detail: impl Into<String>) -> TcqrError {
        TcqrError::ShapeMismatch {
            op,
            detail: detail.into(),
        }
    }

    /// The public entry point the error originated from.
    pub fn op(&self) -> &'static str {
        match self {
            TcqrError::ShapeMismatch { op, .. }
            | TcqrError::NonFinite { op, .. }
            | TcqrError::Singular { op, .. }
            | TcqrError::FaultDetected { op, .. }
            | TcqrError::RetryBudgetExhausted { op, .. }
            | TcqrError::EngineLost { op, .. } => op,
        }
    }
}

impl fmt::Display for TcqrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The "{op}: {detail}" shape reproduces the historical panic
        // messages byte-for-byte — the panicking wrappers rely on this.
        match self {
            TcqrError::ShapeMismatch { op, detail }
            | TcqrError::NonFinite { op, detail }
            | TcqrError::Singular { op, detail }
            | TcqrError::FaultDetected { op, detail } => write!(f, "{op}: {detail}"),
            TcqrError::RetryBudgetExhausted {
                op,
                attempts,
                detail,
            } => write!(f, "{op}: retry budget exhausted after {attempts} attempts ({detail})"),
            TcqrError::EngineLost { op, engine, detail } => {
                write!(f, "{op}: engine {engine} lost ({detail})")
            }
        }
    }
}

impl std::error::Error for TcqrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_reproduces_panic_message_shape() {
        let e = TcqrError::shape("rgsqrf", "need m >= n >= 1 (got 10 x 20)");
        assert_eq!(e.to_string(), "rgsqrf: need m >= n >= 1 (got 10 x 20)");
        assert_eq!(e.op(), "rgsqrf");

        let e = TcqrError::RetryBudgetExhausted {
            op: "rgsqrf_scaled",
            attempts: 3,
            detail: "last attempt still corrupted".into(),
        };
        let s = e.to_string();
        assert!(s.contains("retry budget exhausted"), "{s}");
        assert!(s.contains("3 attempts"), "{s}");
    }

    #[test]
    fn errors_are_comparable_and_cloneable() {
        let a = TcqrError::shape("lls", "rhs length");
        let b = a.clone();
        assert_eq!(a, b);
        let c = TcqrError::NonFinite {
            op: "lls",
            detail: "rhs length".into(),
        };
        assert_ne!(a, c);
    }
}
