//! Automatic column scaling against FP16 overflow/underflow — §3.5.
//!
//! Scaling the columns of `A` by a diagonal `P` leaves the Q factor of the
//! QR factorization unchanged: `A P = Q (R P)`, so R is recovered exactly by
//! un-scaling its columns. With power-of-two factors the scaling itself is
//! exact in floating point, making the transformation free of rounding
//! error in both directions.
//!
//! The target brings every column's largest entry near 1. Orthogonal
//! transformations preserve 2-norms, so once the input is in range no
//! intermediate quantity of the Gram-Schmidt recursion can overflow —
//! a guarantee LU factorization (whose growth factors are unbounded)
//! cannot make.

use densemat::blas1::scal;
use densemat::{MatMut, MatRef};

/// Exact power-of-two column scaling factors.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnScaling {
    /// `scales[j]` multiplies column `j`; always a power of two (or 1 for a
    /// zero column).
    pub scales: Vec<f32>,
}

impl ColumnScaling {
    /// Identity scaling for `n` columns.
    pub fn identity(n: usize) -> Self {
        ColumnScaling {
            scales: vec![1.0; n],
        }
    }

    /// True if every factor is exactly 1.
    pub fn is_identity(&self) -> bool {
        self.scales.iter().all(|&s| s == 1.0)
    }

    /// Number of columns with a non-identity factor.
    pub fn scaled_cols(&self) -> usize {
        self.scales.iter().filter(|&&s| s != 1.0).count()
    }

    /// `(min, max)` base-2 exponents over the non-identity factors (each
    /// factor is exactly `2^e`), or `None` for the identity scaling. The
    /// health monitors report this range: a wide one means the input columns
    /// spanned many binades and §3.5 did real work.
    pub fn exponent_range(&self) -> Option<(i32, i32)> {
        let mut range: Option<(i32, i32)> = None;
        for &s in &self.scales {
            if s != 1.0 && s > 0.0 && s.is_finite() {
                let e = s.log2().round() as i32;
                range = Some(match range {
                    None => (e, e),
                    Some((lo, hi)) => (lo.min(e), hi.max(e)),
                });
            }
        }
        range
    }
}

/// Exponent `e` with `2^e <= x < 2^(e+1)`, read off the bit pattern.
///
/// Exact for every positive finite `x`, including subnormals — unlike
/// `x.log2().ceil()`, whose rounding misclassifies exact powers of two
/// (`log2` returns the integer, `ceil` keeps it, and the column ends up at
/// 1.0 instead of in `[0.5, 1)`).
fn floor_log2(x: f32) -> i32 {
    debug_assert!(x > 0.0 && x.is_finite());
    let bits = x.to_bits();
    let exp = ((bits >> 23) & 0xff) as i32;
    if exp == 0 {
        // Subnormal: x = mant * 2^-149 with mant < 2^23.
        let mant = bits & 0x7f_ffff;
        31 - mant.leading_zeros() as i32 - 149
    } else {
        exp - 127
    }
}

/// `2^e` as an `f32`, with `e` clamped to the normal-number range so the
/// factor is never zero, subnormal, or infinite (a column at the very edge
/// of the f32 range gets the strongest exact factor available instead).
fn pow2(e: i32) -> f32 {
    f32::from_bits(((e.clamp(-126, 127) + 127) as u32) << 23)
}

/// Compute scaling that brings each column's max-magnitude entry to
/// `[0.5, 1)` — squarely inside the FP16 range with headroom for the
/// `sqrt(m)`-bounded growth of intermediate 2-norms.
pub fn compute_column_scaling(a: MatRef<'_, f32>) -> ColumnScaling {
    compute_column_scaling_checked(a).0
}

/// [`compute_column_scaling`], also reporting which columns contained a NaN.
///
/// A NaN would silently vanish in a plain `max` scan (`max` ignores NaN
/// operands), producing a factor inferred from the column's other entries —
/// disguising data that is already poisoned. Such columns get the identity
/// factor instead and their indices are returned so engine-aware callers
/// can raise a health warning (in the spirit of `engine.fp16_overflow`).
pub fn compute_column_scaling_checked(a: MatRef<'_, f32>) -> (ColumnScaling, Vec<usize>) {
    compute_column_scaling_with_headroom(a, 0)
}

/// [`compute_column_scaling_checked`] with `headroom` extra power-of-two
/// bits: each column's max lands in `[2^-(1+h), 2^-h)` instead of
/// `[0.5, 1)`.
///
/// The recovery ladder's [`Rung::Rescale`](crate::recovery::Rung::Rescale)
/// uses this to pull intermediates further from the fp16 overflow edge when
/// a fault campaign (or genuinely adversarial data) keeps pushing results
/// out of range — a dynamic generalization of the paper's fixed §3.5
/// target. The factors stay exact powers of two, so un-scaling R remains
/// bit-exact at any headroom.
pub fn compute_column_scaling_with_headroom(
    a: MatRef<'_, f32>,
    headroom: u32,
) -> (ColumnScaling, Vec<usize>) {
    let mut nan_cols = Vec::new();
    let h = headroom.min(64) as i32;
    let scales = (0..a.ncols())
        .map(|j| {
            let mut amax = 0.0f32;
            let mut has_nan = false;
            for &x in a.col(j) {
                if x.is_nan() {
                    has_nan = true;
                } else {
                    amax = amax.max(x.abs());
                }
            }
            if has_nan {
                nan_cols.push(j);
                1.0
            } else if amax == 0.0 || !amax.is_finite() {
                1.0
            } else {
                // 2^-(floor_log2(amax) + 1 + h): exact, puts amax in
                // [2^-(1+h), 2^-h).
                pow2(-(floor_log2(amax) + 1 + h))
            }
        })
        .collect();
    (ColumnScaling { scales }, nan_cols)
}

/// Apply the scaling in place: `A <- A P`.
pub fn scale_columns(mut a: MatMut<'_, f32>, scaling: &ColumnScaling) {
    assert_eq!(a.ncols(), scaling.scales.len(), "scaling length");
    for j in 0..a.ncols() {
        let s = scaling.scales[j];
        if s != 1.0 {
            scal(s, a.col_mut(j));
        }
    }
}

/// Undo the scaling on an R factor: `R <- R P^{-1}` (divide column `j` by
/// `scales[j]`; exact since the factors are powers of two).
pub fn unscale_r(mut r: MatMut<'_, f32>, scaling: &ColumnScaling) {
    assert_eq!(r.ncols(), scaling.scales.len(), "scaling length");
    for j in 0..r.ncols() {
        let s = scaling.scales[j];
        if s != 1.0 {
            scal(1.0 / s, r.col_mut(j));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gen::{self, rng};
    use densemat::metrics::qr_backward_error;
    use densemat::Mat;

    #[test]
    fn scaling_factors_are_powers_of_two() {
        let a: Mat<f32> = gen::badly_scaled(50, 6, 10.0, &mut rng(1)).convert();
        let s = compute_column_scaling(a.as_ref());
        for &f in &s.scales {
            assert!(f > 0.0);
            let l = f.log2();
            assert_eq!(l, l.round(), "{f} is not a power of two");
        }
    }

    #[test]
    fn scaled_columns_land_in_half_unit_interval() {
        let a: Mat<f32> = gen::badly_scaled(50, 8, 12.0, &mut rng(2)).convert();
        let s = compute_column_scaling(a.as_ref());
        let mut b = a.clone();
        scale_columns(b.as_mut(), &s);
        for j in 0..8 {
            let amax = b.col(j).iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            assert!((0.5..1.0).contains(&amax), "col {j}: max {amax}");
        }
    }

    #[test]
    fn scale_then_unscale_is_exact_identity() {
        let a: Mat<f32> = gen::gaussian(30, 5, &mut rng(3)).convert();
        let s = compute_column_scaling(a.as_ref());
        let mut b = a.clone();
        scale_columns(b.as_mut(), &s);
        unscale_r(b.as_mut(), &s);
        assert_eq!(a, b, "power-of-two round trip must be bit-exact");
    }

    #[test]
    fn power_of_two_boundaries_scale_into_range() {
        // Regression: log2().ceil() left columns whose max is an exact power
        // of two (or one ulp above) at 1.0 instead of inside [0.5, 1).
        let nextafter_one = f32::from_bits(1.0f32.to_bits() + 1);
        for (amax, want) in [
            (0.25f32, 2.0f32),
            (0.5, 1.0),
            (1.0, 0.5),
            (2.0, 0.25),
            (nextafter_one, 0.5),
        ] {
            let mut a: Mat<f32> = Mat::zeros(4, 1);
            a.col_mut(0)[0] = -0.01;
            a.col_mut(0)[2] = amax;
            let s = compute_column_scaling(a.as_ref());
            assert_eq!(s.scales[0], want, "factor for amax {amax}");
            let scaled = amax * s.scales[0];
            assert!(
                (0.5..1.0).contains(&scaled),
                "amax {amax} scaled to {scaled}, outside [0.5, 1)"
            );
        }
    }

    #[test]
    fn extreme_magnitudes_keep_finite_nonzero_factors() {
        // Subnormal and near-f32::MAX columns: the exponent clamp keeps the
        // factor an exact normal power of two in both directions.
        let mut a: Mat<f32> = Mat::zeros(4, 2);
        a.col_mut(0)[0] = 1.0e-40; // subnormal
        a.col_mut(1)[0] = f32::MAX;
        let s = compute_column_scaling(a.as_ref());
        for (j, &f) in s.scales.iter().enumerate() {
            assert!(f.is_finite() && f > 0.0, "col {j}: factor {f}");
            let scaled = a.col(j)[0] * f;
            assert!(scaled.is_finite() && scaled != 0.0, "col {j}: {scaled}");
        }
    }

    #[test]
    fn nan_columns_get_identity_factor_and_are_reported() {
        // Regression: a max-fold silently ignores NaN, so the column got a
        // factor inferred from its finite entries and the poison GEMM'd on.
        let mut a: Mat<f32> = gen::badly_scaled(20, 4, 8.0, &mut rng(9)).convert();
        a.col_mut(1)[7] = f32::NAN;
        let (s, nan_cols) = compute_column_scaling_checked(a.as_ref());
        assert_eq!(nan_cols, vec![1]);
        assert_eq!(s.scales[1], 1.0, "NaN column must not be scaled");
        // The clean columns are still brought into range.
        for j in [0usize, 2, 3] {
            let amax = a.col(j).iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let scaled = amax * s.scales[j];
            assert!((0.5..1.0).contains(&scaled), "col {j}: {scaled}");
        }
        // And the unchecked entry point agrees.
        assert_eq!(compute_column_scaling(a.as_ref()), s);
    }

    #[test]
    fn zero_and_nonfinite_columns_get_identity_factor() {
        let mut a: Mat<f32> = gen::gaussian(10, 3, &mut rng(4)).convert();
        a.col_mut(1).fill(0.0);
        a.col_mut(2)[0] = f32::INFINITY;
        let s = compute_column_scaling(a.as_ref());
        assert_eq!(s.scales[1], 1.0);
        assert_eq!(s.scales[2], 1.0);
    }

    #[test]
    fn exponent_range_and_scaled_cols() {
        let id = ColumnScaling::identity(3);
        assert_eq!(id.exponent_range(), None);
        assert_eq!(id.scaled_cols(), 0);
        let s = ColumnScaling {
            scales: vec![1.0, 0.25, 8.0],
        };
        assert_eq!(s.exponent_range(), Some((-2, 3)));
        assert_eq!(s.scaled_cols(), 2);
        // Computed scalings report the exponents that were applied.
        let a: Mat<f32> = gen::badly_scaled(40, 6, 9.0, &mut rng(7)).convert();
        let c = compute_column_scaling(a.as_ref());
        if !c.is_identity() {
            let (lo, hi) = c.exponent_range().unwrap();
            assert!(lo <= hi);
        }
    }

    #[test]
    fn headroom_shifts_the_target_interval() {
        let a: Mat<f32> = gen::badly_scaled(40, 6, 10.0, &mut rng(11)).convert();
        for h in [0u32, 2, 4] {
            let (s, nan_cols) = compute_column_scaling_with_headroom(a.as_ref(), h);
            assert!(nan_cols.is_empty());
            let lo = 2f32.powi(-(h as i32) - 1);
            let hi = 2f32.powi(-(h as i32));
            for j in 0..6 {
                let amax = a.col(j).iter().fold(0.0f32, |m, &x| m.max(x.abs()));
                let scaled = amax * s.scales[j];
                assert!(
                    (lo..hi).contains(&scaled),
                    "headroom {h} col {j}: {scaled} not in [{lo}, {hi})"
                );
            }
            // Round trip stays bit-exact at every headroom.
            let mut b = a.clone();
            scale_columns(b.as_mut(), &s);
            unscale_r(b.as_mut(), &s);
            assert_eq!(a, b);
        }
        // Zero headroom is the plain checked scaling.
        assert_eq!(
            compute_column_scaling_with_headroom(a.as_ref(), 0).0,
            compute_column_scaling(a.as_ref())
        );
    }

    #[test]
    fn identity_helpers() {
        let s = ColumnScaling::identity(4);
        assert!(s.is_identity());
        let a: Mat<f32> = gen::gaussian(10, 4, &mut rng(5)).convert();
        let mut b = a.clone();
        scale_columns(b.as_mut(), &s);
        assert_eq!(a, b);
    }

    #[test]
    fn qr_of_scaled_matrix_recovers_original_r() {
        // End-to-end invariant: QR(A P) then R P^{-1} factorizes A.
        let a64 = gen::badly_scaled(200, 16, 6.0, &mut rng(6));
        let a: Mat<f32> = a64.convert();
        let s = compute_column_scaling(a.as_ref());
        let mut ap = a.clone();
        scale_columns(ap.as_mut(), &s);

        let mut q = ap.clone();
        let mut r: Mat<f32> = Mat::zeros(16, 16);
        crate::mgs::mgs_qr(q.as_mut(), r.as_mut());
        unscale_r(r.as_mut(), &s);

        let be = qr_backward_error(
            a.convert::<f64>().as_ref(),
            q.convert::<f64>().as_ref(),
            r.convert::<f64>().as_ref(),
        );
        assert!(be < 1e-5, "backward error vs ORIGINAL A: {be}");
    }
}
