//! Automatic column scaling against FP16 overflow/underflow — §3.5.
//!
//! Scaling the columns of `A` by a diagonal `P` leaves the Q factor of the
//! QR factorization unchanged: `A P = Q (R P)`, so R is recovered exactly by
//! un-scaling its columns. With power-of-two factors the scaling itself is
//! exact in floating point, making the transformation free of rounding
//! error in both directions.
//!
//! The target brings every column's largest entry near 1. Orthogonal
//! transformations preserve 2-norms, so once the input is in range no
//! intermediate quantity of the Gram-Schmidt recursion can overflow —
//! a guarantee LU factorization (whose growth factors are unbounded)
//! cannot make.

use densemat::blas1::scal;
use densemat::{MatMut, MatRef};

/// Exact power-of-two column scaling factors.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnScaling {
    /// `scales[j]` multiplies column `j`; always a power of two (or 1 for a
    /// zero column).
    pub scales: Vec<f32>,
}

impl ColumnScaling {
    /// Identity scaling for `n` columns.
    pub fn identity(n: usize) -> Self {
        ColumnScaling {
            scales: vec![1.0; n],
        }
    }

    /// True if every factor is exactly 1.
    pub fn is_identity(&self) -> bool {
        self.scales.iter().all(|&s| s == 1.0)
    }

    /// Number of columns with a non-identity factor.
    pub fn scaled_cols(&self) -> usize {
        self.scales.iter().filter(|&&s| s != 1.0).count()
    }

    /// `(min, max)` base-2 exponents over the non-identity factors (each
    /// factor is exactly `2^e`), or `None` for the identity scaling. The
    /// health monitors report this range: a wide one means the input columns
    /// spanned many binades and §3.5 did real work.
    pub fn exponent_range(&self) -> Option<(i32, i32)> {
        let mut range: Option<(i32, i32)> = None;
        for &s in &self.scales {
            if s != 1.0 && s > 0.0 && s.is_finite() {
                let e = s.log2().round() as i32;
                range = Some(match range {
                    None => (e, e),
                    Some((lo, hi)) => (lo.min(e), hi.max(e)),
                });
            }
        }
        range
    }
}

/// Compute scaling that brings each column's max-magnitude entry to
/// `[0.5, 1)` — squarely inside the FP16 range with headroom for the
/// `sqrt(m)`-bounded growth of intermediate 2-norms.
pub fn compute_column_scaling(a: MatRef<'_, f32>) -> ColumnScaling {
    let scales = (0..a.ncols())
        .map(|j| {
            let amax = a
                .col(j)
                .iter()
                .fold(0.0f32, |m, &x| m.max(x.abs()));
            if amax == 0.0 || !amax.is_finite() {
                1.0
            } else {
                // 2^-ceil(log2(amax)): exact, puts amax in [0.5, 1).
                let e = amax.log2().ceil() as i32;
                2.0f32.powi(-e)
            }
        })
        .collect();
    ColumnScaling { scales }
}

/// Apply the scaling in place: `A <- A P`.
pub fn scale_columns(mut a: MatMut<'_, f32>, scaling: &ColumnScaling) {
    assert_eq!(a.ncols(), scaling.scales.len(), "scaling length");
    for j in 0..a.ncols() {
        let s = scaling.scales[j];
        if s != 1.0 {
            scal(s, a.col_mut(j));
        }
    }
}

/// Undo the scaling on an R factor: `R <- R P^{-1}` (divide column `j` by
/// `scales[j]`; exact since the factors are powers of two).
pub fn unscale_r(mut r: MatMut<'_, f32>, scaling: &ColumnScaling) {
    assert_eq!(r.ncols(), scaling.scales.len(), "scaling length");
    for j in 0..r.ncols() {
        let s = scaling.scales[j];
        if s != 1.0 {
            scal(1.0 / s, r.col_mut(j));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gen::{self, rng};
    use densemat::metrics::qr_backward_error;
    use densemat::Mat;

    #[test]
    fn scaling_factors_are_powers_of_two() {
        let a: Mat<f32> = gen::badly_scaled(50, 6, 10.0, &mut rng(1)).convert();
        let s = compute_column_scaling(a.as_ref());
        for &f in &s.scales {
            assert!(f > 0.0);
            let l = f.log2();
            assert_eq!(l, l.round(), "{f} is not a power of two");
        }
    }

    #[test]
    fn scaled_columns_land_in_half_unit_interval() {
        let a: Mat<f32> = gen::badly_scaled(50, 8, 12.0, &mut rng(2)).convert();
        let s = compute_column_scaling(a.as_ref());
        let mut b = a.clone();
        scale_columns(b.as_mut(), &s);
        for j in 0..8 {
            let amax = b.col(j).iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            assert!((0.5..1.0).contains(&amax), "col {j}: max {amax}");
        }
    }

    #[test]
    fn scale_then_unscale_is_exact_identity() {
        let a: Mat<f32> = gen::gaussian(30, 5, &mut rng(3)).convert();
        let s = compute_column_scaling(a.as_ref());
        let mut b = a.clone();
        scale_columns(b.as_mut(), &s);
        unscale_r(b.as_mut(), &s);
        assert_eq!(a, b, "power-of-two round trip must be bit-exact");
    }

    #[test]
    fn zero_and_nonfinite_columns_get_identity_factor() {
        let mut a: Mat<f32> = gen::gaussian(10, 3, &mut rng(4)).convert();
        a.col_mut(1).fill(0.0);
        a.col_mut(2)[0] = f32::INFINITY;
        let s = compute_column_scaling(a.as_ref());
        assert_eq!(s.scales[1], 1.0);
        assert_eq!(s.scales[2], 1.0);
    }

    #[test]
    fn exponent_range_and_scaled_cols() {
        let id = ColumnScaling::identity(3);
        assert_eq!(id.exponent_range(), None);
        assert_eq!(id.scaled_cols(), 0);
        let s = ColumnScaling {
            scales: vec![1.0, 0.25, 8.0],
        };
        assert_eq!(s.exponent_range(), Some((-2, 3)));
        assert_eq!(s.scaled_cols(), 2);
        // Computed scalings report the exponents that were applied.
        let a: Mat<f32> = gen::badly_scaled(40, 6, 9.0, &mut rng(7)).convert();
        let c = compute_column_scaling(a.as_ref());
        if !c.is_identity() {
            let (lo, hi) = c.exponent_range().unwrap();
            assert!(lo <= hi);
        }
    }

    #[test]
    fn identity_helpers() {
        let s = ColumnScaling::identity(4);
        assert!(s.is_identity());
        let a: Mat<f32> = gen::gaussian(10, 4, &mut rng(5)).convert();
        let mut b = a.clone();
        scale_columns(b.as_mut(), &s);
        assert_eq!(a, b);
    }

    #[test]
    fn qr_of_scaled_matrix_recovers_original_r() {
        // End-to-end invariant: QR(A P) then R P^{-1} factorizes A.
        let a64 = gen::badly_scaled(200, 16, 6.0, &mut rng(6));
        let a: Mat<f32> = a64.convert();
        let s = compute_column_scaling(a.as_ref());
        let mut ap = a.clone();
        scale_columns(ap.as_mut(), &s);

        let mut q = ap.clone();
        let mut r: Mat<f32> = Mat::zeros(16, 16);
        crate::mgs::mgs_qr(q.as_mut(), r.as_mut());
        unscale_r(r.as_mut(), &s);

        let be = qr_backward_error(
            a.convert::<f64>().as_ref(),
            q.convert::<f64>().as_ref(),
            r.convert::<f64>().as_ref(),
        );
        assert!(be < 1e-5, "backward error vs ORIGINAL A: {be}");
    }
}
