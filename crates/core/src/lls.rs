//! Linear least squares solvers — §3.2 and Algorithm 3.
//!
//! Four solver families, matching the paper's Figure 8/9 lineup:
//!
//! - [`rgsqrf_direct`] — "RGSQRF Direct Solver": the mixed-precision QR with
//!   `x = R \ (Q^T b)`. Fast but ~two digits worse than single precision
//!   (Figure 9), which motivates refinement.
//! - [`scusolve`] / [`dcusolve`] — the cuSOLVER baselines
//!   (`xGEQRF + xORMQR + xTRSM`) in single and double precision.
//! - [`cgls_qr`] — Algorithm 3: CGLS (conjugate gradients on the normal
//!   equations, in its numerically stable form) with the RGSQRF `R` factor
//!   as right preconditioner. With a good R, `kappa(A R^{-1}) ~ 1` and the
//!   iteration converges in a handful of steps to double-precision-level
//!   accuracy.
//! - [`lsqr_qr`] — the Paige–Saunders LSQR with the same preconditioner
//!   (the paper's §5 mentions it as the mathematically equivalent,
//!   numerically more stable alternative; included as an extension).
//!
//! [`normal_equations`] (Cholesky on `A^T A`) is included as the classic
//! fast-but-unstable contrast used in the examples.

use crate::error::TcqrError;
use crate::recovery::{run_with_recovery, RecoveryPolicy};
use crate::rgsqrf::{rgsqrf, QrFactors, RgsqrfConfig};
use crate::scaling::{compute_column_scaling_with_headroom, scale_columns, unscale_r};
use densemat::blas1::nrm2;
use densemat::lapack::Householder;
use densemat::tri::{potrf_upper, trsv_upper, NotPositiveDefinite};
use densemat::{gemm, gemv, Mat, Op, Real};
use tcqr_trace::{Tracer, Value};
use tensor_engine::{Class, GpuSim, Phase};

/// Stopping rule for the iterative refiners.
#[derive(Clone, Copy, Debug)]
pub struct RefineConfig {
    /// Relative tolerance on the preconditioned normal-equations residual
    /// `||s_k|| <= tol ||s_0||`.
    pub tol: f64,
    /// Iteration cap (the paper tolerates at most 200).
    pub max_iters: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            tol: 1e-12,
            max_iters: 200,
        }
    }
}

/// Result of an iterative refinement solve.
#[derive(Clone, Debug)]
pub struct RefineOutcome {
    /// The solution estimate.
    pub x: Vec<f64>,
    /// Refinement iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met (vs. hitting the cap / stagnating).
    pub converged: bool,
    /// Whether the iteration was cut short by the stagnation guard (the
    /// residual stopped decreasing for several consecutive iterations —
    /// the §4.2.2 symptom of a damaged preconditioner). Always `false`
    /// when `converged` is true.
    pub stalled: bool,
    /// `||s_k|| / ||s_0||` per iteration (preconditioned residual decay).
    pub history: Vec<f64>,
}

impl RefineOutcome {
    /// Least-squares slope of `log10(history)` vs. iteration — the
    /// residual-decay rate (see [`crate::health::decay_slope`]). `None`
    /// with fewer than two usable history points.
    pub fn decay_slope(&self) -> Option<f64> {
        crate::health::decay_slope(&self.history)
    }
}

/// If the engine observed new FP16 overflow→∞ events since `before`, emit
/// a solver-level warning: an Inf-contaminated R preconditioner is the §3.5
/// failure mode, and it surfaces as a mysteriously wrong residual unless
/// made visible here.
fn warn_if_overflowed(eng: &GpuSim, solver: &'static str, before: u64) {
    let after = eng.counters().round.overflow;
    if after > before {
        eng.tracer().warn(
            "solver.preconditioner_overflow",
            &[
                ("solver", Value::from(solver)),
                ("overflow", Value::from(after - before)),
                (
                    "msg",
                    Value::from(
                        "FP16 overflow during the preconditioner factorization; \
                         the R factor may carry Inf/NaN and refinement may stall",
                    ),
                ),
            ],
        );
    }
}

/// The recovery ladder's health check: a usable preconditioner factorization
/// must be finite in both factors.
fn factors_finite(f: &QrFactors) -> bool {
    f.q.all_finite() && f.r.all_finite()
}

/// Corrupted factors kept by [`OnExhausted::KeepLast`](crate::recovery::OnExhausted::KeepLast)
/// can carry a zero/NaN R diagonal, on which the downstream triangular
/// solve would panic. Checked while a campaign is armed, and also when the
/// *input* itself was non-finite (`input_poisoned`) — a NaN column poisons
/// R legitimately and must surface as a typed error rather than reach the
/// triangular solve. With faults off and finite input, a legitimately
/// overflowed R keeps its historical stall-don't-error behavior (see
/// [`warn_if_overflowed`]).
fn check_r_usable(
    eng: &GpuSim,
    op: &'static str,
    r: &Mat<f32>,
    input_poisoned: bool,
) -> Result<(), TcqrError> {
    if !eng.fault_armed() && !input_poisoned {
        return Ok(());
    }
    for j in 0..r.ncols() {
        let d = r[(j, j)];
        if !d.is_finite() || d == 0.0 {
            return Err(TcqrError::NonFinite {
                op,
                detail: format!(
                    "R diagonal entry {j} is {d} after fault recovery; \
                     the triangular solve cannot proceed"
                ),
            });
        }
    }
    Ok(())
}

/// One factorization attempt behind the §3.5 column-scaling safeguard,
/// parameterized by the recovery ladder's knobs: `headroom` extra
/// power-of-two scaling bits ([`crate::recovery::Rung::Rescale`]) and an
/// optional re-orthogonalization pass ([`crate::recovery::Rung::Reortho`],
/// also the base mode of [`cgls_qr_reortho`]).
fn rgsqrf_scaled_attempt(
    eng: &GpuSim,
    a: &Mat<f32>,
    cfg: &RgsqrfConfig,
    headroom: u32,
    reortho: bool,
) -> QrFactors {
    let (scaling, nan_cols) = compute_column_scaling_with_headroom(a.as_ref(), headroom);
    crate::health::warn_nan_columns(eng, "rgsqrf_scaled", &nan_cols);
    let span = eng.tracer().span(
        "rgsqrf_scaled",
        &[
            ("m", Value::from(a.nrows())),
            ("n", Value::from(a.ncols())),
            ("scaled", Value::from(!scaling.is_identity())),
        ],
    );
    let factor = |input: densemat::MatRef<'_, f32>| {
        if reortho {
            crate::reortho::rgsqrf_reortho(eng, input, cfg)
        } else {
            rgsqrf(eng, input, cfg)
        }
    };
    let factors = if scaling.is_identity() {
        factor(a.as_ref())
    } else {
        let mut ap = a.clone();
        scale_columns(ap.as_mut(), &scaling);
        crate::health::emit_scaling(eng, &scaling);
        // Two passes over the matrix (scan + scale): bandwidth-bound.
        eng.charge_gemv(Phase::Other, Class::Fp32, a.nrows(), a.ncols());
        let mut f = factor(ap.as_ref());
        unscale_r(f.r.as_mut(), &scaling);
        f
    };
    // Guard against an exactly-zero R diagonal downstream (rank deficiency).
    // With an armed fault campaign a non-finite diagonal is expected mid-
    // ladder — the recovery loop, not this guard, handles it there. NaN
    // columns in the *input* (already detected and warned above) poison R
    // legitimately: the caller sees the damage in the factors, not a panic.
    let n = factors.r.ncols();
    for j in 0..n {
        debug_assert!(
            eng.fault_armed() || !nan_cols.is_empty() || factors.r[(j, j)].is_finite(),
            "non-finite R diagonal at {j}"
        );
    }
    drop(span);
    factors
}

/// Shared recovery harness for every solver that factors through the scaled
/// RGSQRF path. `reortho_base` forces the re-orthogonalized pipeline from
/// the first attempt (the [`cgls_qr_reortho`] mode).
fn try_factor_scaled(
    eng: &GpuSim,
    a: &Mat<f32>,
    cfg: &RgsqrfConfig,
    policy: &RecoveryPolicy,
    op: &'static str,
    reortho_base: bool,
) -> Result<QrFactors, TcqrError> {
    run_with_recovery(
        eng,
        op,
        policy,
        |att| rgsqrf_scaled_attempt(eng, a, cfg, att.headroom, reortho_base || att.reortho),
        factors_finite,
    )
}

/// Factor `A` with RGSQRF behind the §3.5 column-scaling safeguard and
/// return factors of the *original* matrix (R un-scaled exactly).
///
/// Thin wrapper over [`try_rgsqrf_scaled`] with the default
/// [`RecoveryPolicy`]; panics with the error's message on invalid shapes
/// (the default ladder itself cannot be exhausted).
pub fn rgsqrf_scaled(eng: &GpuSim, a: &Mat<f32>, cfg: &RgsqrfConfig) -> QrFactors {
    try_rgsqrf_scaled(eng, a, cfg, &RecoveryPolicy::default()).unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-tolerant [`rgsqrf_scaled`]: when a fault campaign is armed on the
/// engine, detected corruptions retry up `policy`'s escalation ladder; with
/// faults off this is a single attempt, bit-identical to the historical
/// behavior.
pub fn try_rgsqrf_scaled(
    eng: &GpuSim,
    a: &Mat<f32>,
    cfg: &RgsqrfConfig,
    policy: &RecoveryPolicy,
) -> Result<QrFactors, TcqrError> {
    let m = a.nrows();
    let n = a.ncols();
    if m < n || n == 0 {
        return Err(TcqrError::shape(
            "rgsqrf_scaled",
            format!("need m >= n >= 1 (got {m} x {n})"),
        ));
    }
    try_factor_scaled(eng, a, cfg, policy, "rgsqrf_scaled", false)
}

/// "RGSQRF Direct Solver": `x = R \ (Q^T b)` from the mixed-precision QR.
pub fn rgsqrf_direct(eng: &GpuSim, a: &Mat<f32>, b: &[f32], cfg: &RgsqrfConfig) -> Vec<f32> {
    try_rgsqrf_direct(eng, a, b, cfg, &RecoveryPolicy::default()).unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-tolerant [`rgsqrf_direct`] returning typed errors for bad shapes
/// and exhausted recovery ladders.
pub fn try_rgsqrf_direct(
    eng: &GpuSim,
    a: &Mat<f32>,
    b: &[f32],
    cfg: &RgsqrfConfig,
    policy: &RecoveryPolicy,
) -> Result<Vec<f32>, TcqrError> {
    let m = a.nrows();
    let n = a.ncols();
    if m < n {
        return Err(TcqrError::shape(
            "rgsqrf_direct",
            format!("need m >= n (got {m} x {n})"),
        ));
    }
    if b.len() != m {
        return Err(TcqrError::shape(
            "rgsqrf_direct",
            format!("rhs length {} does not match m = {m}", b.len()),
        ));
    }
    let f = try_rgsqrf_scaled(eng, a, cfg, policy)?;
    check_r_usable(eng, "rgsqrf_direct", &f.r, !a.all_finite() || b.iter().any(|v| !v.is_finite()))?;
    let mut x = vec![0.0f32; n];
    gemv(1.0, Op::Trans, f.q.as_ref(), b, 0.0, &mut x);
    eng.charge_gemv(Phase::Solve, Class::Fp32, m, n);
    trsv_upper(Op::NoTrans, f.r.as_ref(), &mut x);
    eng.charge_trsv(Phase::Solve, Class::Fp32, n);
    Ok(x)
}

/// cuSOLVER-style single precision direct solver:
/// `SGEQRF + SORMQR + STRSM`.
pub fn scusolve(eng: &GpuSim, a: &Mat<f32>, b: &[f32]) -> Vec<f32> {
    try_scusolve(eng, a, b).unwrap_or_else(|e| panic!("{e}"))
}

/// Typed-error variant of [`scusolve`]. The Householder factorization runs
/// off-engine, so no recovery policy applies.
pub fn try_scusolve(eng: &GpuSim, a: &Mat<f32>, b: &[f32]) -> Result<Vec<f32>, TcqrError> {
    let m = a.nrows();
    let n = a.ncols();
    if m < n || b.len() != m {
        return Err(TcqrError::shape(
            "scusolve",
            format!("shape mismatch (a is {m} x {n}, rhs length {})", b.len()),
        ));
    }
    let h = Householder::factor(a.clone());
    eng.charge_sgeqrf(Phase::Panel, m, n);
    let x = h.solve_lls(b);
    eng.charge_ormqr(Phase::Solve, Class::Fp32, m, n, 1);
    eng.charge_trsv(Phase::Solve, Class::Fp32, n);
    Ok(x)
}

/// cuSOLVER-style double precision direct solver:
/// `DGEQRF + DORMQR + DTRSM`.
pub fn dcusolve(eng: &GpuSim, a: &Mat<f64>, b: &[f64]) -> Vec<f64> {
    try_dcusolve(eng, a, b).unwrap_or_else(|e| panic!("{e}"))
}

/// Typed-error variant of [`dcusolve`].
pub fn try_dcusolve(eng: &GpuSim, a: &Mat<f64>, b: &[f64]) -> Result<Vec<f64>, TcqrError> {
    let m = a.nrows();
    let n = a.ncols();
    if m < n || b.len() != m {
        return Err(TcqrError::shape(
            "dcusolve",
            format!("shape mismatch (a is {m} x {n}, rhs length {})", b.len()),
        ));
    }
    let h = Householder::factor(a.clone());
    eng.charge_dgeqrf(Phase::Panel, m, n);
    let x = h.solve_lls(b);
    eng.charge_ormqr(Phase::Solve, Class::Fp64, m, n, 1);
    eng.charge_trsv(Phase::Solve, Class::Fp64, n);
    Ok(x)
}

/// Charge one CGLS/LSQR iteration's modeled device time: two GEMVs with A,
/// two triangular solves with R, and a few streamed vectors, all in FP64.
fn charge_refine_iter(eng: &GpuSim, m: usize, n: usize) {
    eng.charge_gemv(Phase::Refine, Class::Fp64, m, n); // A t
    eng.charge_gemv(Phase::Refine, Class::Fp64, m, n); // A^T r
    eng.charge_trsv(Phase::Refine, Class::Fp64, n); // R t = p
    eng.charge_trsv(Phase::Refine, Class::Fp64, n); // R^T s = z
    eng.charge_vec(Phase::Refine, Class::Fp64, 3 * m + 3 * n);
}

/// Algorithm 3: CGLS with the RGSQRF `R` factor as right preconditioner.
///
/// The QR factorization runs in mixed precision on the engine; the
/// refinement loop runs in `f64` (which is what lets the paper report
/// *double precision accuracy* from a half-precision factorization).
pub fn cgls_qr(
    eng: &GpuSim,
    a: &Mat<f64>,
    b: &[f64],
    qr_cfg: &RgsqrfConfig,
    refine: &RefineConfig,
) -> RefineOutcome {
    try_cgls_qr(eng, a, b, qr_cfg, refine, &RecoveryPolicy::default())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-tolerant [`cgls_qr`]: the mixed-precision preconditioner
/// factorization runs behind `policy`'s recovery ladder (the `f64`
/// refinement loop itself runs off-engine and needs no protection).
pub fn try_cgls_qr(
    eng: &GpuSim,
    a: &Mat<f64>,
    b: &[f64],
    qr_cfg: &RgsqrfConfig,
    refine: &RefineConfig,
    policy: &RecoveryPolicy,
) -> Result<RefineOutcome, TcqrError> {
    let m = a.nrows();
    let n = a.ncols();
    if m < n || b.len() != m {
        return Err(TcqrError::shape(
            "cgls_qr",
            format!("shape mismatch (a is {m} x {n}, rhs length {})", b.len()),
        ));
    }

    // Mixed-precision factorization (the preconditioner).
    let a32: Mat<f32> = a.convert();
    let overflow_before = eng.counters().round.overflow;
    let f = try_rgsqrf_scaled(eng, &a32, qr_cfg, policy)?;
    check_r_usable(eng, "cgls_qr", &f.r, !a32.all_finite())?;
    warn_if_overflowed(eng, "cgls_qr", overflow_before);
    let r64: Mat<f64> = f.r.convert();

    Ok(cgls_preconditioned(eng, a, b, &r64, refine))
}

/// CGLS on `min || (A R^{-1}) y - b ||` with `x = R^{-1} y` tracked
/// directly, given an explicit upper-triangular preconditioner.
///
/// Opens a `cgls` trace span; each iteration emits a `cgls.iter` op event
/// carrying the iteration number and the relative preconditioned residual,
/// so the returned `history` also exists as a trace.
pub fn cgls_preconditioned(
    eng: &GpuSim,
    a: &Mat<f64>,
    b: &[f64],
    r_pre: &Mat<f64>,
    refine: &RefineConfig,
) -> RefineOutcome {
    let tracer = eng.tracer();
    let span = tracer.span(
        "cgls",
        &[
            ("m", Value::from(a.nrows())),
            ("n", Value::from(a.ncols())),
            ("tol", Value::from(refine.tol)),
            ("max_iters", Value::from(refine.max_iters)),
        ],
    );
    let out = cgls_inner(eng, &tracer, a, b, r_pre, refine);
    span.close_with(&outcome_fields(&out));
    out
}

/// Span-close payload shared by the iterative refiners: the outcome plus
/// the residual-decay health summary (slope of log10(rel) per iteration,
/// and whether the stagnation guard fired).
fn outcome_fields(out: &RefineOutcome) -> Vec<(&'static str, Value)> {
    let mut fields = vec![
        ("iterations", Value::from(out.iterations)),
        ("converged", Value::from(out.converged)),
        (
            "final_rel",
            Value::from(out.history.last().copied().unwrap_or(0.0)),
        ),
        ("stalled", Value::from(out.stalled)),
    ];
    if let Some(slope) = out.decay_slope() {
        fields.push(("decay_slope", Value::from(slope)));
    }
    fields
}

fn cgls_inner(
    eng: &GpuSim,
    tracer: &Tracer,
    a: &Mat<f64>,
    b: &[f64],
    r_pre: &Mat<f64>,
    refine: &RefineConfig,
) -> RefineOutcome {
    let m = a.nrows();
    let n = a.ncols();
    let mut x = vec![0.0f64; n];
    let mut res = b.to_vec(); // r = b - A x (x = 0)

    // s = R^{-T} A^T r
    let mut s = vec![0.0f64; n];
    gemv(1.0, Op::Trans, a.as_ref(), &res, 0.0, &mut s);
    trsv_upper(Op::Trans, r_pre.as_ref(), &mut s);
    charge_refine_iter(eng, m, n); // setup costs ~one iteration

    let norm_s0 = nrm2(&s);
    if norm_s0 == 0.0 {
        return RefineOutcome {
            x,
            iterations: 0,
            converged: true,
            stalled: false,
            history: vec![],
        };
    }
    let mut gamma = norm_s0 * norm_s0;
    let mut p = s.clone();
    let mut t = vec![0.0f64; n];
    let mut q = vec![0.0f64; m];
    let mut history = Vec::new();
    let mut best = f64::INFINITY;
    let mut stalled = 0usize;

    for it in 1..=refine.max_iters {
        // t = R^{-1} p ; q = A t
        t.copy_from_slice(&p);
        trsv_upper(Op::NoTrans, r_pre.as_ref(), &mut t);
        gemv(1.0, Op::NoTrans, a.as_ref(), &t, 0.0, &mut q);
        let delta = densemat::blas1::dot(&q, &q);
        if delta == 0.0 || !delta.is_finite() {
            return RefineOutcome {
                x,
                iterations: it - 1,
                converged: false,
                stalled: false,
                history,
            };
        }
        let alpha = gamma / delta;
        densemat::blas1::axpy(alpha, &t, &mut x);
        densemat::blas1::axpy(-alpha, &q, &mut res);

        // s = R^{-T} A^T r
        gemv(1.0, Op::Trans, a.as_ref(), &res, 0.0, &mut s);
        trsv_upper(Op::Trans, r_pre.as_ref(), &mut s);
        charge_refine_iter(eng, m, n);

        let norm_s = nrm2(&s);
        let rel = norm_s / norm_s0;
        history.push(rel);
        tracer.op(
            "cgls.iter",
            &[("iter", Value::from(it)), ("rel", Value::from(rel))],
        );
        if rel <= refine.tol {
            return RefineOutcome {
                x,
                iterations: it,
                converged: true,
                stalled: false,
                history,
            };
        }
        // Stagnation guard: CG at roundoff level stops making progress.
        if norm_s >= best * 0.999 {
            stalled += 1;
            if stalled >= 5 {
                return RefineOutcome {
                    x,
                    iterations: it,
                    converged: false,
                    stalled: true,
                    history,
                };
            }
        } else {
            best = norm_s;
            stalled = 0;
        }

        let gamma_new = norm_s * norm_s;
        let beta = gamma_new / gamma;
        gamma = gamma_new;
        for (pi, &si) in p.iter_mut().zip(&s) {
            *pi = si + beta * *pi;
        }
    }
    RefineOutcome {
        x,
        iterations: refine.max_iters,
        converged: false,
        stalled: false,
        history,
    }
}

/// Extension beyond the paper: CGLS preconditioned by the R factor of
/// **RGSQRF-Reortho** instead of plain RGSQRF.
///
/// §4.2.2 reports that the geometric singular value distribution is a
/// stress case: at cond 1e4 the plain pipeline needs 200 iterations and
/// cannot reach double precision. The reason is that the one-pass
/// Gram-Schmidt R inherits the Q factor's loss of orthogonality, so
/// `kappa(A R^{-1})` blows up with many small singular values. The
/// re-orthogonalized factorization's combined `R = R2 R1` is a much better
/// triangular factor of A; measured here, it converts that stress case into
/// ~20 convergent iterations at double precision, for one extra RGSQRF pass
/// (still several times cheaper than a DGEQRF solve). Breakdown still occurs
/// once `kappa` approaches the fp16 horizon (~1e6).
pub fn cgls_qr_reortho(
    eng: &GpuSim,
    a: &Mat<f64>,
    b: &[f64],
    qr_cfg: &RgsqrfConfig,
    refine: &RefineConfig,
) -> RefineOutcome {
    try_cgls_qr_reortho(eng, a, b, qr_cfg, refine, &RecoveryPolicy::default())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-tolerant [`cgls_qr_reortho`]: shares the scaled-factorization
/// attempt path with [`try_rgsqrf_scaled`], with re-orthogonalization on
/// from the first attempt.
pub fn try_cgls_qr_reortho(
    eng: &GpuSim,
    a: &Mat<f64>,
    b: &[f64],
    qr_cfg: &RgsqrfConfig,
    refine: &RefineConfig,
    policy: &RecoveryPolicy,
) -> Result<RefineOutcome, TcqrError> {
    let m = a.nrows();
    let n = a.ncols();
    if m < n || b.len() != m {
        return Err(TcqrError::shape(
            "cgls_qr_reortho",
            format!("shape mismatch (a is {m} x {n}, rhs length {})", b.len()),
        ));
    }
    let a32: Mat<f32> = a.convert();
    let overflow_before = eng.counters().round.overflow;
    let f = try_factor_scaled(eng, &a32, qr_cfg, policy, "cgls_qr_reortho", true)?;
    check_r_usable(eng, "cgls_qr_reortho", &f.r, !a32.all_finite())?;
    let _ = f.q; // Q is not needed; only R preconditions.
    warn_if_overflowed(eng, "cgls_qr_reortho", overflow_before);
    let r64: Mat<f64> = f.r.convert();
    Ok(cgls_preconditioned(eng, a, b, &r64, refine))
}

/// LSQR (Paige & Saunders 1982) with the RGSQRF `R` right preconditioner.
///
/// Mathematically equivalent to CGLS but built on Golub–Kahan
/// bidiagonalization, which keeps the recurrence better conditioned; the
/// ablation benchmarks compare the two refiners' iteration counts.
pub fn lsqr_qr(
    eng: &GpuSim,
    a: &Mat<f64>,
    b: &[f64],
    qr_cfg: &RgsqrfConfig,
    refine: &RefineConfig,
) -> RefineOutcome {
    try_lsqr_qr(eng, a, b, qr_cfg, refine, &RecoveryPolicy::default())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fault-tolerant [`lsqr_qr`], mirroring [`try_cgls_qr`].
pub fn try_lsqr_qr(
    eng: &GpuSim,
    a: &Mat<f64>,
    b: &[f64],
    qr_cfg: &RgsqrfConfig,
    refine: &RefineConfig,
    policy: &RecoveryPolicy,
) -> Result<RefineOutcome, TcqrError> {
    let m = a.nrows();
    let n = a.ncols();
    if m < n || b.len() != m {
        return Err(TcqrError::shape(
            "lsqr_qr",
            format!("shape mismatch (a is {m} x {n}, rhs length {})", b.len()),
        ));
    }
    let a32: Mat<f32> = a.convert();
    let overflow_before = eng.counters().round.overflow;
    let f = try_rgsqrf_scaled(eng, &a32, qr_cfg, policy)?;
    check_r_usable(eng, "lsqr_qr", &f.r, !a32.all_finite())?;
    warn_if_overflowed(eng, "lsqr_qr", overflow_before);
    let r64: Mat<f64> = f.r.convert();
    Ok(lsqr_preconditioned(eng, a, b, &r64, refine))
}

/// LSQR on `B = A R^{-1}`, accumulating `x = R^{-1} y` at the end.
///
/// Opens an `lsqr` trace span; each iteration emits an `lsqr.iter` op
/// event with the iteration number and the relative residual estimate.
pub fn lsqr_preconditioned(
    eng: &GpuSim,
    a: &Mat<f64>,
    b: &[f64],
    r_pre: &Mat<f64>,
    refine: &RefineConfig,
) -> RefineOutcome {
    let tracer = eng.tracer();
    let span = tracer.span(
        "lsqr",
        &[
            ("m", Value::from(a.nrows())),
            ("n", Value::from(a.ncols())),
            ("tol", Value::from(refine.tol)),
            ("max_iters", Value::from(refine.max_iters)),
        ],
    );
    let out = lsqr_inner(eng, &tracer, a, b, r_pre, refine);
    span.close_with(&outcome_fields(&out));
    out
}

fn lsqr_inner(
    eng: &GpuSim,
    tracer: &Tracer,
    a: &Mat<f64>,
    b: &[f64],
    r_pre: &Mat<f64>,
    refine: &RefineConfig,
) -> RefineOutcome {
    let m = a.nrows();
    let n = a.ncols();

    // Operator applications for B = A R^{-1}.
    let apply_b = |v: &[f64], out: &mut [f64]| {
        let mut t = v.to_vec();
        trsv_upper(Op::NoTrans, r_pre.as_ref(), &mut t);
        gemv(1.0, Op::NoTrans, a.as_ref(), &t, 0.0, out);
    };
    let apply_bt = |u: &[f64], out: &mut [f64]| {
        gemv(1.0, Op::Trans, a.as_ref(), u, 0.0, out);
        trsv_upper(Op::Trans, r_pre.as_ref(), out);
    };

    // beta_1 u_1 = b
    let mut u = b.to_vec();
    let mut beta = nrm2(&u);
    if beta == 0.0 {
        return RefineOutcome {
            x: vec![0.0; n],
            iterations: 0,
            converged: true,
            stalled: false,
            history: vec![],
        };
    }
    densemat::blas1::scal(1.0 / beta, &mut u);
    // alpha_1 v_1 = B^T u_1
    let mut v = vec![0.0f64; n];
    apply_bt(&u, &mut v);
    let mut alpha = nrm2(&v);
    if alpha > 0.0 {
        densemat::blas1::scal(1.0 / alpha, &mut v);
    }
    charge_refine_iter(eng, m, n);

    let mut w = v.clone();
    let mut y = vec![0.0f64; n];
    let mut phi_bar = beta;
    let mut rho_bar = alpha;
    let s0 = alpha * beta; // ||B^T r_0||
    let mut history = Vec::new();
    let mut converged = false;
    let mut stalled = false;
    let mut iterations = 0;
    let mut tmp_m = vec![0.0f64; m];
    let mut tmp_n = vec![0.0f64; n];
    let mut best = f64::INFINITY;
    let mut strikes = 0usize;

    for it in 1..=refine.max_iters {
        iterations = it;
        // beta u = B v - alpha u
        apply_b(&v, &mut tmp_m);
        for (ui, &ti) in u.iter_mut().zip(&tmp_m) {
            *ui = ti - alpha * *ui;
        }
        beta = nrm2(&u);
        if beta > 0.0 {
            densemat::blas1::scal(1.0 / beta, &mut u);
        }
        // alpha v = B^T u - beta v
        apply_bt(&u, &mut tmp_n);
        for (vi, &ti) in v.iter_mut().zip(&tmp_n) {
            *vi = ti - beta * *vi;
        }
        alpha = nrm2(&v);
        if alpha > 0.0 {
            densemat::blas1::scal(1.0 / alpha, &mut v);
        }
        charge_refine_iter(eng, m, n);

        // Givens rotation eliminating beta.
        let rho = (rho_bar * rho_bar + beta * beta).sqrt();
        let c = rho_bar / rho;
        let s = beta / rho;
        let theta = s * alpha;
        rho_bar = -c * alpha;
        let phi = c * phi_bar;
        phi_bar *= s;

        // y += (phi / rho) w ; w = v - (theta / rho) w
        let t1 = phi / rho;
        let t2 = -theta / rho;
        for ((yi, wi), &vi) in y.iter_mut().zip(w.iter_mut()).zip(&v) {
            *yi += t1 * *wi;
            *wi = vi + t2 * *wi;
        }

        // ||B^T r_k|| = phi_bar * alpha * |c| — LSQR's standard estimate.
        let snorm = phi_bar * alpha * c.abs();
        let rel = if s0 > 0.0 { snorm / s0 } else { 0.0 };
        history.push(rel);
        tracer.op(
            "lsqr.iter",
            &[("iter", Value::from(it)), ("rel", Value::from(rel))],
        );
        if rel <= refine.tol {
            converged = true;
            break;
        }
        // Stagnation guard, mirroring CGLS: LSQR at roundoff level keeps
        // rotating without shrinking the residual estimate. Without this
        // guard a damaged preconditioner burns the full iteration cap.
        if snorm >= best * 0.999 {
            strikes += 1;
            if strikes >= 5 {
                stalled = true;
                break;
            }
        } else {
            best = snorm;
            strikes = 0;
        }
    }

    // x = R^{-1} y
    let mut x = y;
    trsv_upper(Op::NoTrans, r_pre.as_ref(), &mut x);
    eng.charge_trsv(Phase::Refine, Class::Fp64, n);
    RefineOutcome {
        x,
        iterations,
        converged,
        stalled,
        history,
    }
}

/// The normal equations method: Cholesky of `A^T A` (fast, but squares the
/// condition number — the unstable contrast of §2.2).
pub fn normal_equations<T: Real>(a: &Mat<T>, b: &[T]) -> Result<Vec<T>, NotPositiveDefinite> {
    let m = a.nrows();
    let n = a.ncols();
    assert!(m >= n && b.len() == m, "normal_equations: shape mismatch");
    let mut g: Mat<T> = Mat::zeros(n, n);
    gemm(T::ONE, Op::Trans, a.as_ref(), Op::NoTrans, a.as_ref(), T::ZERO, g.as_mut());
    potrf_upper(g.as_mut())?;
    // Solve U^T U x = A^T b.
    let mut x = vec![T::ZERO; n];
    gemv(T::ONE, Op::Trans, a.as_ref(), b, T::ZERO, &mut x);
    trsv_upper(Op::Trans, g.as_ref(), &mut x);
    trsv_upper(Op::NoTrans, g.as_ref(), &mut x);
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gen::{self, rng};
    use densemat::metrics::{lls_accuracy, rel_vec_error};
    use tensor_engine::GpuSim;

    fn small_cfg() -> RgsqrfConfig {
        RgsqrfConfig {
            cutoff: 32,
            caqr_width: 8,
            caqr_block_rows: 64,
            ..RgsqrfConfig::default()
        }
    }

    fn problem(m: usize, n: usize, cond: f64, seed: u64) -> (Mat<f64>, Vec<f64>) {
        let a = gen::rand_svd(m, n, gen::Spectrum::Geometric { cond }, &mut rng(seed));
        let b: Vec<f64> = (0..m).map(|i| ((i * 37 + 11) as f64 * 0.01).sin()).collect();
        (a, b)
    }

    #[test]
    fn direct_rgsqrf_is_half_precision_grade() {
        let eng = GpuSim::default();
        let (a, b) = problem(512, 64, 10.0, 1);
        let a32: Mat<f32> = a.convert();
        let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
        let x = rgsqrf_direct(&eng, &a32, &b32, &small_cfg());
        let x64: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let acc = lls_accuracy(a.as_ref(), &x64, &b);
        // Usable but far from double precision.
        assert!(acc < 1e-1, "direct accuracy {acc}");
        assert!(acc > 1e-12, "implausibly accurate for fp16 factors: {acc}");
    }

    #[test]
    fn cgls_reaches_double_precision_class_accuracy() {
        let eng = GpuSim::default();
        let (a, b) = problem(512, 64, 100.0, 2);
        let out = cgls_qr(&eng, &a, &b, &small_cfg(), &RefineConfig::default());
        assert!(out.converged, "CGLS did not converge: {:?}", out.history);
        assert!(out.iterations <= 30, "took {} iterations", out.iterations);
        let acc = lls_accuracy(a.as_ref(), &out.x, &b);
        // Same class as the double precision direct solver below.
        let dx = dcusolve(&GpuSim::default(), &a, &b);
        let dacc = lls_accuracy(a.as_ref(), &dx, &b);
        assert!(
            acc <= dacc * 100.0 + 1e-12,
            "CGLS {acc} vs DGEQRF {dacc}"
        );
    }

    #[test]
    fn cgls_matches_reference_solution() {
        let eng = GpuSim::default();
        let (a, b) = problem(400, 48, 1e3, 3);
        let out = cgls_qr(&eng, &a, &b, &small_cfg(), &RefineConfig::default());
        let xref = dcusolve(&GpuSim::default(), &a, &b);
        let err = rel_vec_error(&out.x, &xref);
        assert!(err < 1e-8, "solution error vs reference: {err}");
    }

    #[test]
    fn cgls_iterations_grow_with_condition_number() {
        let eng = GpuSim::default();
        let mut iters = Vec::new();
        for (seed, cond) in [(4u64, 10.0), (5, 1e4)] {
            let (a, b) = problem(384, 48, cond, seed);
            let out = cgls_qr(&eng, &a, &b, &small_cfg(), &RefineConfig::default());
            iters.push(out.iterations);
        }
        assert!(
            iters[1] >= iters[0],
            "harder problem should need at least as many iterations: {iters:?}"
        );
    }

    #[test]
    fn cgls_residual_history_is_decreasing_overall() {
        let eng = GpuSim::default();
        let (a, b) = problem(300, 32, 1e3, 6);
        let out = cgls_qr(&eng, &a, &b, &small_cfg(), &RefineConfig::default());
        let first = out.history.first().copied().unwrap_or(1.0);
        let last = out.history.last().copied().unwrap();
        assert!(last < first, "history should decay: {:?}", out.history);
    }

    #[test]
    fn reortho_preconditioner_rescues_the_geometric_stress_case() {
        // §4.2.2's stress case, fixed by the extension: plain CGLS stalls,
        // reortho-preconditioned CGLS converges to double-class accuracy.
        let eng = GpuSim::default();
        let (a, b) = problem(768, 128, 1e4, 50); // geometric spectrum
        let plain = cgls_qr(&eng, &a, &b, &small_cfg(), &RefineConfig::default());
        let fixed = cgls_qr_reortho(&eng, &a, &b, &small_cfg(), &RefineConfig::default());
        let acc_plain = lls_accuracy(a.as_ref(), &plain.x, &b);
        let acc_fixed = lls_accuracy(a.as_ref(), &fixed.x, &b);
        assert!(fixed.converged, "reortho-CGLS should converge");
        assert!(
            acc_fixed < 1e-8,
            "reortho-CGLS accuracy {acc_fixed}"
        );
        assert!(
            acc_fixed < acc_plain / 100.0,
            "plain {acc_plain} vs reortho {acc_fixed}"
        );
    }

    #[test]
    fn lsqr_agrees_with_cgls() {
        let eng = GpuSim::default();
        let (a, b) = problem(300, 40, 1e3, 7);
        let c = cgls_qr(&eng, &a, &b, &small_cfg(), &RefineConfig::default());
        let l = lsqr_qr(&eng, &a, &b, &small_cfg(), &RefineConfig::default());
        let err = rel_vec_error(&l.x, &c.x);
        assert!(err < 1e-6, "LSQR vs CGLS solutions differ: {err}");
        assert!(l.converged);
    }

    #[test]
    fn single_vs_double_cusolve_accuracy_gap() {
        let (a, b) = problem(400, 48, 1e4, 8);
        let eng = GpuSim::default();
        let xs = scusolve(&eng, &a.convert(), &b.iter().map(|&x| x as f32).collect::<Vec<_>>());
        let xd = dcusolve(&eng, &a, &b);
        let accs = lls_accuracy(a.as_ref(), &xs.iter().map(|&v| v as f64).collect::<Vec<_>>(), &b);
        let accd = lls_accuracy(a.as_ref(), &xd, &b);
        assert!(accd < accs, "double ({accd}) must beat single ({accs})");
        assert!(accd < 1e-10);
    }

    #[test]
    fn normal_equations_works_when_well_conditioned() {
        let (a, b) = problem(200, 24, 10.0, 9);
        let x = normal_equations(&a, &b).expect("SPD");
        let xref = dcusolve(&GpuSim::default(), &a, &b);
        assert!(rel_vec_error(&x, &xref) < 1e-9);
    }

    #[test]
    fn normal_equations_fails_or_degrades_when_ill_conditioned() {
        // kappa^2 = 1e16 swamps f64: Cholesky either fails or the solution
        // is garbage relative to the QR reference.
        let (a, b) = problem(200, 24, 1e8, 10);
        match normal_equations(&a, &b) {
            Err(_) => {} // not positive definite numerically: expected
            Ok(x) => {
                let xref = dcusolve(&GpuSim::default(), &a, &b);
                let err = rel_vec_error(&x, &xref);
                assert!(err > 1e-6, "normal equations suspiciously good: {err}");
            }
        }
    }

    #[test]
    fn refinement_time_is_charged() {
        let eng = GpuSim::default();
        let (a, b) = problem(256, 32, 100.0, 11);
        let _ = cgls_qr(&eng, &a, &b, &small_cfg(), &RefineConfig::default());
        assert!(eng.ledger().get(Phase::Refine) > 0.0);
        // The 256x32 QR is a single panel at this cutoff: factorization time
        // lands in the Panel phase.
        assert!(eng.ledger().get(Phase::Panel) > 0.0, "QR time also charged");
    }

    #[test]
    fn try_variants_report_typed_shape_errors() {
        let eng = GpuSim::default();
        let (a, b) = problem(64, 16, 10.0, 13);
        let policy = RecoveryPolicy::default();
        let refine = RefineConfig::default();

        let err = try_cgls_qr(&eng, &a, &b[..10], &small_cfg(), &refine, &policy).unwrap_err();
        assert!(matches!(err, TcqrError::ShapeMismatch { op: "cgls_qr", .. }), "{err}");
        assert!(err.to_string().starts_with("cgls_qr: shape mismatch"), "{err}");

        let err = try_lsqr_qr(&eng, &a, &b[..10], &small_cfg(), &refine, &policy).unwrap_err();
        assert_eq!(err.op(), "lsqr_qr");

        let err = try_cgls_qr_reortho(&eng, &a, &b[..10], &small_cfg(), &refine, &policy)
            .unwrap_err();
        assert_eq!(err.op(), "cgls_qr_reortho");

        let a32: Mat<f32> = a.convert();
        let err =
            try_rgsqrf_direct(&eng, &a32, &[0.0f32; 10], &small_cfg(), &policy).unwrap_err();
        assert!(err.to_string().contains("rhs length"), "{err}");

        let wide: Mat<f32> = gen::gaussian(8, 16, &mut rng(14)).convert();
        let err = try_rgsqrf_scaled(&eng, &wide, &small_cfg(), &policy).unwrap_err();
        assert!(err.to_string().contains("need m >= n"), "{err}");
        // Nothing was charged to the engine on any rejected call.
        assert_eq!(eng.clock(), 0.0);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let eng = GpuSim::default();
        let (a, _) = problem(128, 16, 10.0, 12);
        let b = vec![0.0f64; 128];
        let out = cgls_qr(&eng, &a, &b, &small_cfg(), &RefineConfig::default());
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert!(out.x.iter().all(|&v| v == 0.0));
    }
}
