//! One dispatch surface for every fault-tolerant solver entry point.
//!
//! Historically each consumer of the `try_*` solvers (the batch scheduler's
//! `Job` descriptors, ad-hoc harness code) hand-rolled its own `match` over
//! the workload kinds, so adding a solver meant touching every dispatcher.
//! [`Solver`] inverts that: a workload is a struct bundling a problem with
//! its configuration, and `solve` runs it on an engine under a recovery
//! policy. `tcqr_batch::Job`, the deterministic batch scheduler, and the
//! `tcqr-serve` service all dispatch through this trait, so a new workload
//! plugs into all three by implementing it — no scheduler edits.
//!
//! The contract mirrors the `try_*` functions the implementations delegate
//! to: `solve` never panics on malformed input (it returns a typed
//! [`TcqrError`]), and for a fixed problem, engine configuration, and
//! fault-plan state the result is bit-for-bit deterministic.

use crate::lls;
use crate::lowrank::{self, QrKind, QrSvd};
use crate::lu_ir::{self, LuIrConfig};
use crate::{QrFactors, RecoveryPolicy, RefineConfig, RefineOutcome, RgsqrfConfig, TcqrError};
use densemat::Mat;
use tensor_engine::GpuSim;

/// A self-contained unit of solver work: problem data plus configuration,
/// runnable on any engine.
///
/// Implementations must be deterministic (same inputs, same engine state,
/// same bits out) and must return typed errors instead of panicking on
/// malformed input — both properties are what let the batch scheduler and
/// the serve front-end treat workloads uniformly.
pub trait Solver: Send + Sync + std::fmt::Debug {
    /// Stable lowercase label for reports, trace events, and metrics
    /// (`"rgsqrf"`, `"lls.cgls"`, ...).
    fn kind(&self) -> &'static str;

    /// Problem shape `(rows, cols)`, for reports.
    fn shape(&self) -> (usize, usize);

    /// Run the workload on `eng` under `policy`. The caller guarantees the
    /// engine is owned by this call for its duration (the schedulers'
    /// single-tenant contract).
    fn solve(&self, eng: &GpuSim, policy: &RecoveryPolicy) -> Result<SolveOutput, TcqrError>;
}

/// What a successfully completed [`Solver::solve`] produced.
#[derive(Debug)]
pub enum SolveOutput {
    /// QR factors from [`RgsqrfProblem`].
    Qr(QrFactors),
    /// f32 direct-solve solution from [`LlsProblem`] with
    /// [`LlsMethod::Direct`].
    Solution(Vec<f32>),
    /// Refinement outcome from iterative [`LlsProblem`] methods and
    /// [`LuIrProblem`].
    Refine(RefineOutcome),
    /// Factors from [`QrSvdProblem`].
    Svd(QrSvd),
}

/// Which least-squares entry point an [`LlsProblem`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LlsMethod {
    /// RGSQRF direct solve: `x = R \ (Q^T b)` in f32.
    Direct,
    /// CGLS refinement with the RGSQRF `R` preconditioner (Algorithm 3).
    Cgls,
    /// CGLS on the re-orthogonalized factorization (§3.3).
    CglsReortho,
    /// LSQR refinement with the RGSQRF `R` preconditioner.
    Lsqr,
}

impl LlsMethod {
    /// Stable lowercase name, used in trace events and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            LlsMethod::Direct => "direct",
            LlsMethod::Cgls => "cgls",
            LlsMethod::CglsReortho => "cgls_reortho",
            LlsMethod::Lsqr => "lsqr",
        }
    }
}

/// Mixed-precision QR factorization (with column scaling).
#[derive(Debug)]
pub struct RgsqrfProblem {
    /// Tall input, `m x n` with `m >= n >= 1`.
    pub a: Mat<f32>,
    /// Recursion / panel configuration.
    pub cfg: RgsqrfConfig,
}

impl Solver for RgsqrfProblem {
    fn kind(&self) -> &'static str {
        "rgsqrf"
    }

    fn shape(&self) -> (usize, usize) {
        (self.a.nrows(), self.a.ncols())
    }

    fn solve(&self, eng: &GpuSim, policy: &RecoveryPolicy) -> Result<SolveOutput, TcqrError> {
        lls::try_rgsqrf_scaled(eng, &self.a, &self.cfg, policy).map(SolveOutput::Qr)
    }
}

/// Least-squares solve `min ||Ax - b||`.
#[derive(Debug)]
pub struct LlsProblem {
    /// Tall input, `m x n`.
    pub a: Mat<f64>,
    /// Right-hand side, length `m`.
    pub b: Vec<f64>,
    /// Which solver runs the problem.
    pub method: LlsMethod,
    /// QR configuration for the preconditioner / direct factorization.
    pub qr_cfg: RgsqrfConfig,
    /// Refinement tolerance and iteration cap (ignored by
    /// [`LlsMethod::Direct`]).
    pub refine: RefineConfig,
}

impl Solver for LlsProblem {
    fn kind(&self) -> &'static str {
        match self.method {
            LlsMethod::Direct => "lls.direct",
            LlsMethod::Cgls => "lls.cgls",
            LlsMethod::CglsReortho => "lls.cgls_reortho",
            LlsMethod::Lsqr => "lls.lsqr",
        }
    }

    fn shape(&self) -> (usize, usize) {
        (self.a.nrows(), self.a.ncols())
    }

    fn solve(&self, eng: &GpuSim, policy: &RecoveryPolicy) -> Result<SolveOutput, TcqrError> {
        match self.method {
            LlsMethod::Direct => {
                let a32: Mat<f32> = self.a.convert();
                let b32: Vec<f32> = self.b.iter().map(|&v| v as f32).collect();
                lls::try_rgsqrf_direct(eng, &a32, &b32, &self.qr_cfg, policy)
                    .map(SolveOutput::Solution)
            }
            LlsMethod::Cgls => {
                lls::try_cgls_qr(eng, &self.a, &self.b, &self.qr_cfg, &self.refine, policy)
                    .map(SolveOutput::Refine)
            }
            LlsMethod::CglsReortho => {
                lls::try_cgls_qr_reortho(eng, &self.a, &self.b, &self.qr_cfg, &self.refine, policy)
                    .map(SolveOutput::Refine)
            }
            LlsMethod::Lsqr => {
                lls::try_lsqr_qr(eng, &self.a, &self.b, &self.qr_cfg, &self.refine, policy)
                    .map(SolveOutput::Refine)
            }
        }
    }
}

/// QR-SVD low-rank approximation pipeline (§3.4).
#[derive(Debug)]
pub struct QrSvdProblem {
    /// Tall input, `m x n`.
    pub a: Mat<f32>,
    /// Which QR feeds the SVD.
    pub qr_kind: QrKind,
    /// QR configuration.
    pub cfg: RgsqrfConfig,
}

impl Solver for QrSvdProblem {
    fn kind(&self) -> &'static str {
        "qr_svd"
    }

    fn shape(&self) -> (usize, usize) {
        (self.a.nrows(), self.a.ncols())
    }

    fn solve(&self, eng: &GpuSim, policy: &RecoveryPolicy) -> Result<SolveOutput, TcqrError> {
        lowrank::try_qr_svd(eng, &self.a, self.qr_kind, &self.cfg, policy).map(SolveOutput::Svd)
    }
}

/// LU with iterative refinement on a square system.
#[derive(Debug)]
pub struct LuIrProblem {
    /// Square input, `n x n`.
    pub a: Mat<f64>,
    /// Right-hand side, length `n`.
    pub b: Vec<f64>,
    /// Blocked-LU and refinement configuration.
    pub cfg: LuIrConfig,
}

impl Solver for LuIrProblem {
    fn kind(&self) -> &'static str {
        "lu_ir"
    }

    fn shape(&self) -> (usize, usize) {
        (self.a.nrows(), self.a.ncols())
    }

    fn solve(&self, eng: &GpuSim, policy: &RecoveryPolicy) -> Result<SolveOutput, TcqrError> {
        lu_ir::try_lu_ir_solve(eng, &self.a, &self.b, &self.cfg, policy).map(SolveOutput::Refine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gen::{self, rng};
    use tensor_engine::EngineConfig;

    #[test]
    fn trait_and_direct_call_agree_bit_for_bit() {
        let a = gen::gaussian(48, 12, &mut rng(3)).convert::<f32>();
        let cfg = RgsqrfConfig {
            cutoff: 16,
            caqr_width: 4,
            ..RgsqrfConfig::default()
        };
        let policy = RecoveryPolicy::default();
        let direct = {
            let eng = GpuSim::new(EngineConfig::default());
            lls::try_rgsqrf_scaled(&eng, &a, &cfg, &policy).unwrap()
        };
        let via_trait = {
            let eng = GpuSim::new(EngineConfig::default());
            let problem = RgsqrfProblem { a: a.clone(), cfg };
            match problem.solve(&eng, &policy).unwrap() {
                SolveOutput::Qr(f) => f,
                other => panic!("rgsqrf produced {other:?}"),
            }
        };
        assert_eq!(direct.q.data(), via_trait.q.data());
        assert_eq!(direct.r.data(), via_trait.r.data());
    }

    #[test]
    fn dyn_dispatch_preserves_typed_errors() {
        let eng = GpuSim::new(EngineConfig::default());
        let wide: Box<dyn Solver> = Box::new(RgsqrfProblem {
            a: gen::gaussian(8, 16, &mut rng(1)).convert::<f32>(), // wide: invalid
            cfg: RgsqrfConfig::default(),
        });
        assert_eq!(wide.kind(), "rgsqrf");
        assert_eq!(wide.shape(), (8, 16));
        let err = wide.solve(&eng, &RecoveryPolicy::default()).unwrap_err();
        assert!(matches!(err, TcqrError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn lls_kinds_track_the_method() {
        let p = |method| LlsProblem {
            a: gen::gaussian(16, 4, &mut rng(2)),
            b: vec![0.0; 16],
            method,
            qr_cfg: RgsqrfConfig::default(),
            refine: RefineConfig::default(),
        };
        assert_eq!(p(LlsMethod::Direct).kind(), "lls.direct");
        assert_eq!(p(LlsMethod::Cgls).kind(), "lls.cgls");
        assert_eq!(p(LlsMethod::CglsReortho).kind(), "lls.cgls_reortho");
        assert_eq!(p(LlsMethod::Lsqr).kind(), "lls.lsqr");
    }
}
