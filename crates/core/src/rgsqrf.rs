//! Recursive Gram-Schmidt QR factorization — Algorithm 1, the paper's core
//! contribution.
//!
//! The column space is split in half recursively:
//!
//! ```text
//! [Q1, R11] = RGSQRF(A1)
//! R12       = Q1^T A2          (TensorCore reduction-shape GEMM)
//! [Q2, R22] = RGSQRF(A2 - Q1 R12)   (TensorCore update-shape GEMM)
//! ```
//!
//! which turns essentially *all* of the `2 m n^2` flops into large GEMMs —
//! the data locality tensor cores need — at the cost of up to 50% more
//! arithmetic than Householder QR (`2 m n^2` vs `2 m n^2 - 2n^3/3`).
//!
//! Below the recursion cutoff (128 columns by default) the panel is
//! factorized either by the communication-avoiding Gram-Schmidt panel of
//! §3.1.3 ([`PanelKind::Caqr`], charged as one aggregate unit like the
//! paper's hand-written CUDA kernel) or by a cuSOLVER-style `SGEQRF`
//! ([`PanelKind::Sgeqrf`], Figure 6's right bars).

use crate::caqr::{caqr_tsqr_traced, DEFAULT_BLOCK_ROWS};
use crate::error::TcqrError;
use densemat::{lapack, Mat, MatMut, MatRef, Op};
use tcqr_trace::Value;
use tensor_engine::{CachedOperand, GpuSim, HalfMat, Phase};

/// Panel factorization algorithm used below the recursion cutoff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PanelKind {
    /// The paper's hand-written communication-avoiding MGS panel (§3.1.3).
    Caqr,
    /// cuSOLVER-style blocked Householder panel (the unaccelerated
    /// alternative of §3.1.2).
    Sgeqrf,
}

impl PanelKind {
    /// Stable lowercase name used in trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            PanelKind::Caqr => "caqr",
            PanelKind::Sgeqrf => "sgeqrf",
        }
    }
}

/// Configuration for [`rgsqrf`].
#[derive(Clone, Copy, Debug)]
pub struct RgsqrfConfig {
    /// Recursion cutoff: panels at or below this width go to the panel
    /// factorization. The paper uses 128.
    pub cutoff: usize,
    /// Which panel algorithm to use.
    pub panel: PanelKind,
    /// Column width of the CAQR leaf panels (32 in the paper).
    pub caqr_width: usize,
    /// Row-block height of the CAQR panels (256 in the paper).
    pub caqr_block_rows: usize,
}

impl Default for RgsqrfConfig {
    fn default() -> Self {
        RgsqrfConfig {
            cutoff: 128,
            panel: PanelKind::Caqr,
            caqr_width: 32,
            caqr_block_rows: DEFAULT_BLOCK_ROWS,
        }
    }
}

impl RgsqrfConfig {
    /// The Figure 6 right-bar variant: recursion with an SGEQRF panel.
    pub fn with_sgeqrf_panel() -> Self {
        RgsqrfConfig {
            panel: PanelKind::Sgeqrf,
            ..RgsqrfConfig::default()
        }
    }
}

/// Explicit QR factors in single precision.
#[derive(Debug)]
pub struct QrFactors {
    /// Orthonormal factor, `m x n`.
    pub q: Mat<f32>,
    /// Upper-triangular factor, `n x n`.
    pub r: Mat<f32>,
}

/// Recursive Gram-Schmidt QR of `a` (`m x n`, `m >= n >= 1`) on the
/// simulated engine.
///
/// The engine configuration decides where TensorCore runs (update and/or
/// panel GEMMs) and its clock accumulates the modeled V100 time.
pub fn rgsqrf(eng: &GpuSim, a: MatRef<'_, f32>, cfg: &RgsqrfConfig) -> QrFactors {
    try_rgsqrf(eng, a, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// [`rgsqrf`] with the shape/configuration preconditions reported as a
/// [`TcqrError`] instead of a panic.
pub fn try_rgsqrf(
    eng: &GpuSim,
    a: MatRef<'_, f32>,
    cfg: &RgsqrfConfig,
) -> Result<QrFactors, TcqrError> {
    let m = a.nrows();
    let n = a.ncols();
    if !(m >= n && n >= 1) {
        return Err(TcqrError::shape(
            "rgsqrf",
            format!("need m >= n >= 1 (got {m} x {n})"),
        ));
    }
    if cfg.cutoff < 1 || cfg.caqr_width < 1 {
        return Err(TcqrError::shape(
            "rgsqrf",
            "cutoff and CAQR width must be >= 1",
        ));
    }
    if cfg.caqr_block_rows < 2 * cfg.caqr_width {
        return Err(TcqrError::shape(
            "rgsqrf",
            "CAQR block rows must be >= 2x CAQR width",
        ));
    }
    let mut q = a.to_owned();
    let mut r = Mat::zeros(n, n);
    let span = eng.tracer().span(
        "rgsqrf",
        &[
            ("m", Value::from(m)),
            ("n", Value::from(n)),
            ("cutoff", Value::from(cfg.cutoff)),
            ("panel", Value::from(cfg.panel.as_str())),
        ],
    );
    // Rounded-Q shadow: on a TensorCore engine, every finalized panel of Q
    // is rounded through the half format exactly once — right after its
    // panel factorization — and every later level's reduction and update
    // GEMM reads the cached image instead of re-rounding Q1 per call.
    // `None` when the update phase stays FP32 (nothing is ever rounded) or
    // when the whole matrix is a single panel (no updates consume it).
    let mut shadow = if n > cfg.cutoff {
        eng.cache_shell(Phase::Update, m, n)
    } else {
        None
    };
    recurse(eng, cfg, q.as_mut(), r.as_mut(), 0, &mut shadow, 0);
    drop(span);
    Ok(QrFactors { q, r })
}

/// One level of Algorithm 1 on views (`q` doubles as A-in / Q-out storage).
/// `level` is the recursion depth from the root, carried into the trace and
/// the per-level orthogonality health samples. `shadow`/`j0` locate this
/// block inside the factorization-wide rounded-Q cache (see [`rgsqrf`]).
fn recurse(
    eng: &GpuSim,
    cfg: &RgsqrfConfig,
    mut q: MatMut<'_, f32>,
    r: MatMut<'_, f32>,
    level: usize,
    shadow: &mut Option<HalfMat>,
    j0: usize,
) {
    let n = q.ncols();
    if n <= cfg.cutoff {
        panel_factor(eng, cfg, q.rb(), r);
        // The panel's columns of Q are now final: round them into the
        // shadow so every ancestor level's GEMMs reuse this one rounding.
        // The very last panel of the matrix is never a left factor at any
        // level, so its rounding would be dead work — skip it.
        if let Some(sh) = shadow.as_mut() {
            if j0 + n < sh.ncols() {
                eng.cache_cols(Phase::Update, sh, j0, q.as_ref());
            }
        }
        return;
    }
    let span = eng.tracer().span(
        "rgsqrf.level",
        &[
            ("m", Value::from(q.nrows())),
            ("n", Value::from(n)),
            ("level", Value::from(level)),
        ],
    );
    split_step(
        eng,
        q.rb(),
        r,
        Phase::Update,
        true,
        shadow,
        j0,
        &|q_half, r_half, sh, jj| recurse(eng, cfg, q_half, r_half, level + 1, sh, jj),
    );
    // Health monitor (off by default — O(m n^2) in f64): how far has this
    // level's Q block drifted from orthogonality?
    crate::health::sample_orthogonality(eng, q.as_ref(), level, "factor");
    drop(span);
}

/// Panel-factorization callback of [`split_step`]: factor the left half
/// `(Q panel, R panel)` in place, reusing the cached half-precision shadow,
/// starting at the given global column offset.
type FactorHalf<'f> =
    dyn for<'a, 'b, 'c> Fn(MatMut<'a, f32>, MatMut<'b, f32>, &'c mut Option<HalfMat>, usize) + 'f;

/// The shared split-project-update-split skeleton of Algorithm 1, with the
/// two GEMMs routed through the engine under the given phase/charging.
///
/// When a rounded-Q `shadow` exists, Q1's half-precision image is read from
/// it (columns `j0..j0 + h`, filled when those panels were finalized) in
/// both GEMMs — zero rounding work here. A2 and R12 change between/inside
/// the calls, so they stay fresh per-call operands. Rounding is elementwise
/// and Q1 is unmodified since its panels finished, so the cached image is
/// bit-identical to re-rounding Q1 per call.
#[allow(clippy::too_many_arguments)]
fn split_step(
    eng: &GpuSim,
    q: MatMut<'_, f32>,
    r: MatMut<'_, f32>,
    phase: Phase,
    charge: bool,
    shadow: &mut Option<HalfMat>,
    j0: usize,
    factor_half: &FactorHalf<'_>,
) {
    let n = q.ncols();
    let h = n / 2;
    let (mut q1, mut q2) = q.split_at_col_mut(h);
    let (rl, rr) = r.split_at_col_mut(h);
    let r11 = rl.submatrix_mut(0, 0, h, h);
    let (mut r12, rbot) = rr.split_at_row_mut(h);
    let r22 = rbot.submatrix_mut(0, 0, n - h, n - h);

    // [Q1, R11] = RGSQRF(A1) — also fills shadow columns j0..j0+h.
    factor_half(q1.rb(), r11, shadow, j0);
    let q1_op = match shadow.as_ref() {
        Some(sh) => CachedOperand::cols(q1.as_ref(), sh, j0),
        None => CachedOperand::fresh(q1.as_ref()),
    };
    // R12 = Q1^T A2 — reduction-shape GEMM.
    eng.gemm_f32_cached(
        phase,
        charge,
        1.0,
        Op::Trans,
        q1_op,
        Op::NoTrans,
        CachedOperand::fresh(q2.as_ref()),
        0.0,
        r12.rb(),
    );
    // A2 <- A2 - Q1 R12 — update-shape GEMM (f32 accumulation, as on TC).
    eng.gemm_f32_cached(
        phase,
        charge,
        -1.0,
        Op::NoTrans,
        q1_op,
        Op::NoTrans,
        CachedOperand::fresh(r12.as_ref()),
        1.0,
        q2.rb(),
    );
    // [Q2, R22] = RGSQRF(A2')
    factor_half(q2.rb(), r22, shadow, j0 + h);
}

/// Factor a panel (width <= cutoff).
fn panel_factor(eng: &GpuSim, cfg: &RgsqrfConfig, mut q: MatMut<'_, f32>, mut r: MatMut<'_, f32>) {
    let m = q.nrows();
    let n = q.ncols();
    let span = eng.tracer().span(
        "rgsqrf.panel",
        &[
            ("m", Value::from(m)),
            ("n", Value::from(n)),
            ("kind", Value::from(cfg.panel.as_str())),
        ],
    );
    match cfg.panel {
        PanelKind::Sgeqrf => {
            // cuSOLVER-style panel: blocked Householder in f32, explicit Q.
            let mut f = q.to_owned();
            let mut tau = vec![0.0f32; n.min(m)];
            lapack::geqrf(f.as_mut(), &mut tau);
            let rx = lapack::extract_r(f.as_ref());
            for j in 0..n {
                r.col_mut(j)[..n].copy_from_slice(&rx.col(j)[..n]);
            }
            let qx = lapack::orgqr(f.as_ref(), &tau, lapack::DEFAULT_BLOCK);
            q.copy_from(qx.as_ref());
            eng.charge_sgeqrf(Phase::Panel, m, n);
        }
        PanelKind::Caqr => {
            // Recursive GS down to the CAQR leaf width; all numerics run
            // (and round through half precision if the engine enables TC in
            // the panel) but time is charged once for the whole panel, the
            // way the paper benchmarks its fused CUDA kernel. The panel
            // keeps its own rounded-Q shadow (None unless TC runs in the
            // panel) so its internal GEMMs also round each leaf just once.
            let mut pshadow = if n > cfg.caqr_width {
                eng.cache_shell(Phase::Panel, m, n)
            } else {
                None
            };
            caqr_gs(eng, cfg, q, r, &mut pshadow, 0);
            eng.charge_caqr_panel(m, n);
        }
    }
    drop(span);
}

/// Uncharged recursive GS used inside the CAQR panel. `shadow`/`j0` locate
/// this block inside the panel's own rounded-Q cache.
fn caqr_gs(
    eng: &GpuSim,
    cfg: &RgsqrfConfig,
    mut q: MatMut<'_, f32>,
    r: MatMut<'_, f32>,
    shadow: &mut Option<HalfMat>,
    j0: usize,
) {
    let n = q.ncols();
    if n <= cfg.caqr_width {
        caqr_tsqr_traced(&eng.tracer(), q.rb(), r, cfg.caqr_block_rows);
        if let Some(sh) = shadow.as_mut() {
            if j0 + n < sh.ncols() {
                eng.cache_cols(Phase::Panel, sh, j0, q.as_ref());
            }
        }
        return;
    }
    split_step(
        eng,
        q,
        r,
        Phase::Panel,
        false,
        shadow,
        j0,
        &|q_half, r_half, sh, jj| caqr_gs(eng, cfg, q_half, r_half, sh, jj),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gen::{self, rng};
    use densemat::metrics::{orthogonality_error, qr_backward_error};
    use tensor_engine::{EngineConfig, GpuSim};

    fn f32_matrix(m: usize, n: usize, seed: u64) -> Mat<f32> {
        gen::gaussian(m, n, &mut rng(seed)).convert()
    }

    fn errors(a: &Mat<f32>, f: &QrFactors) -> (f64, f64) {
        let be = qr_backward_error(
            a.convert::<f64>().as_ref(),
            f.q.convert::<f64>().as_ref(),
            f.r.convert::<f64>().as_ref(),
        );
        let oe = orthogonality_error(f.q.convert::<f64>().as_ref());
        (be, oe)
    }

    #[test]
    fn fp32_engine_gives_single_precision_qr() {
        let eng = GpuSim::new(EngineConfig::no_tensorcore());
        let a = f32_matrix(512, 96, 1);
        let cfg = RgsqrfConfig {
            cutoff: 32,
            caqr_width: 8,
            caqr_block_rows: 64,
            ..RgsqrfConfig::default()
        };
        let f = rgsqrf(&eng, a.as_ref(), &cfg);
        let (be, oe) = errors(&a, &f);
        assert!(be < 1e-5, "backward error {be}");
        assert!(oe < 1e-4, "orthogonality {oe}");
    }

    #[test]
    fn tensorcore_engine_gives_half_precision_backward_error() {
        let eng = GpuSim::default(); // TC in update
        let a = f32_matrix(512, 96, 2);
        let cfg = RgsqrfConfig {
            cutoff: 32,
            caqr_width: 8,
            caqr_block_rows: 64,
            ..RgsqrfConfig::default()
        };
        let f = rgsqrf(&eng, a.as_ref(), &cfg);
        let (be, oe) = errors(&a, &f);
        // Half precision unit roundoff is ~4.9e-4; the error should sit at
        // that scale — much worse than f32, much better than garbage.
        assert!(be > 1e-7, "suspiciously good for fp16 inputs: {be}");
        assert!(be < 5e-2, "backward error {be}");
        assert!(oe < 5e-1, "orthogonality {oe}");
        assert!(eng.counters().tc_flops > 0.0);
    }

    #[test]
    fn sgeqrf_panel_variant_factorizes() {
        let eng = GpuSim::default();
        let a = f32_matrix(300, 64, 3);
        let cfg = RgsqrfConfig {
            cutoff: 16,
            ..RgsqrfConfig::with_sgeqrf_panel()
        };
        let f = rgsqrf(&eng, a.as_ref(), &cfg);
        let (be, oe) = errors(&a, &f);
        assert!(be < 1e-2, "backward error {be}");
        assert!(oe < 1e-1, "orthogonality {oe}");
        assert!(eng.counters().panel_calls > 0);
    }

    #[test]
    fn r_is_upper_triangular_and_diag_positive() {
        let eng = GpuSim::new(EngineConfig::no_tensorcore());
        let a = f32_matrix(256, 40, 4);
        let cfg = RgsqrfConfig {
            cutoff: 16,
            caqr_width: 8,
            caqr_block_rows: 32,
            ..RgsqrfConfig::default()
        };
        let f = rgsqrf(&eng, a.as_ref(), &cfg);
        for j in 0..40 {
            assert!(f.r[(j, j)] > 0.0, "diag {j}");
            for i in j + 1..40 {
                assert_eq!(f.r[(i, j)], 0.0, "below-diagonal ({i},{j})");
            }
        }
    }

    #[test]
    fn matches_householder_r_in_fp32() {
        // Unique positive-diagonal R: compare against the f64 reference.
        let eng = GpuSim::new(EngineConfig::no_tensorcore());
        let a = f32_matrix(400, 32, 5);
        let cfg = RgsqrfConfig {
            cutoff: 16,
            caqr_width: 8,
            caqr_block_rows: 64,
            ..RgsqrfConfig::default()
        };
        let f = rgsqrf(&eng, a.as_ref(), &cfg);
        let h = densemat::lapack::Householder::factor(a.convert::<f64>());
        let rref = h.r();
        for j in 0..32 {
            for i in 0..=j {
                let want = rref[(i, j)].abs();
                let got = f.r[(i, j)].abs() as f64;
                assert!(
                    (got - want).abs() < 1e-4 * want.max(1.0),
                    "R mismatch ({i},{j}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn odd_sizes_and_non_powers_of_two() {
        let eng = GpuSim::new(EngineConfig::no_tensorcore());
        for (m, n) in [(331, 77), (100, 100), (513, 17)] {
            let a = f32_matrix(m, n, 100 + n as u64);
            let cfg = RgsqrfConfig {
                cutoff: 16,
                caqr_width: 8,
                caqr_block_rows: 32,
                ..RgsqrfConfig::default()
            };
            let f = rgsqrf(&eng, a.as_ref(), &cfg);
            let (be, oe) = errors(&a, &f);
            assert!(be < 1e-4, "({m},{n}) backward {be}");
            assert!(oe < 1e-3, "({m},{n}) orthogonality {oe}");
        }
    }

    #[test]
    fn flop_counter_matches_closed_form() {
        let eng = GpuSim::new(EngineConfig::no_tensorcore());
        let (m, n) = (1024usize, 128usize);
        let a = f32_matrix(m, n, 6);
        let cfg = RgsqrfConfig {
            cutoff: 32,
            caqr_width: 16,
            caqr_block_rows: 64,
            ..RgsqrfConfig::default()
        };
        let _ = rgsqrf(&eng, a.as_ref(), &cfg);
        let counted = eng.counters().total_flops();
        let expect = tensor_engine::perf::rgsqrf_flops(m, n);
        // Counted = charged GEMMs + aggregate panel charges; the closed form
        // is exact for the recursion, panels are counted at 2 m n^2 as well.
        let rel = (counted - expect).abs() / expect;
        assert!(rel < 0.05, "counted {counted:.3e} vs {expect:.3e}");
    }

    #[test]
    fn panel_gemms_do_not_use_tensorcore_by_default() {
        let eng = GpuSim::default(); // tc_panel = false
        let a = f32_matrix(256, 64, 7);
        // Whole matrix is one panel: cutoff 64.
        let cfg = RgsqrfConfig {
            cutoff: 64,
            caqr_width: 16,
            caqr_block_rows: 64,
            ..RgsqrfConfig::default()
        };
        let _ = rgsqrf(&eng, a.as_ref(), &cfg);
        assert_eq!(
            eng.counters().round.total,
            0,
            "panel GEMMs must not round through half when tc_panel is off"
        );
    }

    #[test]
    fn tc_everywhere_rounds_panel_gemms_too() {
        let eng = GpuSim::new(EngineConfig::tensorcore_everywhere());
        let a = f32_matrix(256, 64, 8);
        let cfg = RgsqrfConfig {
            cutoff: 64,
            caqr_width: 16,
            caqr_block_rows: 64,
            ..RgsqrfConfig::default()
        };
        let _ = rgsqrf(&eng, a.as_ref(), &cfg);
        assert!(eng.counters().round.total > 0);
    }

    #[test]
    fn rounded_q_shadow_at_least_halves_rounding_work() {
        // Closed-form rounding counts for the trailing-update recursion on
        // the default engine (TC in the update, FP32 panel). `old` is what
        // per-GEMM operand rounding used to cost; `new` is the
        // once-per-factorization scheme: each panel of Q rounded once when
        // finalized (except the globally last, which no level consumes),
        // plus the genuinely fresh A2 / R12 operands.
        fn sim(
            m: usize,
            n: usize,
            cutoff: usize,
            j0: usize,
            total: usize,
            old: &mut u64,
            new: &mut u64,
        ) {
            if n <= cutoff {
                if j0 + n < total {
                    *new += (m * n) as u64;
                }
                return;
            }
            let h = n / 2;
            sim(m, h, cutoff, j0, total, old, new);
            // old: Q1 + A2 rounded for R12 = Q1^T A2, then Q1 + R12 for the
            // update. new: Q1 comes from the shadow both times.
            *old += (2 * m * h + m * (n - h) + h * (n - h)) as u64;
            *new += (m * (n - h) + h * (n - h)) as u64;
            sim(m, n - h, cutoff, j0 + h, total, old, new);
        }

        let (m, n) = (2048usize, 512usize);
        let cfg = RgsqrfConfig {
            cutoff: 32,
            caqr_width: 16,
            caqr_block_rows: 64,
            ..RgsqrfConfig::default()
        };
        let eng = GpuSim::default();
        let a = f32_matrix(m, n, 11);
        let _ = rgsqrf(&eng, a.as_ref(), &cfg);

        let (mut old, mut new) = (0u64, 0u64);
        sim(m, n, cfg.cutoff, 0, n, &mut old, &mut new);
        let measured = eng.counters().round.total;
        assert_eq!(
            measured, new,
            "rounding count must match the once-per-factorization closed form"
        );
        assert!(
            old >= 2 * measured,
            "expected at least 2x fewer element roundings: per-GEMM scheme {old}, measured {measured}"
        );
    }

    #[test]
    fn modeled_time_tc_beats_no_tc_at_scale() {
        // Pure cost question at paper scale: charge pattern only, numerics
        // run at a reduced size via the same code path then rescaled is not
        // possible — instead compare modeled clocks at a modest size where
        // the TC rates already separate.
        let a = f32_matrix(2048, 512, 9);
        let cfg = RgsqrfConfig::default();

        let tc = GpuSim::default();
        let _ = rgsqrf(&tc, a.as_ref(), &cfg);

        let no = GpuSim::new(EngineConfig::no_tensorcore());
        let _ = rgsqrf(&no, a.as_ref(), &cfg);

        assert!(
            tc.clock() < no.clock(),
            "TC clock {} should beat FP32 clock {}",
            tc.clock(),
            no.clock()
        );
    }

    #[test]
    #[should_panic(expected = "need m >= n")]
    fn rejects_wide_matrices() {
        let eng = GpuSim::default();
        let a = f32_matrix(10, 20, 10);
        let _ = rgsqrf(&eng, a.as_ref(), &RgsqrfConfig::default());
    }

    #[test]
    fn try_variant_reports_typed_shape_errors() {
        use crate::error::TcqrError;
        let eng = GpuSim::default();
        let wide = f32_matrix(10, 20, 12);
        let err = try_rgsqrf(&eng, wide.as_ref(), &RgsqrfConfig::default()).unwrap_err();
        assert!(matches!(err, TcqrError::ShapeMismatch { op: "rgsqrf", .. }));
        assert!(err.to_string().contains("need m >= n"), "{err}");

        let a = f32_matrix(64, 16, 13);
        let bad_cfg = RgsqrfConfig {
            caqr_width: 16,
            caqr_block_rows: 16, // < 2x width
            ..RgsqrfConfig::default()
        };
        let err = try_rgsqrf(&eng, a.as_ref(), &bad_cfg).unwrap_err();
        assert!(err.to_string().contains("2x CAQR width"), "{err}");

        // And the Ok path returns the same factors as the panicking API.
        let f = try_rgsqrf(&eng, a.as_ref(), &RgsqrfConfig::default()).unwrap();
        assert_eq!(f.q.ncols(), 16);
    }
}
