//! Charge-only replays of the algorithms, for paper-scale performance
//! figures.
//!
//! The accuracy experiments run real numerics at reduced sizes (error
//! behaviour depends on precision and conditioning, not absolute size), but
//! the performance figures quote 32768x16384-class matrices whose emulated
//! numerics would take hours on a CPU. These functions replay the *exact*
//! sequence of engine charges the real implementations make — same
//! recursion, same GEMM shapes, same panel calls — without touching any
//! data. A consistency test pins charge-only and real execution to the same
//! modeled clock at sizes where both run.

use crate::rgsqrf::{PanelKind, RgsqrfConfig};
use tensor_engine::{Class, GpuSim, Phase};

/// Charge-only replay of [`crate::rgsqrf::rgsqrf`] on an `m x n` matrix.
pub fn rgsqrf(eng: &GpuSim, m: usize, n: usize, cfg: &RgsqrfConfig) {
    assert!(m >= n && n >= 1);
    rec(eng, m, n, cfg);
}

fn rec(eng: &GpuSim, m: usize, n: usize, cfg: &RgsqrfConfig) {
    if n <= cfg.cutoff {
        match cfg.panel {
            PanelKind::Caqr => eng.charge_caqr_panel(m, n),
            PanelKind::Sgeqrf => eng.charge_sgeqrf(Phase::Panel, m, n),
        }
        return;
    }
    let h = n / 2;
    rec(eng, m, h, cfg);
    let class = if eng.uses_tc(Phase::Update) {
        Class::TensorCore
    } else {
        Class::Fp32
    };
    // R12 = Q1^T A2: (h x m)(m x (n-h)).
    eng.charge_gemm(Phase::Update, class, h, n - h, m);
    // A2 -= Q1 R12: (m x h)(h x (n-h)).
    eng.charge_gemm(Phase::Update, class, m, n - h, h);
    rec(eng, m, n - h, cfg);
}

/// Charge-only replay of [`crate::reortho::rgsqrf_reortho`].
pub fn rgsqrf_reortho(eng: &GpuSim, m: usize, n: usize, cfg: &RgsqrfConfig) {
    rgsqrf(eng, m, n, cfg);
    rgsqrf(eng, m, n, cfg);
    eng.charge_gemm(Phase::Other, Class::Fp32, n, n, (n / 2).max(1));
}

/// Charge-only cuSOLVER `SGEQRF` on `m x n`.
pub fn sgeqrf(eng: &GpuSim, m: usize, n: usize) {
    eng.charge_sgeqrf(Phase::Panel, m, n);
}

/// Charge-only `SGEQRF` + explicit Q via `SORGQR` — the Figure 5 baseline
/// for orthogonalization.
pub fn sgeqrf_orgqr(eng: &GpuSim, m: usize, n: usize) {
    eng.charge_sgeqrf(Phase::Panel, m, n);
    eng.charge_orgqr(Phase::Other, Class::Fp32, m, n);
}

/// Charge-only single precision direct LLS solve
/// (`SGEQRF + SORMQR + STRSM`).
pub fn scusolve(eng: &GpuSim, m: usize, n: usize) {
    eng.charge_sgeqrf(Phase::Panel, m, n);
    eng.charge_ormqr(Phase::Solve, Class::Fp32, m, n, 1);
    eng.charge_trsv(Phase::Solve, Class::Fp32, n);
}

/// Charge-only double precision direct LLS solve.
pub fn dcusolve(eng: &GpuSim, m: usize, n: usize) {
    eng.charge_dgeqrf(Phase::Panel, m, n);
    eng.charge_ormqr(Phase::Solve, Class::Fp64, m, n, 1);
    eng.charge_trsv(Phase::Solve, Class::Fp64, n);
}

/// Charge-only RGSQRF direct LLS solve (factor + `Q^T b` + back-solve).
pub fn rgsqrf_direct(eng: &GpuSim, m: usize, n: usize, cfg: &RgsqrfConfig) {
    rgsqrf(eng, m, n, cfg);
    eng.charge_gemv(Phase::Solve, Class::Fp32, m, n);
    eng.charge_trsv(Phase::Solve, Class::Fp32, n);
}

/// Charge-only RGSQRF + CGLS refinement with a measured iteration count
/// (iteration counts come from a real reduced-size run of the same spectrum;
/// per-iteration cost is two GEMVs, two triangular solves and a few streamed
/// vectors in FP64 — identical to the charges made by the real
/// [`crate::lls::cgls_qr`]).
pub fn cgls_qr(eng: &GpuSim, m: usize, n: usize, cfg: &RgsqrfConfig, iterations: usize) {
    rgsqrf(eng, m, n, cfg);
    for _ in 0..iterations + 1 {
        // +1: the setup residual evaluation before the loop.
        eng.charge_gemv(Phase::Refine, Class::Fp64, m, n);
        eng.charge_gemv(Phase::Refine, Class::Fp64, m, n);
        eng.charge_trsv(Phase::Refine, Class::Fp64, n);
        eng.charge_trsv(Phase::Refine, Class::Fp64, n);
        eng.charge_vec(Phase::Refine, Class::Fp64, 3 * m + 3 * n);
    }
}

/// Charge-only QR-SVD low-rank pipeline (Table 4's two variants).
pub fn qr_svd(eng: &GpuSim, m: usize, n: usize, rgs: bool, cfg: &RgsqrfConfig) {
    if rgs {
        rgsqrf(eng, m, n, cfg);
    } else {
        eng.charge_sgeqrf(Phase::Panel, m, n);
        eng.charge_orgqr(Phase::Other, Class::Fp32, m, n);
    }
    eng.charge_gemm(Phase::Other, Class::Fp32, n, n, 5 * n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gen::{self, rng};
    use densemat::Mat;
    use tensor_engine::{EngineConfig, GpuSim};

    /// The load-bearing property: the replay charges the exact same clock
    /// as the real implementation.
    #[test]
    fn replay_matches_real_rgsqrf_clock() {
        let (m, n) = (1024usize, 256usize);
        let a: Mat<f32> = gen::gaussian(m, n, &mut rng(1)).convert();
        for cfg in [
            RgsqrfConfig::default(),
            RgsqrfConfig::with_sgeqrf_panel(),
            RgsqrfConfig {
                cutoff: 64,
                caqr_width: 16,
                caqr_block_rows: 128,
                ..RgsqrfConfig::default()
            },
        ] {
            let real = GpuSim::default();
            let _ = crate::rgsqrf::rgsqrf(&real, a.as_ref(), &cfg);
            let replay = GpuSim::default();
            rgsqrf(&replay, m, n, &cfg);
            let (tr, tp) = (real.clock(), replay.clock());
            assert!(
                ((tr - tp) / tr).abs() < 1e-12,
                "clock mismatch for {cfg:?}: real {tr} vs replay {tp}"
            );
        }
    }

    #[test]
    fn replay_matches_real_reortho_clock() {
        let (m, n) = (512usize, 128usize);
        let a: Mat<f32> = gen::gaussian(m, n, &mut rng(2)).convert();
        let cfg = RgsqrfConfig::default();
        let real = GpuSim::default();
        let _ = crate::reortho::rgsqrf_reortho(&real, a.as_ref(), &cfg);
        let replay = GpuSim::default();
        rgsqrf_reortho(&replay, m, n, &cfg);
        assert!(((real.clock() - replay.clock()) / real.clock()).abs() < 1e-12);
    }

    #[test]
    fn replay_matches_real_cgls_clock() {
        let (m, n) = (512usize, 64usize);
        let a = gen::rand_svd(m, n, gen::Spectrum::Arithmetic { cond: 100.0 }, &mut rng(3));
        let b: Vec<f64> = (0..m).map(|i| (i as f64).sin()).collect();
        let cfg = RgsqrfConfig {
            cutoff: 32,
            caqr_width: 8,
            caqr_block_rows: 64,
            ..RgsqrfConfig::default()
        };
        let real = GpuSim::default();
        let out = crate::lls::cgls_qr(&real, &a, &b, &cfg, &crate::lls::RefineConfig::default());
        let replay = GpuSim::default();
        cgls_qr(&replay, m, n, &cfg, out.iterations);
        let (tr, tp) = (real.clock(), replay.clock());
        // The real path may also charge a scaling pass; allow 5%.
        assert!(
            ((tr - tp) / tr).abs() < 0.05,
            "clock mismatch: real {tr} vs replay {tp} ({} iters)",
            out.iterations
        );
    }

    #[test]
    fn paper_scale_charges_are_finite_and_fast_to_compute() {
        let eng = GpuSim::default();
        rgsqrf(&eng, 32768, 16384, &RgsqrfConfig::default());
        let t = eng.clock();
        assert!(t > 0.0 && t.is_finite());
        // Headline sanity: TFLOPS in the paper's reported range.
        let tflops = tensor_engine::perf::rgsqrf_flops(32768, 16384) / t / 1e12;
        assert!(
            (15.0..40.0).contains(&tflops),
            "modeled {tflops} TFLOPS at 32768x16384"
        );
    }

    #[test]
    fn no_tc_replay_respects_engine_config() {
        let tc = GpuSim::default();
        rgsqrf(&tc, 32768, 8192, &RgsqrfConfig::default());
        let plain = GpuSim::new(EngineConfig::no_tensorcore());
        rgsqrf(&plain, 32768, 8192, &RgsqrfConfig::default());
        assert!(tc.clock() < plain.clock());
        assert!(plain.counters().tc_flops == 0.0);
    }
}
