//! Communication-avoiding QR panel (§3.1.3, equation (8)).
//!
//! A tall panel is split into row blocks (256 rows in the paper — one GPU
//! threadblock's shared-memory tile; here one rayon task each). Each block is
//! QR-factorized independently with modified Gram-Schmidt, the stacked R
//! factors are reduced recursively the same way until they fit one block,
//! and the block Q factors are multiplied back in a batch of small GEMMs.
//! The result is the QR of the original panel (step 5 of eq. (8)): the
//! product of orthonormal factors is orthonormal.
//!
//! Time on the simulated device is charged by the caller as one aggregate
//! panel cost — the paper benchmarks its hand-written CUDA panel the same
//! way (0.33 TFLOPS on a 32768x128 panel, 3.3x cuSOLVER's SGEQRF).

use crate::error::TcqrError;
use crate::mgs::mgs_qr;
use densemat::{gemm, lapack, Mat, MatMut, Op, Real};
use rayon::prelude::*;
use tcqr_trace::{Tracer, Value};

/// Row-block size: the paper's shared-memory tile height.
pub const DEFAULT_BLOCK_ROWS: usize = 256;

/// Per-block QR kernel of the tall-skinny reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TsqrKernel {
    /// Modified Gram-Schmidt (Algorithm 2) — the paper's choice: every
    /// operation is a vector update that stays in the tile.
    Mgs,
    /// Householder QR per block — the Ootomo & Yokota (SC '19) variant the
    /// paper's §5 contrasts with: unconditionally orthogonal blocks at the
    /// cost of a less fusable kernel.
    Householder,
}

/// Split a view into row blocks of `block` rows; the remainder is folded
/// into the last block so every block keeps at least `block` rows.
fn split_rows<T: Real>(m: MatMut<'_, T>, block: usize) -> Vec<MatMut<'_, T>> {
    let total = m.nrows();
    let nb = (total / block).max(1);
    let mut out = Vec::with_capacity(nb);
    let mut rest = m;
    for _ in 0..nb - 1 {
        let (head, tail) = rest.split_at_row_mut(block);
        out.push(head);
        rest = tail;
    }
    out.push(rest);
    out
}

/// Factor one tile in place with the chosen kernel: `q` becomes the
/// orthonormal factor, `r` (at least `n x n`) the triangular one.
fn block_qr<T: Real>(kernel: TsqrKernel, q: MatMut<'_, T>, mut r: MatMut<'_, T>) {
    match kernel {
        TsqrKernel::Mgs => mgs_qr(q, r),
        TsqrKernel::Householder => {
            let mut q = q;
            let m = q.nrows();
            let n = q.ncols();
            let mut f = q.to_owned();
            let mut tau = vec![T::ZERO; n.min(m)];
            lapack::geqr2(f.as_mut(), &mut tau);
            for j in 0..n {
                let col = f.col(j);
                let rcol = r.col_mut(j);
                rcol[..n].fill(T::ZERO);
                let take = (j + 1).min(n);
                rcol[..take].copy_from_slice(&col[..take]);
            }
            let qx = lapack::orgqr(f.as_ref(), &tau, lapack::DEFAULT_BLOCK);
            q.copy_from(qx.as_ref());
        }
    }
}

/// Communication-avoiding tall-skinny QR with MGS blocks (the paper's
/// panel). See [`tsqr`] for the kernel-generic version.
pub fn caqr_tsqr<T: Real>(q: MatMut<'_, T>, r: MatMut<'_, T>, block_rows: usize) {
    tsqr(q, r, block_rows, TsqrKernel::Mgs)
}

/// [`caqr_tsqr`] with trace spans per reduction level and per-block op
/// events (emitted from the rayon workers that factorize the blocks).
pub fn caqr_tsqr_traced<T: Real>(
    tracer: &Tracer,
    q: MatMut<'_, T>,
    r: MatMut<'_, T>,
    block_rows: usize,
) {
    tsqr_traced(tracer, q, r, block_rows, TsqrKernel::Mgs)
}

/// Communication-avoiding tall-skinny QR with a selectable per-block kernel.
///
/// `q` (`m x n`, `m >= n`) is overwritten by the orthonormal factor; `r`
/// (at least `n x n`) receives the triangular factor. `block_rows` must be
/// at least `2n` so each reduction level strictly shrinks the stacked R
/// matrix (the paper uses 256 rows for 32-column panels — an 8x reduction
/// per level, `log_8(m/256)` passes over the panel).
pub fn tsqr<T: Real>(q: MatMut<'_, T>, r: MatMut<'_, T>, block_rows: usize, kernel: TsqrKernel) {
    tsqr_traced(&Tracer::disabled(), q, r, block_rows, kernel)
}

/// [`tsqr`] with tracing: each reduction level opens a `caqr.tsqr` span
/// (fields: level, rows, cols, block count) and each block factorization
/// emits a `caqr.block` op event from whichever rayon worker ran it.
pub fn tsqr_traced<T: Real>(
    tracer: &Tracer,
    q: MatMut<'_, T>,
    r: MatMut<'_, T>,
    block_rows: usize,
    kernel: TsqrKernel,
) {
    try_tsqr_traced(tracer, q, r, block_rows, kernel).unwrap_or_else(|e| panic!("{e}"))
}

/// [`tsqr`] with the shape preconditions reported as a [`TcqrError`]
/// instead of a panic.
pub fn try_tsqr<T: Real>(
    q: MatMut<'_, T>,
    r: MatMut<'_, T>,
    block_rows: usize,
    kernel: TsqrKernel,
) -> Result<(), TcqrError> {
    try_tsqr_traced(&Tracer::disabled(), q, r, block_rows, kernel)
}

/// [`tsqr_traced`] with the shape preconditions reported as a [`TcqrError`]
/// instead of a panic.
pub fn try_tsqr_traced<T: Real>(
    tracer: &Tracer,
    q: MatMut<'_, T>,
    r: MatMut<'_, T>,
    block_rows: usize,
    kernel: TsqrKernel,
) -> Result<(), TcqrError> {
    let m = q.nrows();
    let n = q.ncols();
    if m < n {
        return Err(TcqrError::shape("caqr_tsqr", format!("need m >= n (got {m} x {n})")));
    }
    if block_rows < 2 * n {
        return Err(TcqrError::shape(
            "caqr_tsqr",
            "block_rows must be >= 2x panel width",
        ));
    }
    tsqr_level(tracer, q, r, block_rows, kernel, 0);
    Ok(())
}

fn tsqr_level<T: Real>(
    tracer: &Tracer,
    mut q: MatMut<'_, T>,
    r: MatMut<'_, T>,
    block_rows: usize,
    kernel: TsqrKernel,
    level: usize,
) {
    let m = q.nrows();
    let n = q.ncols();
    if m <= block_rows {
        block_qr(kernel, q, r);
        tracer.op(
            "caqr.block",
            &[
                ("rows", Value::from(m)),
                ("cols", Value::from(n)),
                ("level", Value::from(level)),
            ],
        );
        return;
    }

    // Step 1: independent block factorizations, R factors stacked.
    let mut blocks = split_rows(q.rb(), block_rows);
    let nb = blocks.len();
    let span = tracer.span(
        "caqr.tsqr",
        &[
            ("level", Value::from(level)),
            ("rows", Value::from(m)),
            ("cols", Value::from(n)),
            ("blocks", Value::from(nb)),
        ],
    );
    let mut stack: Mat<T> = Mat::zeros(nb * n, n);
    {
        let sblocks = split_rows(stack.as_mut(), n);
        blocks.par_iter_mut().zip(sblocks).for_each(|(qb, sb)| {
            block_qr(kernel, qb.rb(), sb);
            // Emitted from a rayon worker: lands at the root span of that
            // worker's thread, ordered by the global sequence counter.
            tracer.op(
                "caqr.block",
                &[
                    ("rows", Value::from(qb.nrows())),
                    ("cols", Value::from(qb.ncols())),
                    ("level", Value::from(level)),
                ],
            );
        });
    }

    // Steps 2-3: reduce the stacked R factors recursively.
    tsqr_level(tracer, stack.as_mut(), r, block_rows, kernel, level + 1);

    // Step 4: batched Q updates, Q_i <- Q_i * Q2_i.
    let q2blocks = split_rows(stack.as_mut(), n);
    blocks
        .par_iter_mut()
        .zip(q2blocks)
        .for_each(|(qb, q2b)| {
            let mut tmp: Mat<T> = Mat::zeros(qb.nrows(), n);
            gemm(
                T::ONE,
                Op::NoTrans,
                qb.as_ref(),
                Op::NoTrans,
                q2b.as_ref(),
                T::ZERO,
                tmp.as_mut(),
            );
            qb.copy_from(tmp.as_ref());
        });
    drop(span);
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gen::{self, rng};
    use densemat::metrics::{orthogonality_error, qr_backward_error};

    fn run(a: &Mat<f64>, block_rows: usize) -> (Mat<f64>, Mat<f64>) {
        let mut q = a.clone();
        let n = a.ncols();
        let mut r = Mat::zeros(n, n);
        caqr_tsqr(q.as_mut(), r.as_mut(), block_rows);
        (q, r)
    }

    #[test]
    fn single_block_equals_mgs() {
        let a = gen::gaussian(100, 8, &mut rng(1));
        let (q1, r1) = run(&a, 256); // m <= block: plain MGS path
        let mut q2 = a.clone();
        let mut r2 = Mat::zeros(8, 8);
        mgs_qr(q2.as_mut(), r2.as_mut());
        assert_eq!(q1, q2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn multi_level_factorization_is_valid_qr() {
        // 2050 rows / 256-row blocks: 8 blocks + remainder folding, and the
        // 8*32 = 256-row stack reduces in exactly one more level.
        let a = gen::gaussian(2050, 32, &mut rng(2));
        let (q, r) = run(&a, 256);
        assert!(qr_backward_error(a.as_ref(), q.as_ref(), r.as_ref()) < 1e-13);
        assert!(orthogonality_error(q.as_ref()) < 1e-12);
        for j in 0..32 {
            for i in j + 1..32 {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn three_level_reduction() {
        // Small blocks force a deeper reduction tree: 512 rows of width 4
        // with 8-row blocks -> 64 R-blocks -> 32 -> ... several levels.
        let a = gen::gaussian(512, 4, &mut rng(3));
        let (q, r) = run(&a, 8);
        assert!(qr_backward_error(a.as_ref(), q.as_ref(), r.as_ref()) < 1e-13);
        assert!(orthogonality_error(q.as_ref()) < 1e-12);
    }

    #[test]
    fn agrees_with_flat_mgs_r_factor() {
        // Full-rank QR with positive diagonal is unique, so the CAQR R must
        // match the flat MGS R up to roundoff.
        let a = gen::gaussian(1000, 16, &mut rng(4));
        let (_, r_caqr) = run(&a, 256);
        let mut qf = a.clone();
        let mut r_flat = Mat::zeros(16, 16);
        mgs_qr(qf.as_mut(), r_flat.as_mut());
        for j in 0..16 {
            for i in 0..=j {
                assert!(
                    (r_caqr[(i, j)] - r_flat[(i, j)]).abs() < 1e-10 * r_flat[(j, j)].abs().max(1.0),
                    "R mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn non_multiple_row_count() {
        // 777 = 3*256 + 9: remainder folds into the last block.
        let a = gen::gaussian(777, 32, &mut rng(5));
        let (q, r) = run(&a, 256);
        assert!(qr_backward_error(a.as_ref(), q.as_ref(), r.as_ref()) < 1e-13);
        assert!(orthogonality_error(q.as_ref()) < 1e-12);
    }

    #[test]
    fn width_half_of_block_rows() {
        // The tightest legal ratio: each reduction level halves the stack.
        let a = gen::gaussian(64, 8, &mut rng(6));
        let (q, r) = run(&a, 16);
        assert!(qr_backward_error(a.as_ref(), q.as_ref(), r.as_ref()) < 1e-12);
        assert!(orthogonality_error(q.as_ref()) < 1e-11);
    }

    #[test]
    fn householder_kernel_factorizes_and_stays_orthogonal_when_ill_conditioned() {
        // The Ootomo/Yokota-style variant: per-block Householder keeps the
        // panel orthogonal regardless of conditioning, where MGS degrades.
        let cond = 1e6;
        let a64 = gen::rand_svd(2048, 16, gen::Spectrum::Geometric { cond }, &mut rng(9));
        let a: Mat<f32> = a64.convert();

        let mut qh = a.clone();
        let mut rh: Mat<f32> = Mat::zeros(16, 16);
        tsqr(qh.as_mut(), rh.as_mut(), 256, TsqrKernel::Householder);
        let oh = orthogonality_error(qh.convert::<f64>().as_ref());

        let mut qm = a.clone();
        let mut rm: Mat<f32> = Mat::zeros(16, 16);
        tsqr(qm.as_mut(), rm.as_mut(), 256, TsqrKernel::Mgs);
        let om = orthogonality_error(qm.convert::<f64>().as_ref());

        assert!(oh < 1e-4, "Householder TSQR orthogonality {oh}");
        assert!(
            om > 10.0 * oh,
            "MGS should visibly degrade at cond {cond}: mgs {om} vs hh {oh}"
        );
        // Both still factorize A.
        let be = qr_backward_error(
            a64.as_ref(),
            qh.convert::<f64>().as_ref(),
            rh.convert::<f64>().as_ref(),
        );
        assert!(be < 1e-5, "backward error {be}");
    }

    #[test]
    fn householder_kernel_well_conditioned_matches_mgs_r_up_to_sign() {
        let a = gen::gaussian(777, 8, &mut rng(10));
        let mut q1 = a.clone();
        let mut r1 = Mat::zeros(8, 8);
        tsqr(q1.as_mut(), r1.as_mut(), 64, TsqrKernel::Householder);
        let mut q2 = a.clone();
        let mut r2 = Mat::zeros(8, 8);
        tsqr(q2.as_mut(), r2.as_mut(), 64, TsqrKernel::Mgs);
        for j in 0..8 {
            for i in 0..=j {
                assert!(
                    (r1[(i, j)].abs() - r2[(i, j)].abs()).abs() < 1e-9 * r2[(j, j)].abs().max(1.0),
                    "|R| mismatch ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn f32_panel_accuracy_is_single_precision() {
        let a64 = gen::gaussian(2048, 32, &mut rng(7));
        let a: Mat<f32> = a64.convert();
        let mut q = a.clone();
        let mut r: Mat<f32> = Mat::zeros(32, 32);
        caqr_tsqr(q.as_mut(), r.as_mut(), 256);
        let be = qr_backward_error(
            a.convert::<f64>().as_ref(),
            q.convert::<f64>().as_ref(),
            r.convert::<f64>().as_ref(),
        );
        assert!(be < 1e-5, "backward error {be} beyond single precision");
        let oe = orthogonality_error(q.convert::<f64>().as_ref());
        assert!(oe < 1e-4, "orthogonality {oe}");
    }

    #[test]
    #[should_panic(expected = "block_rows must be >= 2x panel width")]
    fn rejects_blocks_narrower_than_twice_panel() {
        let a = gen::gaussian(100, 16, &mut rng(8));
        let _ = run(&a, 16);
    }

    #[test]
    fn try_variant_reports_typed_shape_errors() {
        use crate::error::TcqrError;
        let a = gen::gaussian(100, 16, &mut rng(11));
        let mut q = a.clone();
        let mut r = Mat::zeros(16, 16);
        let err = try_tsqr(q.as_mut(), r.as_mut(), 16, TsqrKernel::Mgs).unwrap_err();
        assert!(matches!(err, TcqrError::ShapeMismatch { op: "caqr_tsqr", .. }));
        assert!(err.to_string().contains("2x panel width"), "{err}");
        // A legal call succeeds and produces the same factors as tsqr.
        try_tsqr(q.as_mut(), r.as_mut(), 64, TsqrKernel::Mgs).unwrap();
        let (q2, r2) = run(&a, 64);
        assert_eq!(q, q2);
        assert_eq!(r, r2);
    }
}
