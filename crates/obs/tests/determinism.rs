//! End-to-end determinism: the observability layer must produce identical
//! timelines, alert streams, and dashboard bytes for two trace streams that
//! describe the same logical fleet, even when unrelated events, sequence
//! numbers, and stream interleavings differ — exactly what varies between
//! `--threads 1` and `--threads 8` runs of the batch experiment.

use std::sync::Arc;
use tcqr_obs::{evaluate, render, CritPath, ErrorBudget, FleetTimeline, SloSpec, TraceDiff};
use tcqr_trace::{Event, MemSink, Tracer, Value};

const SPEC: &str = r#"
[objective.queue-wait]
kind = "queue_wait"
threshold_secs = 5.0
target = 0.9
window_secs = 10.0
max_burn_rate = 1.0

[objective.balance]
kind = "efficiency"
min = 0.25

[objective.no-escapes]
kind = "fault_escape"
max_escaped = 0

[objective.residual]
kind = "residual"
solver = "any"
max_final_rel = 1.0e-6
"#;

/// Narrate a fixed three-engine, six-job fleet the way `FleetReport::emit`
/// does, with optional leading noise so sequence numbers shift.
fn narrate(noise_ops: usize, solver_order_flipped: bool) -> Vec<Event> {
    let sink = Arc::new(MemSink::new());
    let t = Tracer::new(sink.clone());
    for i in 0..noise_ops {
        t.info("noise", &[("i", Value::from(i))]);
    }
    // Solver span closes in either order: the residual objective reduces
    // through max, so order must not matter.
    let solves: [(&str, f64); 2] = [("cgls", 2.0e-9), ("lsqr", 8.0e-8)];
    let order: Vec<usize> = if solver_order_flipped { vec![1, 0] } else { vec![0, 1] };
    for &i in &order {
        let (name, rel) = solves[i];
        let span = t.span(name, &[]);
        span.close_with(&[("final_rel", Value::F64(rel))]);
    }
    // Post-hoc emission in submission order (the deterministic part).
    let segs = [
        (0usize, 0u64, 0.0, 0.0, 4.0, true, 0u64),
        (1, 1, 0.0, 0.0, 3.0, true, 1),
        (2, 2, 0.0, 0.0, 2.0, true, 0),
        (0, 3, 4.0, 4.0, 6.0, true, 0),
        (1, 4, 3.0, 3.0, 7.0, false, 0),
        (2, 5, 2.0, 2.0, 5.0, true, 0),
    ];
    for (engine, job, wait, start, end, ok, det) in segs {
        t.op(
            "engine.segment",
            &[
                ("engine", Value::from(engine)),
                ("job", Value::from(job)),
                ("kind", Value::from("rgsqrf")),
                ("wait_secs", Value::F64(wait)),
                ("start_secs", Value::F64(start)),
                ("end_secs", Value::F64(end)),
                ("ok", Value::from(ok)),
                ("fault_injected", Value::from(det)),
                ("fault_detected", Value::from(det)),
            ],
        );
    }
    for (engine, busy, clock) in [(0usize, 6.0, 6.0), (1, 7.0, 7.0), (2, 5.0, 5.0)] {
        t.op(
            "fleet.engine",
            &[
                ("engine", Value::from(engine)),
                ("jobs", Value::from(2usize)),
                ("busy_secs", Value::F64(busy)),
                ("clock_secs", Value::F64(clock)),
            ],
        );
    }
    sink.snapshot()
}

#[test]
fn timeline_digest_is_invariant_to_noise_and_seq_shifts() {
    let a = FleetTimeline::from_events(&narrate(0, false));
    let b = FleetTimeline::from_events(&narrate(17, true));
    assert_eq!(a, b);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.jobs, 6);
    assert_eq!(a.engines.len(), 3);
    assert_eq!(a.makespan_secs(), 7.0);
}

#[test]
fn alert_stream_is_bit_identical_across_interleavings() {
    let spec = SloSpec::parse(SPEC).unwrap();
    let ea = narrate(0, false);
    let eb = narrate(23, true);
    let ra = evaluate(&spec, &FleetTimeline::from_events(&ea), &ea);
    let rb = evaluate(&spec, &FleetTimeline::from_events(&eb), &eb);
    assert_eq!(ra, rb);
    assert_eq!(ra.alert_digest(), rb.alert_digest());
    // Re-emit both and compare the emitted alert streams field by field
    // (sequence numbers aside, the payloads must match exactly).
    let (sa, sb) = (Arc::new(MemSink::new()), Arc::new(MemSink::new()));
    ra.emit(&Tracer::new(sa.clone()));
    rb.emit(&Tracer::new(sb.clone()));
    let (ea, eb) = (sa.snapshot(), sb.snapshot());
    assert_eq!(ea.len(), eb.len());
    for (x, y) in ea.iter().zip(eb.iter()) {
        assert_eq!(x.kind, y.kind);
        assert_eq!(x.name, y.name);
        assert_eq!(x.fields, y.fields);
    }
}

#[test]
fn dashboard_bytes_are_identical_across_interleavings() {
    let spec = SloSpec::parse(SPEC).unwrap();
    let ea = narrate(0, false);
    let eb = narrate(31, true);
    let ta = FleetTimeline::from_events(&ea);
    let tb = FleetTimeline::from_events(&eb);
    let ca = CritPath::from_timeline(&ta);
    let cb = CritPath::from_timeline(&tb);
    let ha = render(&ta, Some(&evaluate(&spec, &ta, &ea)), Some(&ca), "batch");
    let hb = render(&tb, Some(&evaluate(&spec, &tb, &eb)), Some(&cb), "batch");
    assert_eq!(ha, hb);
}

#[test]
fn critical_path_is_bit_identical_across_interleavings() {
    let ea = narrate(0, false);
    let eb = narrate(13, true);
    let ca = CritPath::from_timeline(&FleetTimeline::from_events(&ea));
    let cb = CritPath::from_timeline(&FleetTimeline::from_events(&eb));
    assert_eq!(ca, cb);
    assert_eq!(ca.to_json(), cb.to_json());
    assert_eq!(ca.digest(), cb.digest());
    // The path is real: engine 1 finishes last in the narrated fleet.
    assert_eq!(ca.bottleneck_engine, Some(1));
    assert_eq!(ca.length_secs, 7.0);
}

#[test]
fn attribution_and_budget_are_bit_identical_across_interleavings() {
    // Same logical run, different noise / sequence numbers on both sides:
    // the self-diff must be exactly zero and both JSON renderings must be
    // byte-identical — this is what CI's --threads 1 vs 8 compare relies on.
    let ea = narrate(0, false);
    let eb = narrate(29, true);
    let d = TraceDiff::between_events(&ea, &eb);
    assert!(d.is_zero());
    assert_eq!(
        TraceDiff::between_events(&ea, &ea).to_json(0),
        TraceDiff::between_events(&eb, &eb).to_json(0)
    );
    let ba = ErrorBudget::from_events(&ea);
    let bb = ErrorBudget::from_events(&eb);
    assert_eq!(ba.to_json(), bb.to_json());
    assert_eq!(ba.digest(), bb.digest());
}

#[test]
fn schedule_changes_are_not_invisible() {
    // The invariance above must come from real reconstruction, not from
    // hashing nothing: perturb one segment and everything moves.
    let base = narrate(0, false);
    let mut moved = base.clone();
    for ev in &mut moved {
        if ev.name == "engine.segment" && ev.u64_field("job") == Some(3) {
            for (k, v) in &mut ev.fields {
                if k == "end_secs" {
                    *v = Value::F64(6.5);
                }
            }
        }
    }
    let spec = SloSpec::parse(SPEC).unwrap();
    let ta = FleetTimeline::from_events(&base);
    let tb = FleetTimeline::from_events(&moved);
    assert_ne!(ta.digest(), tb.digest());
    assert_ne!(
        render(&ta, Some(&evaluate(&spec, &ta, &base)), None, "batch"),
        render(&tb, Some(&evaluate(&spec, &tb, &moved)), None, "batch"),
    );
    // ...and the perturbation is visible to the attribution layer too.
    assert!(!TraceDiff::between_events(&base, &moved).is_zero());
    assert_ne!(
        CritPath::from_timeline(&ta).digest(),
        CritPath::from_timeline(&tb).digest()
    );
}

#[test]
fn breaching_spec_breaches_deterministically() {
    let spec = SloSpec::parse("[objective.impossible]\nkind = \"efficiency\"\nmin = 2.0").unwrap();
    let ea = narrate(0, false);
    let eb = narrate(5, true);
    let ra = evaluate(&spec, &FleetTimeline::from_events(&ea), &ea);
    let rb = evaluate(&spec, &FleetTimeline::from_events(&eb), &eb);
    assert!(!ra.healthy() && !rb.healthy());
    assert_eq!(ra.breaches(), 1);
    assert_eq!(ra.alert_digest(), rb.alert_digest());
}
