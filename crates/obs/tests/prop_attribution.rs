//! Conservation property of the trace differ: for any pair of randomly
//! generated event streams, every diff node's subtree delta must equal its
//! own delta plus its children's subtree deltas (folded in child order),
//! and the integer metrics of the root subtree must equal the exact sum of
//! every node's own delta — no telemetry is ever dropped or double-counted
//! by the attribution, whatever shape the traces take.

use proptest::prelude::*;
use std::sync::Arc;
use tcqr_obs::diff::{Delta, DiffNode};
use tcqr_obs::TraceDiff;
use tcqr_trace::{Event, MemSink, Tracer, Value};

const SPANS: [&str; 3] = ["rgsqrf", "cgls", "batch"];
const PHASES: [&str; 3] = ["panel", "update", "solve"];
const CLASSES: [&str; 3] = ["tc", "fp32", "fp64"];

/// One generated op; index 3 in `span`/`phase`/`class` means "absent", so
/// cases cover every alignment depth from root-level ops to full
/// span/phase/class paths.
#[derive(Clone, Debug)]
struct GenOp {
    span: usize,
    phase: usize,
    class: usize,
    secs: f64,
    rounded: u64,
    overflow: u64,
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    (0usize..4, 0usize..4, 0usize..4, 0.0f64..2.0, 0u64..500, 0u64..8).prop_map(
        |(span, phase, class, secs, rounded, overflow)| GenOp {
            span,
            phase,
            class,
            secs,
            rounded,
            overflow,
        },
    )
}

/// Narrate the generated ops through a real tracer so span ids, sequence
/// numbers, and field encodings are exactly what production traces carry.
fn narrate(ops: &[GenOp]) -> Vec<Event> {
    let sink = Arc::new(MemSink::new());
    let t = Tracer::new(sink.clone());
    for op in ops {
        let guard = (op.span < 3).then(|| t.span(SPANS[op.span], &[]));
        let mut fields: Vec<(&str, Value)> = vec![
            ("secs", Value::F64(op.secs)),
            ("rounded", Value::from(op.rounded)),
            ("overflow", Value::from(op.overflow)),
        ];
        if op.phase < 3 {
            fields.push(("phase", Value::from(PHASES[op.phase])));
        }
        if op.class < 3 {
            fields.push(("class", Value::from(CLASSES[op.class])));
        }
        t.op("work", &fields);
        drop(guard);
    }
    sink.drain()
}

/// Recompute `subtree` bottom-up in the same fold order the differ uses and
/// demand bit-identical results at every node.
fn check_conservation(node: &DiffNode) -> Result<Delta, TestCaseError> {
    let mut sum = node.own.clone();
    for child in &node.children {
        sum.add(&check_conservation(child)?);
    }
    prop_assert_eq!(
        &sum,
        &node.subtree,
        "subtree delta is not the sum of its parts at node {:?}",
        node.path
    );
    Ok(sum)
}

/// Exact integer totals of the own deltas across the whole tree.
fn own_totals(node: &DiffNode, sum: &mut Delta) {
    sum.add(&node.own);
    for child in &node.children {
        own_totals(child, sum);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn per_node_deltas_sum_to_the_root(
        base_ops in prop::collection::vec(op_strategy(), 0..40),
        cur_ops in prop::collection::vec(op_strategy(), 0..40),
    ) {
        let (base, cur) = (narrate(&base_ops), narrate(&cur_ops));
        let diff = TraceDiff::between_events(&base, &cur);

        // Every node's subtree delta is exactly own + children (same fold
        // order as the differ, so equality is bitwise, f64 included).
        check_conservation(&diff.root)?;

        // And the root rollup conserves the integer metrics of the whole
        // tree: nothing attributed twice, nothing lost.
        let mut total = Delta::default();
        own_totals(&diff.root, &mut total);
        prop_assert_eq!(total.ops, diff.root.subtree.ops);
        prop_assert_eq!(total.rounded, diff.root.subtree.rounded);
        prop_assert_eq!(total.overflow, diff.root.subtree.overflow);
        prop_assert_eq!(total.underflow, diff.root.subtree.underflow);
        prop_assert_eq!(total.nan, diff.root.subtree.nan);
        prop_assert_eq!(total.fault_injected, diff.root.subtree.fault_injected);
        prop_assert_eq!(total.fault_detected, diff.root.subtree.fault_detected);
    }

    #[test]
    fn a_trace_diffed_against_itself_is_zero(
        ops in prop::collection::vec(op_strategy(), 0..40),
    ) {
        let events = narrate(&ops);
        let diff = TraceDiff::between_events(&events, &events);
        prop_assert!(diff.is_zero());
        prop_assert!(diff.blame(0).is_empty());
    }
}
