//! Critical-path analysis over the reconstructed fleet schedule.
//!
//! With the batch scheduler's all-jobs-arrive-at-start static lanes, every
//! job's predecessor is simply the previous job on its engine, so the
//! makespan-critical chain is the full lane of whichever engine finishes
//! last: shortening any job on that lane shortens the batch, shortening
//! any other job only grows that engine's idle tail. [`CritPath`] names
//! that bottleneck lane, its jobs in order, and the slack of every other
//! job (how much the fleet end exceeds its lane's end — the amount its
//! lane could slow down before the makespan moves).
//!
//! Everything here is a pure function of the [`FleetTimeline`], which is
//! itself reconstructed from the deterministic post-hoc `engine.segment`
//! narration — so the analysis, its emitted `fleet.critpath.*` events, and
//! [`CritPath::to_json`] are bit-identical for any `--threads` (CI
//! byte-compares the JSON across thread counts).

use tcqr_trace::{Tracer, Value};

use crate::diff::{json_num, json_str};
use crate::timeline::{Digest, FleetTimeline, Segment};

/// One job's scheduling slack.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSlack {
    /// Queue index of the job.
    pub job: u64,
    /// Engine that ran it.
    pub engine: usize,
    /// Stable job-kind label.
    pub kind: String,
    /// Seconds the job's lane could slow down before the fleet makespan
    /// moves; exactly `0.0` on the critical lane.
    pub slack_secs: f64,
}

/// The makespan-critical chain through the fleet schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CritPath {
    /// The engine whose lane ends last (ties broken toward the lowest pool
    /// index); `None` for an empty timeline.
    pub bottleneck_engine: Option<usize>,
    /// `lane end - fleet start`: the modeled makespan the path explains.
    pub length_secs: f64,
    /// Busy seconds on the critical lane.
    pub busy_secs: f64,
    /// Idle seconds on the critical lane (`length - busy`, clamped at 0).
    pub idle_secs: f64,
    /// The critical lane's segments, in execution order.
    pub path: Vec<Segment>,
    /// Per-job slack across the whole fleet, sorted by job index.
    pub slack: Vec<JobSlack>,
}

/// Absolute simulated time engine `e`'s lane ends.
fn lane_end(e: &crate::timeline::EngineTimeline) -> f64 {
    let seg_end = e.segments.last().map(|s| s.end_secs).unwrap_or(e.base_secs);
    seg_end.max(e.clock_secs)
}

impl CritPath {
    /// Analyze a reconstructed timeline.
    pub fn from_timeline(tl: &FleetTimeline) -> CritPath {
        if tl.is_empty() {
            return CritPath::default();
        }
        let mut bottleneck = 0usize;
        let mut worst = f64::NEG_INFINITY;
        for (i, e) in tl.engines.iter().enumerate() {
            let end = lane_end(e);
            if end > worst {
                worst = end;
                bottleneck = i;
            }
        }
        let lane = &tl.engines[bottleneck];
        let length = (worst - tl.start_secs).max(0.0);
        let busy: f64 = lane.segments.iter().map(Segment::duration_secs).sum();
        let mut slack: Vec<JobSlack> = tl
            .engines
            .iter()
            .flat_map(|e| {
                let s = (worst - lane_end(e)).max(0.0);
                e.segments.iter().map(move |seg| JobSlack {
                    job: seg.job,
                    engine: seg.engine,
                    kind: seg.kind.clone(),
                    slack_secs: s,
                })
            })
            .collect();
        slack.sort_by(|a, b| a.job.cmp(&b.job).then(a.engine.cmp(&b.engine)));
        CritPath {
            bottleneck_engine: Some(bottleneck),
            length_secs: length,
            busy_secs: busy,
            idle_secs: (length - busy).max(0.0),
            path: lane.segments.clone(),
            slack,
        }
    }

    /// True when the timeline held no batch.
    pub fn is_empty(&self) -> bool {
        self.bottleneck_engine.is_none()
    }

    /// Largest slack across the fleet (0 for an empty or single-lane batch).
    pub fn slack_max_secs(&self) -> f64 {
        self.slack
            .iter()
            .map(|s| s.slack_secs)
            .fold(0.0, f64::max)
    }

    /// True when `engine` is the bottleneck lane — every segment on it is
    /// on the critical path (the Gantt highlight keys off this).
    pub fn is_critical_engine(&self, engine: usize) -> bool {
        self.bottleneck_engine == Some(engine)
    }

    /// Narrate the analysis as typed trace ops: one `fleet.critpath`
    /// summary plus one `fleet.critpath.job` per job on the path. Emitted
    /// post-hoc from the coordinating thread, like the segment narration
    /// it derives from, so content and order are `--threads`-invariant.
    pub fn emit(&self, tracer: &Tracer) {
        let Some(engine) = self.bottleneck_engine else {
            return;
        };
        tracer.op(
            "fleet.critpath",
            &[
                ("engine", Value::from(engine as u64)),
                ("jobs", Value::from(self.path.len() as u64)),
                ("length_secs", Value::F64(self.length_secs)),
                ("busy_secs", Value::F64(self.busy_secs)),
                ("idle_secs", Value::F64(self.idle_secs)),
                ("slack_max_secs", Value::F64(self.slack_max_secs())),
            ],
        );
        for s in &self.path {
            tracer.op(
                "fleet.critpath.job",
                &[
                    ("engine", Value::from(s.engine as u64)),
                    ("job", Value::from(s.job)),
                    ("kind", Value::from(s.kind.as_str())),
                    ("start_secs", Value::F64(s.start_secs)),
                    ("end_secs", Value::F64(s.end_secs)),
                ],
            );
        }
    }

    /// Human summary: the chain plus the slackiest lanes.
    pub fn render_text(&self) -> String {
        let Some(engine) = self.bottleneck_engine else {
            return "critical path: (no batch in trace)\n".to_string();
        };
        let mut out = format!(
            "critical path: engine {engine}, {} jobs, {:.3e} s (busy {:.3e} s, idle {:.3e} s)\n",
            self.path.len(),
            self.length_secs,
            self.busy_secs,
            self.idle_secs,
        );
        for s in &self.path {
            out.push_str(&format!(
                "  job {:>4} {:<14} [{:.3e}, {:.3e}] s\n",
                s.job,
                s.kind,
                s.start_secs,
                s.end_secs,
            ));
        }
        out.push_str(&format!("  slack max {:.3e} s\n", self.slack_max_secs()));
        out
    }

    /// Machine-readable analysis (bit-identical for any `--threads`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"tcqr.critpath.v1\"");
        match self.bottleneck_engine {
            Some(e) => out.push_str(&format!(",\"engine\":{e}")),
            None => out.push_str(",\"engine\":null"),
        }
        out.push_str(&format!(
            ",\"length_secs\":{},\"busy_secs\":{},\"idle_secs\":{},\"slack_max_secs\":{}",
            json_num(self.length_secs),
            json_num(self.busy_secs),
            json_num(self.idle_secs),
            json_num(self.slack_max_secs()),
        ));
        out.push_str(",\"path\":[");
        for (i, s) in self.path.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"job\":{},\"kind\":{},\"start_secs\":{},\"end_secs\":{}}}",
                s.job,
                json_str(&s.kind),
                json_num(s.start_secs),
                json_num(s.end_secs),
            ));
        }
        out.push_str("],\"slack\":[");
        for (i, s) in self.slack.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"job\":{},\"engine\":{},\"kind\":{},\"slack_secs\":{}}}",
                s.job,
                s.engine,
                json_str(&s.kind),
                json_num(s.slack_secs),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Bit-exact FNV-1a digest of the analysis.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.push_bytes(self.to_json().as_bytes());
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tcqr_trace::{Event, MemSink, Tracer};

    fn segs(spec: &[(usize, u64, f64, f64)]) -> FleetTimeline {
        let sink = Arc::new(MemSink::new());
        let t = Tracer::new(sink.clone());
        for &(engine, job, start, end) in spec {
            t.op(
                "engine.segment",
                &[
                    ("engine", Value::from(engine as u64)),
                    ("job", Value::from(job)),
                    ("kind", Value::from("rgsqrf")),
                    ("wait_secs", Value::F64(start)),
                    ("start_secs", Value::F64(start)),
                    ("end_secs", Value::F64(end)),
                    ("ok", Value::from(true)),
                ],
            );
        }
        let events: Vec<Event> = sink.snapshot();
        FleetTimeline::from_events(&events)
    }

    #[test]
    fn bottleneck_is_the_last_lane_to_finish() {
        // Engine 0: [0,2] + [2,3]; engine 1: [0,4]. Engine 1 ends last.
        let tl = segs(&[(0, 0, 0.0, 2.0), (1, 1, 0.0, 4.0), (0, 2, 2.0, 3.0)]);
        let cp = CritPath::from_timeline(&tl);
        assert_eq!(cp.bottleneck_engine, Some(1));
        assert!(cp.is_critical_engine(1));
        assert!(!cp.is_critical_engine(0));
        assert_eq!(cp.path.len(), 1);
        assert_eq!(cp.path[0].job, 1);
        assert_eq!(cp.length_secs, 4.0);
        assert_eq!(cp.busy_secs, 4.0);
        assert_eq!(cp.idle_secs, 0.0);
        // Engine 0's jobs each carry the lane's 1s slack; the critical
        // job has none.
        let by_job: Vec<f64> = cp.slack.iter().map(|s| s.slack_secs).collect();
        assert_eq!(by_job, vec![1.0, 0.0, 1.0]);
        assert_eq!(cp.slack_max_secs(), 1.0);
    }

    #[test]
    fn ties_break_toward_the_lowest_engine_index() {
        let tl = segs(&[(1, 0, 0.0, 2.0), (0, 1, 0.0, 2.0)]);
        let cp = CritPath::from_timeline(&tl);
        assert_eq!(cp.bottleneck_engine, Some(0));
    }

    #[test]
    fn empty_timeline_is_empty_analysis() {
        let cp = CritPath::from_timeline(&FleetTimeline::default());
        assert!(cp.is_empty());
        assert_eq!(cp.slack_max_secs(), 0.0);
        assert!(cp.to_json().contains("\"engine\":null"));
        // emit() on an empty analysis is a no-op.
        let sink = Arc::new(MemSink::new());
        cp.emit(&Tracer::new(sink.clone()));
        assert!(sink.snapshot().is_empty());
    }

    #[test]
    fn emit_narrates_summary_plus_path_jobs() {
        let tl = segs(&[(0, 0, 0.0, 2.0), (0, 1, 2.0, 3.0), (1, 2, 0.0, 1.0)]);
        let cp = CritPath::from_timeline(&tl);
        let sink = Arc::new(MemSink::new());
        cp.emit(&Tracer::new(sink.clone()));
        let events = sink.snapshot();
        assert_eq!(events[0].name, "fleet.critpath");
        assert_eq!(events[0].u64_field("engine"), Some(0));
        assert_eq!(events[0].u64_field("jobs"), Some(2));
        assert_eq!(events[0].f64_field("length_secs"), Some(3.0));
        assert_eq!(events[0].f64_field("slack_max_secs"), Some(2.0));
        let jobs: Vec<u64> = events[1..]
            .iter()
            .map(|e| {
                assert_eq!(e.name, "fleet.critpath.job");
                e.u64_field("job").unwrap()
            })
            .collect();
        assert_eq!(jobs, vec![0, 1]);
    }

    #[test]
    fn json_and_digest_are_stable() {
        let tl = segs(&[(0, 0, 0.0, 2.0), (1, 1, 0.0, 1.0)]);
        let cp = CritPath::from_timeline(&tl);
        assert_eq!(cp.to_json(), cp.to_json());
        assert_eq!(cp.digest(), CritPath::from_timeline(&tl).digest());
        assert!(cp.to_json().starts_with("{\"schema\":\"tcqr.critpath.v1\""));
        // A one-bit schedule change moves the digest.
        let tl2 = segs(&[(0, 0, 0.0, 2.0 + 1e-9), (1, 1, 0.0, 1.0)]);
        assert_ne!(cp.digest(), CritPath::from_timeline(&tl2).digest());
    }
}
