//! Declarative service-level objectives over the simulated clock.
//!
//! A spec is a small TOML subset (parsed here, no external crates) declaring
//! named objectives. [`evaluate`] replays a [`FleetTimeline`] and its source
//! trace against the spec and produces an [`SloReport`]: per-objective
//! health, breach/recovery transitions with burn-rate math on rolling
//! simulated-time windows, and a typed alert stream. All inputs are
//! deterministic reconstructions (see the `timeline` module docs), so the
//! alert stream and [`SloReport::alert_digest`] are bit-identical for any
//! `--threads` value.
//!
//! ## Spec format
//!
//! ```toml
//! [objective.queue-wait]
//! kind = "queue_wait"        # p-quantile bound on simulated queue wait
//! threshold_secs = 1.0e-6    # a job waiting longer than this is "bad"
//! target = 0.99              # fraction of jobs that must be under it
//! window_secs = 1.0e-6       # rolling window on the simulated clock
//! max_burn_rate = 1.0        # breach when bad-fraction / error-budget exceeds this
//!
//! [objective.balance]
//! kind = "efficiency"        # fleet busy / (engines * makespan)
//! min = 0.5
//!
//! [objective.no-escapes]
//! kind = "fault_escape"      # injected - detected, summed over the batch
//! max_escaped = 0
//!
//! [objective.residual]
//! kind = "residual"          # worst solver final_rel from span closes
//! solver = "any"             # or "cgls" / "lsqr"
//! max_final_rel = 1.0e-8
//!
//! [objective.uptime]
//! kind = "availability"      # served fraction of admitted service jobs
//! min = 0.999                # (admitted - lost - deadline_missed) / admitted
//! ```

use crate::timeline::{Digest, FleetTimeline};
use tcqr_trace::{Event, EventKind, Tracer, Value};

/// What a single objective measures and bounds.
#[derive(Clone, Debug, PartialEq)]
pub enum ObjectiveKind {
    /// Rolling-window bound on the fraction of jobs whose simulated queue
    /// wait exceeds `threshold_secs`. `target` is the good fraction (e.g.
    /// 0.99 for "p99 wait under threshold"); the error budget is
    /// `1 - target`, and the objective breaches when the bad fraction in
    /// the trailing `window_secs` burns the budget faster than
    /// `max_burn_rate`.
    QueueWait {
        threshold_secs: f64,
        target: f64,
        window_secs: f64,
        max_burn_rate: f64,
    },
    /// Fleet load-balance efficiency (`busy / (engines * makespan)`) must
    /// be at least `min` at batch end.
    Efficiency { min: f64 },
    /// Injected-but-undetected faults summed over the batch must not
    /// exceed `max_escaped`.
    FaultEscape { max_escaped: u64 },
    /// Worst `final_rel` reported by solver span closes (`cgls` / `lsqr`,
    /// or `"any"`) must stay at or below `max_final_rel`. Vacuously healthy
    /// when no matching solve ran.
    Residual { solver: String, max_final_rel: f64 },
    /// Served fraction of admitted service jobs, read from `serve.summary`
    /// events: `(admitted - lost - deadline_missed) / admitted` must be at
    /// least `min`. Jobs the fleet lost to engine deaths or cancelled at
    /// the deadline count against availability; admission-control
    /// rejections and shed low-priority intake do not (they were never
    /// admitted). Vacuously healthy when no service ran or nothing was
    /// admitted.
    Availability { min: f64 },
}

impl ObjectiveKind {
    /// Stable wire name used in trace events and metrics labels.
    pub fn as_str(&self) -> &'static str {
        match self {
            ObjectiveKind::QueueWait { .. } => "queue_wait",
            ObjectiveKind::Efficiency { .. } => "efficiency",
            ObjectiveKind::FaultEscape { .. } => "fault_escape",
            ObjectiveKind::Residual { .. } => "residual",
            ObjectiveKind::Availability { .. } => "availability",
        }
    }
}

/// A named objective from the spec, in declaration order.
#[derive(Clone, Debug, PartialEq)]
pub struct Objective {
    /// Name from the `[objective.NAME]` section header.
    pub name: String,
    /// The measurement and its bound.
    pub kind: ObjectiveKind,
}

/// A parsed SLO spec: objectives in declaration order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SloSpec {
    /// Declared objectives.
    pub objectives: Vec<Objective>,
}

impl SloSpec {
    /// Parse the TOML subset documented in the module header. Errors carry
    /// 1-based line numbers; unknown keys and kinds are errors, not
    /// warnings, so a typo cannot silently weaken an objective.
    pub fn parse(text: &str) -> Result<SloSpec, String> {
        // Parsed sections: (header name, [(line, key, value)]).
        type Section = (String, Vec<(usize, String, RawValue)>);
        let mut sections: Vec<Section> = Vec::new();
        for (i, raw_line) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(inner) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = inner
                    .strip_prefix("objective.")
                    .ok_or_else(|| {
                        format!("line {lineno}: expected [objective.NAME], got [{inner}]")
                    })?
                    .trim();
                if name.is_empty() {
                    return Err(format!("line {lineno}: empty objective name"));
                }
                if sections.iter().any(|(n, _)| n == name) {
                    return Err(format!("line {lineno}: duplicate objective {name:?}"));
                }
                sections.push((name.to_string(), Vec::new()));
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value`, got {line:?}"))?;
            let section = sections
                .last_mut()
                .ok_or_else(|| format!("line {lineno}: key before any [objective.NAME] section"))?;
            let value = RawValue::parse(value.trim())
                .map_err(|e| format!("line {lineno}: {e}"))?;
            section.1.push((lineno, key.trim().to_string(), value));
        }
        let mut objectives = Vec::with_capacity(sections.len());
        for (name, keys) in sections {
            objectives.push(Objective {
                kind: build_objective(&name, &keys)?,
                name,
            });
        }
        if objectives.is_empty() {
            return Err("spec declares no [objective.NAME] sections".into());
        }
        Ok(SloSpec { objectives })
    }
}

/// A scalar from the spec text before it is typed against an objective kind.
#[derive(Clone, Debug, PartialEq)]
enum RawValue {
    Num(f64),
    Str(String),
}

impl RawValue {
    fn parse(s: &str) -> Result<RawValue, String> {
        if let Some(inner) = s.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
            if inner.contains('"') {
                return Err(format!("malformed string literal {s:?}"));
            }
            return Ok(RawValue::Str(inner.to_string()));
        }
        s.parse::<f64>()
            .map(RawValue::Num)
            .map_err(|_| format!("expected a number or \"string\", got {s:?}"))
    }

    fn num(&self, key: &str) -> Result<f64, String> {
        match self {
            RawValue::Num(v) => Ok(*v),
            RawValue::Str(_) => Err(format!("{key} must be a number")),
        }
    }
}

/// Strip a trailing `# comment`, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Type a section's key/value pairs against its declared `kind`.
fn build_objective(
    name: &str,
    keys: &[(usize, String, RawValue)],
) -> Result<ObjectiveKind, String> {
    let find = |key: &str| keys.iter().find(|(_, k, _)| k == key).map(|(_, _, v)| v);
    let require = |key: &str| {
        find(key).ok_or_else(|| format!("objective {name:?}: missing required key {key:?}"))
    };
    let kind = match require("kind")? {
        RawValue::Str(s) => s.as_str(),
        RawValue::Num(_) => return Err(format!("objective {name:?}: kind must be a string")),
    };
    let known: &[&str] = match kind {
        "queue_wait" => &["kind", "threshold_secs", "target", "window_secs", "max_burn_rate"],
        "efficiency" => &["kind", "min"],
        "fault_escape" => &["kind", "max_escaped"],
        "residual" => &["kind", "solver", "max_final_rel"],
        "availability" => &["kind", "min"],
        other => {
            return Err(format!(
                "objective {name:?}: unknown kind {other:?} (expected queue_wait, \
                 efficiency, fault_escape, residual, or availability)"
            ))
        }
    };
    for (lineno, key, _) in keys {
        if !known.contains(&key.as_str()) {
            return Err(format!(
                "line {lineno}: objective {name:?} (kind {kind:?}) does not accept key {key:?}"
            ));
        }
    }
    Ok(match kind {
        "queue_wait" => {
            let threshold_secs = require("threshold_secs")?.num("threshold_secs")?;
            let target = require("target")?.num("target")?;
            let window_secs = require("window_secs")?.num("window_secs")?;
            let max_burn_rate = require("max_burn_rate")?.num("max_burn_rate")?;
            if !(0.0..=1.0).contains(&target) {
                return Err(format!("objective {name:?}: target must be in [0, 1]"));
            }
            if window_secs <= 0.0 {
                return Err(format!("objective {name:?}: window_secs must be positive"));
            }
            ObjectiveKind::QueueWait {
                threshold_secs,
                target,
                window_secs,
                max_burn_rate,
            }
        }
        "efficiency" => ObjectiveKind::Efficiency {
            min: require("min")?.num("min")?,
        },
        "fault_escape" => {
            let raw = require("max_escaped")?.num("max_escaped")?;
            if raw < 0.0 || raw.fract() != 0.0 {
                return Err(format!(
                    "objective {name:?}: max_escaped must be a non-negative integer"
                ));
            }
            ObjectiveKind::FaultEscape {
                max_escaped: raw as u64,
            }
        }
        "availability" => {
            let min = require("min")?.num("min")?;
            if !(0.0..=1.0).contains(&min) {
                return Err(format!("objective {name:?}: min must be in [0, 1]"));
            }
            ObjectiveKind::Availability { min }
        }
        _ => {
            let solver = match find("solver") {
                Some(RawValue::Str(s)) => s.clone(),
                Some(RawValue::Num(_)) => {
                    return Err(format!("objective {name:?}: solver must be a string"))
                }
                None => "any".to_string(),
            };
            ObjectiveKind::Residual {
                solver,
                max_final_rel: require("max_final_rel")?.num("max_final_rel")?,
            }
        }
    })
}

/// One health flip of an objective on the simulated clock.
#[derive(Clone, Debug, PartialEq)]
pub struct Transition {
    /// Simulated time of the flip.
    pub t_secs: f64,
    /// `true` = entered breach, `false` = recovered.
    pub breached: bool,
    /// The measured value that caused the flip (burn rate, efficiency, ...).
    pub value: f64,
}

/// The evaluated state of one objective.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectiveOutcome {
    /// Objective name from the spec.
    pub name: String,
    /// Wire name of the kind (`"queue_wait"`, ...).
    pub kind: &'static str,
    /// Final health at batch end.
    pub healthy: bool,
    /// Number of breach transitions over the batch.
    pub breaches: u64,
    /// Number of recovery transitions over the batch.
    pub recovered: u64,
    /// Final measured value (worst burn rate for windows, the scalar for
    /// end-of-batch objectives). 0.0 when nothing was measurable.
    pub measured: f64,
    /// The spec's bound, for dashboards and alerts.
    pub limit: f64,
    /// Health flips in simulated-time order.
    pub transitions: Vec<Transition>,
}

/// The full evaluation: one [`ObjectiveOutcome`] per spec objective, in
/// declaration order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SloReport {
    /// Outcomes in spec order.
    pub outcomes: Vec<ObjectiveOutcome>,
}

impl SloReport {
    /// Total breach transitions across objectives.
    pub fn breaches(&self) -> u64 {
        self.outcomes.iter().map(|o| o.breaches).sum()
    }

    /// True when every objective ends the batch healthy.
    pub fn healthy(&self) -> bool {
        self.outcomes.iter().all(|o| o.healthy)
    }

    /// FNV-1a digest of the full alert stream (names, kinds, transition
    /// times/values, final states). The `--threads` invariance gate
    /// compares this digest between worker counts.
    pub fn alert_digest(&self) -> u64 {
        let mut d = Digest::new();
        d.push_u64(self.outcomes.len() as u64);
        for o in &self.outcomes {
            d.push_bytes(o.name.as_bytes());
            d.push_bytes(o.kind.as_bytes());
            d.push_u64(o.healthy as u64);
            d.push_u64(o.breaches);
            d.push_u64(o.recovered);
            d.push_f64(o.measured);
            d.push_f64(o.limit);
            d.push_u64(o.transitions.len() as u64);
            for t in &o.transitions {
                d.push_f64(t.t_secs);
                d.push_u64(t.breached as u64);
                d.push_f64(t.value);
            }
        }
        d.finish()
    }

    /// Narrate the evaluation into the trace: each transition becomes a
    /// typed `slo.breach` warn or `slo.recovered` op, then every objective
    /// emits one `slo.objective` summary op. The Prometheus bridge turns
    /// these into the `tcqr_slo_*` series, so a spec with K objectives and
    /// no breaches adds exactly K events and zero warnings.
    pub fn emit(&self, tracer: &Tracer) {
        for o in &self.outcomes {
            for t in &o.transitions {
                let fields = [
                    ("objective", Value::from(o.name.as_str())),
                    ("kind", Value::from(o.kind)),
                    ("t_secs", Value::F64(t.t_secs)),
                    ("value", Value::F64(t.value)),
                    ("limit", Value::F64(o.limit)),
                ];
                if t.breached {
                    tracer.warn("slo.breach", &fields);
                } else {
                    tracer.op("slo.recovered", &fields);
                }
            }
            tracer.op(
                "slo.objective",
                &[
                    ("objective", Value::from(o.name.as_str())),
                    ("kind", Value::from(o.kind)),
                    ("healthy", Value::from(o.healthy)),
                    ("breaches", Value::from(o.breaches)),
                    ("recovered", Value::from(o.recovered)),
                    ("measured", Value::F64(o.measured)),
                    ("limit", Value::F64(o.limit)),
                ],
            );
        }
    }
}

/// Evaluate a spec against a reconstructed timeline and the trace stream it
/// came from (`events` supplies solver span closes for residual
/// objectives). Deterministic: completion samples are sorted by
/// `(end_secs, job)` and residuals reduce through an order-independent max.
pub fn evaluate(spec: &SloSpec, timeline: &FleetTimeline, events: &[Event]) -> SloReport {
    let outcomes = spec
        .objectives
        .iter()
        .map(|o| match &o.kind {
            ObjectiveKind::QueueWait {
                threshold_secs,
                target,
                window_secs,
                max_burn_rate,
            } => eval_queue_wait(
                o,
                timeline,
                *threshold_secs,
                *target,
                *window_secs,
                *max_burn_rate,
            ),
            ObjectiveKind::Efficiency { min } => eval_efficiency(o, timeline, *min),
            ObjectiveKind::FaultEscape { max_escaped } => {
                eval_fault_escape(o, timeline, *max_escaped)
            }
            ObjectiveKind::Residual {
                solver,
                max_final_rel,
            } => eval_residual(o, events, solver, *max_final_rel),
            ObjectiveKind::Availability { min } => eval_availability(o, events, *min),
        })
        .collect();
    SloReport { outcomes }
}

/// Job-completion samples `(end_secs, job, wait_secs)` sorted by
/// `(end_secs, job)` — the deterministic replay order for rolling windows.
fn completion_samples(timeline: &FleetTimeline) -> Vec<(f64, u64, f64)> {
    let mut samples: Vec<(f64, u64, f64)> = timeline
        .engines
        .iter()
        .flat_map(|e| e.segments.iter().map(|s| (s.end_secs, s.job, s.wait_secs)))
        .collect();
    samples.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    samples
}

/// Incremental burn-rate tracker over a rolling simulated-time window —
/// the `queue_wait` objective's math, factored out so a live consumer (the
/// `tcqr-serve` admission controller) and the post-hoc [`evaluate`] replay
/// share one implementation and therefore one definition of "breached".
///
/// Feed completions in nondecreasing simulated-time order via
/// [`BurnWindow::record`]; at each sample the window is `(t - window, t]`,
/// the bad fraction is the share of windowed completions whose wait
/// exceeded the threshold, and the burn rate is `bad_frac / (1 - target)`
/// (infinite when the budget is zero and a bad sample lands). The breach
/// state flips exactly where the batch replay's transitions fire.
#[derive(Clone, Debug)]
pub struct BurnWindow {
    threshold_secs: f64,
    /// Error budget `1 - target`.
    budget: f64,
    window_secs: f64,
    max_burn_rate: f64,
    /// Windowed completions `(t_secs, bad)`, oldest first.
    samples: std::collections::VecDeque<(f64, bool)>,
    /// Bad completions currently in the window.
    bad: u64,
    breached: bool,
    worst_burn: f64,
}

impl BurnWindow {
    /// Tracker for a `queue_wait` objective with the given spec knobs.
    /// `target` is the good fraction (clamped to `[0, 1]`); `window_secs`
    /// must be positive.
    pub fn new(threshold_secs: f64, target: f64, window_secs: f64, max_burn_rate: f64) -> Self {
        assert!(window_secs > 0.0, "window_secs must be positive");
        BurnWindow {
            threshold_secs,
            budget: 1.0 - target.clamp(0.0, 1.0),
            window_secs,
            max_burn_rate,
            samples: std::collections::VecDeque::new(),
            bad: 0,
            breached: false,
            worst_burn: 0.0,
        }
    }

    /// Tracker from a spec objective; `None` for non-`queue_wait` kinds.
    pub fn from_objective(kind: &ObjectiveKind) -> Option<Self> {
        match kind {
            ObjectiveKind::QueueWait {
                threshold_secs,
                target,
                window_secs,
                max_burn_rate,
            } => Some(BurnWindow::new(
                *threshold_secs,
                *target,
                *window_secs,
                *max_burn_rate,
            )),
            _ => None,
        }
    }

    /// The spec's breach bound (`max_burn_rate`).
    pub fn limit(&self) -> f64 {
        self.max_burn_rate
    }

    /// The spec's bad-wait threshold, in simulated seconds.
    pub fn threshold_secs(&self) -> f64 {
        self.threshold_secs
    }

    /// The rolling window length, in simulated seconds.
    pub fn window_secs(&self) -> f64 {
        self.window_secs
    }

    /// Burn rate of the current window contents: `bad_frac / budget`,
    /// infinite when the budget is zero and a bad sample is in the window,
    /// 0.0 for an empty window.
    pub fn burn_rate(&self) -> f64 {
        let total = self.samples.len() as u64;
        if total == 0 {
            return 0.0;
        }
        let bad_frac = self.bad as f64 / total as f64;
        if self.budget > 0.0 {
            bad_frac / self.budget
        } else if self.bad > 0 {
            // Budget exhausted in the spec itself (target = 1.0): any bad
            // sample is an immediate, infinitely fast burn.
            f64::INFINITY
        } else {
            0.0
        }
    }

    /// Burn rate the window *would* report if `extra_total` more
    /// completions landed right now, `extra_bad` of them over threshold —
    /// the admission controller's look-ahead for queued-but-unfinished
    /// jobs. Nothing is evicted or recorded.
    pub fn hypothetical_burn(&self, extra_bad: u64, extra_total: u64) -> f64 {
        let total = self.samples.len() as u64 + extra_total;
        if total == 0 {
            return 0.0;
        }
        let bad = self.bad + extra_bad.min(extra_total);
        let bad_frac = bad as f64 / total as f64;
        if self.budget > 0.0 {
            bad_frac / self.budget
        } else if bad > 0 {
            f64::INFINITY
        } else {
            0.0
        }
    }

    /// Evict completions that have slid out of the window ending at
    /// `t_secs` (i.e. with completion time `<= t_secs - window`). Called
    /// automatically by [`BurnWindow::record`]; call directly to let the
    /// burn rate decay while no completions arrive.
    pub fn advance_to(&mut self, t_secs: f64) {
        let lo = t_secs - self.window_secs;
        while let Some(&(t2, bad)) = self.samples.front() {
            if t2 > lo {
                break;
            }
            self.samples.pop_front();
            if bad {
                self.bad -= 1;
            }
        }
    }

    /// Record a completion at simulated time `t_secs` whose queue wait was
    /// `wait_secs`, and return the burn rate of the updated window. Times
    /// must be fed in nondecreasing order (the deterministic replay order).
    pub fn record(&mut self, t_secs: f64, wait_secs: f64) -> f64 {
        self.advance_to(t_secs);
        let bad = wait_secs > self.threshold_secs;
        self.samples.push_back((t_secs, bad));
        if bad {
            self.bad += 1;
        }
        let burn = self.burn_rate();
        self.worst_burn = self.worst_burn.max(burn);
        self.breached = burn > self.max_burn_rate;
        burn
    }

    /// Whether the most recent burn rate exceeded `max_burn_rate`.
    pub fn breached(&self) -> bool {
        self.breached
    }

    /// Worst burn rate observed across all recorded samples.
    pub fn worst_burn(&self) -> f64 {
        self.worst_burn
    }
}

fn eval_queue_wait(
    o: &Objective,
    timeline: &FleetTimeline,
    threshold_secs: f64,
    target: f64,
    window_secs: f64,
    max_burn_rate: f64,
) -> ObjectiveOutcome {
    let samples = completion_samples(timeline);
    let mut window = BurnWindow::new(threshold_secs, target, window_secs, max_burn_rate);
    let mut transitions = Vec::new();
    let mut breached = false;
    // Replay completions; at each sample, the window is (t - window, t].
    for &(t, _job, wait) in &samples {
        let burn = window.record(t, wait);
        if window.breached() != breached {
            breached = window.breached();
            transitions.push(Transition {
                t_secs: t,
                breached,
                value: burn,
            });
        }
    }
    finish_outcome(o, !breached, window.worst_burn(), max_burn_rate, transitions)
}

fn eval_efficiency(o: &Objective, timeline: &FleetTimeline, min: f64) -> ObjectiveOutcome {
    match timeline.efficiency() {
        Some(eff) => {
            let healthy = eff >= min;
            let transitions = if healthy {
                Vec::new()
            } else {
                vec![Transition {
                    t_secs: timeline.end_secs,
                    breached: true,
                    value: eff,
                }]
            };
            finish_outcome(o, healthy, eff, min, transitions)
        }
        // An empty batch did not miss its balance target; report healthy
        // with a zero measurement rather than NaN.
        None => finish_outcome(o, true, 0.0, min, Vec::new()),
    }
}

fn eval_fault_escape(o: &Objective, timeline: &FleetTimeline, max_escaped: u64) -> ObjectiveOutcome {
    let (injected, detected) = timeline.fault_totals();
    let escaped = injected.saturating_sub(detected);
    let healthy = escaped <= max_escaped;
    let transitions = if healthy {
        Vec::new()
    } else {
        vec![Transition {
            t_secs: timeline.end_secs,
            breached: true,
            value: escaped as f64,
        }]
    };
    finish_outcome(o, healthy, escaped as f64, max_escaped as f64, transitions)
}

fn eval_residual(
    o: &Objective,
    events: &[Event],
    solver: &str,
    max_final_rel: f64,
) -> ObjectiveOutcome {
    // Worst final_rel over matching solver span closes. A max over f64 is
    // order-independent, so the nondeterministic mid-run event order from
    // the rayon lanes cannot leak into the verdict.
    let mut worst: Option<f64> = None;
    let mut saw_nonfinite = false;
    for ev in events {
        if ev.kind != EventKind::SpanClose {
            continue;
        }
        let is_solver = matches!(ev.name.as_str(), "cgls" | "lsqr");
        if !is_solver || (solver != "any" && ev.name != solver) {
            continue;
        }
        if let Some(rel) = ev.f64_field("final_rel") {
            if rel.is_finite() {
                worst = Some(worst.map_or(rel, |w: f64| w.max(rel)));
            } else {
                saw_nonfinite = true;
            }
        }
    }
    match (worst, saw_nonfinite) {
        // No matching solves: vacuously healthy.
        (None, false) => finish_outcome(o, true, 0.0, max_final_rel, Vec::new()),
        (w, nonfinite) => {
            let measured = if nonfinite { f64::INFINITY } else { w.unwrap_or(0.0) };
            let healthy = !nonfinite && measured <= max_final_rel;
            let transitions = if healthy {
                Vec::new()
            } else {
                vec![Transition {
                    t_secs: 0.0,
                    breached: true,
                    value: measured,
                }]
            };
            finish_outcome(o, healthy, measured, max_final_rel, transitions)
        }
    }
}

fn eval_availability(o: &Objective, events: &[Event], min: f64) -> ObjectiveOutcome {
    // Sum across serve.summary ops (one per drained service instance);
    // sums commute, so event order cannot leak into the verdict.
    let mut admitted = 0u64;
    let mut unserved = 0u64;
    for ev in events {
        if ev.kind != EventKind::Op || ev.name != "serve.summary" {
            continue;
        }
        admitted += ev.u64_field("admitted").unwrap_or(0);
        unserved += ev.u64_field("lost").unwrap_or(0);
        unserved += ev.u64_field("deadline_missed").unwrap_or(0);
    }
    if admitted == 0 {
        // No service ran (or nothing was admitted): vacuously available.
        return finish_outcome(o, true, 1.0, min, Vec::new());
    }
    let served = admitted.saturating_sub(unserved);
    let availability = served as f64 / admitted as f64;
    let healthy = availability >= min;
    let transitions = if healthy {
        Vec::new()
    } else {
        vec![Transition {
            t_secs: 0.0,
            breached: true,
            value: availability,
        }]
    };
    finish_outcome(o, healthy, availability, min, transitions)
}

fn finish_outcome(
    o: &Objective,
    healthy: bool,
    measured: f64,
    limit: f64,
    transitions: Vec<Transition>,
) -> ObjectiveOutcome {
    let breaches = transitions.iter().filter(|t| t.breached).count() as u64;
    let recovered = transitions.iter().filter(|t| !t.breached).count() as u64;
    ObjectiveOutcome {
        name: o.name.clone(),
        kind: o.kind.as_str(),
        healthy,
        breaches,
        recovered,
        measured,
        limit,
        transitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tcqr_trace::{MemSink, Tracer};

    const SPEC: &str = r#"
# fleet objectives for the quick batch
[objective.queue-wait]
kind = "queue_wait"
threshold_secs = 1.5   # simulated seconds
target = 0.5
window_secs = 10.0
max_burn_rate = 1.0

[objective.balance]
kind = "efficiency"
min = 0.5

[objective.no-escapes]
kind = "fault_escape"
max_escaped = 0

[objective.residual]
kind = "residual"
solver = "any"
max_final_rel = 1.0e-8
"#;

    fn timeline(waits: &[(usize, u64, f64, f64, f64)]) -> FleetTimeline {
        // (engine, job, wait, start, end) tuples -> timeline via the same
        // event path production uses: one engine.segment per job plus the
        // fleet.engine rollup (busy/clock) each lane would report.
        let sink = Arc::new(MemSink::new());
        let t = Tracer::new(sink.clone());
        let mut rollup: Vec<(usize, f64, f64)> = Vec::new(); // (jobs, busy, clock)
        for &(engine, job, wait, start, end) in waits {
            t.op(
                "engine.segment",
                &[
                    ("engine", Value::from(engine)),
                    ("job", Value::from(job)),
                    ("kind", Value::from("rgsqrf")),
                    ("wait_secs", Value::F64(wait)),
                    ("start_secs", Value::F64(start)),
                    ("end_secs", Value::F64(end)),
                    ("ok", Value::from(true)),
                    ("fault_injected", Value::from(0u64)),
                    ("fault_detected", Value::from(0u64)),
                ],
            );
            if rollup.len() <= engine {
                rollup.resize(engine + 1, (0, 0.0, 0.0));
            }
            rollup[engine].0 += 1;
            rollup[engine].1 += end - start;
            rollup[engine].2 = rollup[engine].2.max(end);
        }
        for (engine, &(jobs, busy, clock)) in rollup.iter().enumerate() {
            t.op(
                "fleet.engine",
                &[
                    ("engine", Value::from(engine)),
                    ("jobs", Value::from(jobs)),
                    ("busy_secs", Value::F64(busy)),
                    ("clock_secs", Value::F64(clock)),
                ],
            );
        }
        FleetTimeline::from_events(&sink.snapshot())
    }

    #[test]
    fn parses_the_documented_spec() {
        let spec = SloSpec::parse(SPEC).unwrap();
        assert_eq!(spec.objectives.len(), 4);
        assert_eq!(spec.objectives[0].name, "queue-wait");
        assert_eq!(spec.objectives[0].kind.as_str(), "queue_wait");
        assert_eq!(
            spec.objectives[3].kind,
            ObjectiveKind::Residual {
                solver: "any".into(),
                max_final_rel: 1.0e-8,
            }
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = SloSpec::parse("[objective.x]\nbogus = 1\nkind = \"efficiency\"\nmin = 0.5")
            .unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("bogus"), "{err}");
        let err = SloSpec::parse("[objective.x]\nkind = \"nope\"").unwrap_err();
        assert!(err.contains("unknown kind"), "{err}");
        let err = SloSpec::parse("min = 0.5").unwrap_err();
        assert!(err.contains("before any"), "{err}");
        let err = SloSpec::parse("# only comments\n").unwrap_err();
        assert!(err.contains("no [objective.NAME]"), "{err}");
        let err = SloSpec::parse("[objective.x]\nkind = \"efficiency\"\nmin = oops").unwrap_err();
        assert!(err.contains("line 3"), "{err}");
    }

    #[test]
    fn healthy_batch_passes_every_objective() {
        let spec = SloSpec::parse(SPEC).unwrap();
        let tl = timeline(&[
            (0, 0, 0.0, 0.0, 1.0),
            (1, 1, 0.0, 0.0, 1.0),
            (0, 2, 1.0, 1.0, 2.0),
        ]);
        let report = evaluate(&spec, &tl, &[]);
        assert!(report.healthy());
        assert_eq!(report.breaches(), 0);
        assert_eq!(report.outcomes.len(), 4);
        for o in &report.outcomes {
            assert!(o.transitions.is_empty(), "{}", o.name);
        }
    }

    #[test]
    fn burn_rate_breaches_and_recovers_on_the_window() {
        // target 0.5 -> budget 0.5; breach when bad fraction > 0.5 in the
        // trailing window. Three early jobs wait 10 (bad), then a stream of
        // instant jobs outside the first window pulls the bad fraction to 0.
        let spec = SloSpec::parse(
            "[objective.w]\nkind = \"queue_wait\"\nthreshold_secs = 1.0\n\
             target = 0.5\nwindow_secs = 5.0\nmax_burn_rate = 1.0",
        )
        .unwrap();
        let tl = timeline(&[
            (0, 0, 10.0, 10.0, 11.0),
            (0, 1, 10.0, 11.0, 12.0),
            (1, 2, 0.0, 0.0, 1.0),
            (1, 3, 0.0, 20.0, 21.0),
            (1, 4, 0.0, 21.0, 22.0),
            (1, 5, 0.0, 22.0, 23.0),
        ]);
        let report = evaluate(&spec, &tl, &[]);
        let o = &report.outcomes[0];
        // Breached at t=11 (window holds only the bad job), recovered once
        // the window slides past the bad completions.
        assert_eq!(o.breaches, 1);
        assert_eq!(o.recovered, 1);
        assert!(o.healthy);
        assert_eq!(o.transitions.len(), 2);
        assert!(o.transitions[0].breached);
        assert_eq!(o.transitions[0].t_secs, 11.0);
        assert!(!o.transitions[1].breached);
        assert!(o.measured > 1.0);
    }

    #[test]
    fn exhausted_budget_means_any_bad_sample_breaches() {
        let spec = SloSpec::parse(
            "[objective.w]\nkind = \"queue_wait\"\nthreshold_secs = 1.0\n\
             target = 1.0\nwindow_secs = 100.0\nmax_burn_rate = 1000.0",
        )
        .unwrap();
        let tl = timeline(&[(0, 0, 2.0, 2.0, 3.0)]);
        let report = evaluate(&spec, &tl, &[]);
        assert!(!report.healthy());
        assert_eq!(report.outcomes[0].measured, f64::INFINITY);
    }

    #[test]
    fn efficiency_and_fault_escape_fire_at_batch_end() {
        let spec = SloSpec::parse(
            "[objective.e]\nkind = \"efficiency\"\nmin = 2.0\n\
             [objective.f]\nkind = \"fault_escape\"\nmax_escaped = 0",
        )
        .unwrap();
        let tl = timeline(&[(0, 0, 0.0, 0.0, 1.0)]);
        let report = evaluate(&spec, &tl, &[]);
        let eff = &report.outcomes[0];
        assert!(!eff.healthy, "min = 2.0 is impossible (efficiency <= 1)");
        assert_eq!(eff.breaches, 1);
        assert_eq!(eff.transitions[0].t_secs, tl.end_secs);
        assert!(report.outcomes[1].healthy);
        // Empty batch: efficiency is vacuously healthy, never NaN.
        let empty = evaluate(&spec, &FleetTimeline::default(), &[]);
        assert!(empty.outcomes[0].healthy);
        assert_eq!(empty.outcomes[0].measured, 0.0);
    }

    #[test]
    fn residual_objective_reads_solver_span_closes() {
        let spec = SloSpec::parse(
            "[objective.r]\nkind = \"residual\"\nsolver = \"cgls\"\nmax_final_rel = 1.0e-8",
        )
        .unwrap();
        let sink = Arc::new(MemSink::new());
        let t = Tracer::new(sink.clone());
        let span = t.span("cgls", &[]);
        span.close_with(&[("final_rel", Value::F64(1.0e-10))]);
        let span = t.span("lsqr", &[]);
        span.close_with(&[("final_rel", Value::F64(1.0))]); // filtered out
        let events = sink.snapshot();
        let report = evaluate(&spec, &FleetTimeline::default(), &events);
        assert!(report.healthy());
        assert_eq!(report.outcomes[0].measured, 1.0e-10);
        // "any" picks up the bad lsqr solve.
        let spec = SloSpec::parse(
            "[objective.r]\nkind = \"residual\"\nsolver = \"any\"\nmax_final_rel = 1.0e-8",
        )
        .unwrap();
        let report = evaluate(&spec, &FleetTimeline::default(), &events);
        assert!(!report.healthy());
        assert_eq!(report.outcomes[0].measured, 1.0);
        // No matching solves at all: vacuously healthy.
        let report = evaluate(&spec, &FleetTimeline::default(), &[]);
        assert!(report.healthy());
    }

    #[test]
    fn availability_objective_reads_serve_summaries() {
        let spec = SloSpec::parse(
            "[objective.uptime]\nkind = \"availability\"\nmin = 0.9",
        )
        .unwrap();
        assert_eq!(
            spec.objectives[0].kind,
            ObjectiveKind::Availability { min: 0.9 }
        );
        let summary = |admitted: u64, lost: u64, missed: u64| {
            let sink = Arc::new(MemSink::new());
            let t = Tracer::new(sink.clone());
            t.op(
                "serve.summary",
                &[
                    ("admitted", Value::from(admitted)),
                    ("lost", Value::from(lost)),
                    ("deadline_missed", Value::from(missed)),
                ],
            );
            sink.snapshot()
        };
        // 19 of 20 admitted jobs served: 0.95 >= 0.9.
        let report = evaluate(&spec, &FleetTimeline::default(), &summary(20, 1, 0));
        assert!(report.healthy());
        assert_eq!(report.outcomes[0].measured, 0.95);
        assert_eq!(report.outcomes[0].kind, "availability");
        // Losses and deadline cancellations both burn availability.
        let report = evaluate(&spec, &FleetTimeline::default(), &summary(20, 2, 1));
        assert!(!report.healthy());
        assert_eq!(report.outcomes[0].measured, 0.85);
        assert_eq!(report.outcomes[0].breaches, 1);
        // No service ran, or nothing admitted: vacuously available.
        let report = evaluate(&spec, &FleetTimeline::default(), &[]);
        assert!(report.healthy());
        assert_eq!(report.outcomes[0].measured, 1.0);
        let report = evaluate(&spec, &FleetTimeline::default(), &summary(0, 0, 0));
        assert!(report.healthy());
        // min outside [0, 1] is a spec error.
        let err = SloSpec::parse("[objective.u]\nkind = \"availability\"\nmin = 1.5")
            .unwrap_err();
        assert!(err.contains("[0, 1]"), "{err}");
    }

    #[test]
    fn burn_window_matches_the_replay_evaluation() {
        // The incremental window and the post-hoc replay are one
        // implementation; pin it with an explicit side-by-side run over a
        // stream that breaches and recovers.
        let waits = [
            (0usize, 0u64, 10.0, 10.0, 11.0),
            (0, 1, 10.0, 11.0, 12.0),
            (1, 2, 0.0, 0.0, 1.0),
            (1, 3, 0.0, 20.0, 21.0),
            (1, 4, 0.0, 21.0, 22.0),
            (1, 5, 0.0, 22.0, 23.0),
        ];
        let spec = SloSpec::parse(
            "[objective.w]\nkind = \"queue_wait\"\nthreshold_secs = 1.0\n\
             target = 0.5\nwindow_secs = 5.0\nmax_burn_rate = 1.0",
        )
        .unwrap();
        let tl = timeline(&waits);
        let report = evaluate(&spec, &tl, &[]);
        let o = &report.outcomes[0];

        let mut w = BurnWindow::from_objective(&spec.objectives[0].kind).unwrap();
        assert_eq!(w.limit(), 1.0);
        let mut flips = Vec::new();
        let mut breached = false;
        let mut samples: Vec<(f64, u64, f64)> =
            waits.iter().map(|&(_, j, wait, _, end)| (end, j, wait)).collect();
        samples.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        for &(t, _, wait) in &samples {
            let burn = w.record(t, wait);
            if w.breached() != breached {
                breached = w.breached();
                flips.push((t, breached, burn));
            }
        }
        let expected: Vec<(f64, bool, f64)> = o
            .transitions
            .iter()
            .map(|t| (t.t_secs, t.breached, t.value))
            .collect();
        assert_eq!(flips, expected);
        assert_eq!(w.worst_burn(), o.measured);
        assert!(!w.breached());
    }

    #[test]
    fn burn_window_decays_and_projects() {
        let mut w = BurnWindow::new(1.0, 0.5, 5.0, 1.0);
        // One bad completion: bad_frac 1.0 / budget 0.5 = burn 2.0.
        assert_eq!(w.record(10.0, 3.0), 2.0);
        assert!(w.breached());
        // A good completion in the same window halves the bad fraction.
        assert_eq!(w.record(11.0, 0.0), 1.0);
        assert!(!w.breached(), "burn == max is not a breach");
        // Look-ahead: two more landing now, one bad, would push 2/4 over.
        assert_eq!(w.hypothetical_burn(1, 2), 1.0);
        assert_eq!(w.hypothetical_burn(2, 2), 1.5);
        // Advancing past the window empties it; burn decays to zero.
        w.advance_to(20.0);
        assert_eq!(w.burn_rate(), 0.0);
        assert_eq!(w.worst_burn(), 2.0, "worst is sticky");
        // Zero budget: any bad sample is an infinite burn.
        let mut z = BurnWindow::new(1.0, 1.0, 5.0, 1000.0);
        assert_eq!(z.record(0.0, 0.5), 0.0);
        assert_eq!(z.record(0.1, 2.0), f64::INFINITY);
        assert_eq!(z.hypothetical_burn(0, 1), f64::INFINITY);
    }

    #[test]
    fn emit_produces_the_typed_alert_stream() {
        let spec = SloSpec::parse(SPEC).unwrap();
        let tl = timeline(&[(0, 0, 0.0, 0.0, 1.0)]);
        let report = evaluate(&spec, &tl, &[]);
        let sink = Arc::new(MemSink::new());
        report.emit(&Tracer::new(sink.clone()));
        let events = sink.snapshot();
        // Healthy pass: exactly one slo.objective per objective, no warns.
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| e.name == "slo.objective"));
        assert!(events.iter().all(|e| e.kind == EventKind::Op));
        assert_eq!(events[0].str_field("objective"), Some("queue-wait"));
        assert_eq!(events[0].bool_field("healthy"), Some(true));
        // A breach emits a warn before the summary.
        let bad = SloSpec::parse("[objective.e]\nkind = \"efficiency\"\nmin = 2.0").unwrap();
        let report = evaluate(&bad, &tl, &[]);
        let sink = Arc::new(MemSink::new());
        report.emit(&Tracer::new(sink.clone()));
        let events = sink.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "slo.breach");
        assert_eq!(events[0].kind, EventKind::Warn);
        assert_eq!(events[1].name, "slo.objective");
        assert_eq!(events[1].bool_field("healthy"), Some(false));
    }

    #[test]
    fn alert_digest_is_stable_and_sensitive() {
        let spec = SloSpec::parse(SPEC).unwrap();
        let tl = timeline(&[(0, 0, 0.0, 0.0, 1.0), (1, 1, 0.0, 0.0, 2.0)]);
        let a = evaluate(&spec, &tl, &[]).alert_digest();
        let b = evaluate(&spec, &tl, &[]).alert_digest();
        assert_eq!(a, b);
        let tl2 = timeline(&[(0, 0, 0.0, 0.0, 1.0), (1, 1, 0.0, 0.0, 2.5)]);
        // Same health, different measured efficiency -> different digest.
        assert_ne!(evaluate(&spec, &tl2, &[]).alert_digest(), a);
    }
}
