//! Self-contained HTML dashboard: engine Gantt chart, queue-depth
//! sparkline, and SLO status table, all as inline SVG + CSS. Zero
//! JavaScript, zero external assets — the file works from `file://`, an
//! artifact store, or an air-gapped CI runner.
//!
//! The renderer is a pure function of the reconstructed [`FleetTimeline`]
//! and the [`SloReport`]; it deliberately includes no wall-clock times,
//! thread counts, or hostnames, so the CI invariance gate can `cmp` the
//! bytes produced by `--threads 1` and `--threads 8` runs.

use crate::critpath::CritPath;
use crate::slo::SloReport;
use crate::timeline::FleetTimeline;
use std::fmt::Write as _;

/// Drawing area for the Gantt chart / sparkline, in CSS pixels.
const CHART_W: f64 = 860.0;
const ROW_H: f64 = 26.0;
const ROW_GAP: f64 = 6.0;
const LEFT_GUTTER: f64 = 70.0;
const SPARK_H: f64 = 72.0;

/// Render the dashboard. `slo` is optional: without a spec the SLO table
/// is replaced by a hint on how to provide one. `crit` is optional: when
/// supplied, the bottleneck engine's segments are outlined on the Gantt
/// chart and a critical-path card is added.
pub fn render(
    timeline: &FleetTimeline,
    slo: Option<&SloReport>,
    crit: Option<&CritPath>,
    title: &str,
) -> String {
    let crit = crit.filter(|c| !c.is_empty());
    let mut html = String::with_capacity(16 * 1024);
    html.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(html, "<title>{}</title>", escape(title));
    html.push_str(STYLE);
    html.push_str("</head>\n<body>\n");
    let _ = writeln!(html, "<h1>{}</h1>", escape(title));
    summary_cards(&mut html, timeline, slo, crit);
    gantt(&mut html, timeline, crit);
    sparkline(&mut html, timeline);
    slo_table(&mut html, slo);
    footer(&mut html, timeline, slo, crit);
    html.push_str("</body>\n</html>\n");
    html
}

const STYLE: &str = "<style>\n\
body{font-family:system-ui,sans-serif;margin:2em auto;max-width:960px;color:#1a1a2e;background:#fafafa}\n\
h1{font-size:1.4em}h2{font-size:1.1em;margin-top:1.6em}\n\
.cards{display:flex;gap:12px;flex-wrap:wrap}\n\
.card{background:#fff;border:1px solid #ddd;border-radius:6px;padding:10px 16px;min-width:110px}\n\
.card .v{font-size:1.3em;font-weight:600}.card .k{font-size:.8em;color:#666}\n\
svg{background:#fff;border:1px solid #ddd;border-radius:6px}\n\
rect.ok{fill:#4c9f70}rect.err{fill:#c0392b}rect.rec{fill:#e0a030}\n\
rect.crit{stroke:#1a1a2e;stroke-width:2}\n\
text.lbl{font-size:11px;fill:#444}\n\
table{border-collapse:collapse;background:#fff;width:100%}\n\
th,td{border:1px solid #ddd;padding:6px 10px;font-size:.9em;text-align:left}\n\
th{background:#f0f0f4}\n\
td.ok{color:#2e7d4f;font-weight:600}td.bad{color:#c0392b;font-weight:600}\n\
.legend{font-size:.8em;color:#666;margin:.4em 0}\n\
footer{margin-top:2em;font-size:.75em;color:#888}\n\
code{background:#eee;padding:1px 4px;border-radius:3px}\n\
</style>\n";

fn summary_cards(
    html: &mut String,
    tl: &FleetTimeline,
    slo: Option<&SloReport>,
    crit: Option<&CritPath>,
) {
    html.push_str("<div class=\"cards\">\n");
    let mut card = |k: &str, v: String| {
        let _ = writeln!(
            html,
            "<div class=\"card\"><div class=\"v\">{}</div><div class=\"k\">{}</div></div>",
            escape(&v),
            escape(k)
        );
    };
    card("engines", tl.engines.len().to_string());
    card("jobs", tl.jobs.to_string());
    card("makespan (sim)", fmt_secs(tl.makespan_secs()));
    card(
        "efficiency",
        tl.efficiency()
            .map_or_else(|| "n/a".into(), |e| format!("{:.1}%", e * 100.0)),
    );
    let (inj, det) = tl.fault_totals();
    card("faults inj/det", format!("{inj}/{det}"));
    if let (Some(c), Some(engine)) = (crit, crit.and_then(|c| c.bottleneck_engine)) {
        card(
            "critical path",
            format!("engine {engine} · {}", fmt_secs(c.length_secs)),
        );
        card("max slack", fmt_secs(c.slack_max_secs()));
    }
    if let Some(r) = slo {
        let healthy = r.outcomes.iter().filter(|o| o.healthy).count();
        card("SLOs healthy", format!("{healthy}/{}", r.outcomes.len()));
    }
    html.push_str("</div>\n");
}

/// Engine Gantt: one row per engine, one rect per segment, colored by
/// outcome (green ok, amber recovered-after-fault, red error). Tooltips use
/// native `<title>` elements — no JS.
fn gantt(html: &mut String, tl: &FleetTimeline, crit: Option<&CritPath>) {
    html.push_str("<h2>Engine timeline (simulated clock)</h2>\n");
    if tl.jobs == 0 {
        html.push_str("<p>No batch segments in the trace.</p>\n");
        return;
    }
    html.push_str(
        "<div class=\"legend\">one row per engine; \
         green = ok, amber = recovered after a detected fault, red = error</div>\n",
    );
    if let Some(engine) = crit.and_then(|c| c.bottleneck_engine) {
        let _ = writeln!(
            html,
            "<div class=\"legend\">outlined = makespan-critical path \
             (bottleneck engine {engine}: shortening any outlined job shortens the batch)</div>",
        );
    }
    let span = tl.makespan_secs().max(f64::MIN_POSITIVE);
    let h = tl.engines.len() as f64 * (ROW_H + ROW_GAP) + ROW_GAP;
    let _ = writeln!(
        html,
        "<svg viewBox=\"0 0 {w} {h:.0}\" width=\"{w}\" height=\"{h:.0}\" role=\"img\">",
        w = (LEFT_GUTTER + CHART_W) as u64,
    );
    for (row, e) in tl.engines.iter().enumerate() {
        let y = ROW_GAP + row as f64 * (ROW_H + ROW_GAP);
        let _ = writeln!(
            html,
            "<text class=\"lbl\" x=\"4\" y=\"{:.1}\">engine {}</text>",
            y + ROW_H * 0.65,
            e.engine
        );
        for s in &e.segments {
            let x = LEFT_GUTTER + (s.start_secs - tl.start_secs) / span * CHART_W;
            let w = (s.duration_secs() / span * CHART_W).max(1.0);
            let mut class = if !s.ok {
                "err"
            } else if s.recovered() {
                "rec"
            } else {
                "ok"
            }
            .to_string();
            if crit.is_some_and(|c| c.is_critical_engine(s.engine)) {
                class.push_str(" crit");
            }
            let _ = writeln!(
                html,
                "<rect class=\"{class}\" x=\"{x:.2}\" y=\"{y:.1}\" width=\"{w:.2}\" \
                 height=\"{rh}\"><title>job {job} ({kind}) on engine {eng}\n\
                 wait {wait} · run {run}\nfaults {fi} injected / {fd} detected</title></rect>",
                rh = ROW_H,
                job = s.job,
                kind = escape(&s.kind),
                eng = s.engine,
                wait = fmt_secs(s.wait_secs),
                run = fmt_secs(s.duration_secs()),
                fi = s.fault_injected,
                fd = s.fault_detected,
            );
        }
    }
    html.push_str("</svg>\n");
}

/// Queue-depth sparkline: a step polyline over the same simulated window
/// as the Gantt chart.
fn sparkline(html: &mut String, tl: &FleetTimeline) {
    let depth = tl.queue_depth();
    if depth.is_empty() {
        return;
    }
    html.push_str("<h2>Queue depth</h2>\n");
    let span = tl.makespan_secs().max(f64::MIN_POSITIVE);
    let max_depth = depth.iter().map(|&(_, d)| d).max().unwrap_or(1).max(1) as f64;
    let mut points = String::new();
    let mut last_y = 0.0;
    for &(t, d) in &depth {
        let x = LEFT_GUTTER + (t - tl.start_secs) / span * CHART_W;
        let y = 6.0 + (1.0 - d as f64 / max_depth) * (SPARK_H - 12.0);
        // Step function: horizontal segment to the new time, then drop.
        if !points.is_empty() {
            let _ = write!(points, "{x:.2},{last_y:.2} ");
        }
        let _ = write!(points, "{x:.2},{y:.2} ");
        last_y = y;
    }
    let _ = write!(
        points,
        "{:.2},{last_y:.2}",
        LEFT_GUTTER + CHART_W
    );
    let _ = writeln!(
        html,
        "<svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" role=\"img\">\n\
         <text class=\"lbl\" x=\"4\" y=\"16\">0..{max}</text>\n\
         <polyline fill=\"none\" stroke=\"#4060c0\" stroke-width=\"1.5\" points=\"{points}\"/>\n\
         </svg>",
        w = (LEFT_GUTTER + CHART_W) as u64,
        h = SPARK_H as u64,
        max = max_depth as u64,
    );
}

fn slo_table(html: &mut String, slo: Option<&SloReport>) {
    html.push_str("<h2>Service-level objectives</h2>\n");
    let Some(report) = slo else {
        html.push_str(
            "<p>No SLO spec supplied. Pass <code>--slo spec.toml</code> to \
             <code>repro batch</code> to evaluate objectives.</p>\n",
        );
        return;
    };
    html.push_str(
        "<table>\n<tr><th>objective</th><th>kind</th><th>status</th>\
         <th>measured</th><th>limit</th><th>breaches</th><th>recovered</th></tr>\n",
    );
    for o in &report.outcomes {
        let (class, status) = if o.healthy { ("ok", "healthy") } else { ("bad", "BREACHED") };
        let _ = writeln!(
            html,
            "<tr><td>{}</td><td>{}</td><td class=\"{class}\">{status}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            escape(&o.name),
            o.kind,
            fmt_value(o.measured),
            fmt_value(o.limit),
            o.breaches,
            o.recovered,
        );
    }
    html.push_str("</table>\n");
}

fn footer(
    html: &mut String,
    tl: &FleetTimeline,
    slo: Option<&SloReport>,
    crit: Option<&CritPath>,
) {
    let _ = write!(
        html,
        "<footer>timeline digest <code>{:016x}</code>",
        tl.digest()
    );
    if let Some(r) = slo {
        let _ = write!(html, " · alert digest <code>{:016x}</code>", r.alert_digest());
    }
    if let Some(c) = crit {
        let _ = write!(html, " · critpath digest <code>{:016x}</code>", c.digest());
    }
    html.push_str(" · deterministic for any <code>--threads</code></footer>\n");
}

/// Simulated seconds with an adaptive unit, deterministic formatting.
fn fmt_secs(secs: f64) -> String {
    if secs == 0.0 {
        "0 s".to_string()
    } else if secs < 1.0e-6 {
        format!("{:.1} ns", secs * 1.0e9)
    } else if secs < 1.0e-3 {
        format!("{:.2} \u{00b5}s", secs * 1.0e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1.0e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Measured/limit values: scientific for tiny magnitudes, plain otherwise.
fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if !v.is_finite() {
        format!("{v}")
    } else if v.abs() < 1.0e-3 || v.abs() >= 1.0e6 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

/// Minimal HTML escaping for text nodes and attribute values.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::{evaluate, SloSpec};
    use std::sync::Arc;
    use tcqr_trace::{MemSink, Tracer, Value};

    fn sample_timeline() -> FleetTimeline {
        let sink = Arc::new(MemSink::new());
        let t = Tracer::new(sink.clone());
        for (engine, job, wait, start, end, ok, det) in [
            (0usize, 0u64, 0.0, 0.0, 2.0, true, 0u64),
            (1, 1, 0.0, 0.0, 1.0, true, 1),
            (0, 2, 2.0, 2.0, 3.0, false, 0),
        ] {
            t.op(
                "engine.segment",
                &[
                    ("engine", Value::from(engine)),
                    ("job", Value::from(job)),
                    ("kind", Value::from("rgsqrf")),
                    ("wait_secs", Value::F64(wait)),
                    ("start_secs", Value::F64(start)),
                    ("end_secs", Value::F64(end)),
                    ("ok", Value::from(ok)),
                    ("fault_injected", Value::from(det)),
                    ("fault_detected", Value::from(det)),
                ],
            );
        }
        FleetTimeline::from_events(&sink.snapshot())
    }

    #[test]
    fn renders_all_sections_without_js() {
        let tl = sample_timeline();
        let spec = SloSpec::parse(
            "[objective.balance]\nkind = \"efficiency\"\nmin = 2.0",
        )
        .unwrap();
        let report = evaluate(&spec, &tl, &[]);
        let html = render(&tl, Some(&report), None, "quick batch");
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("Engine timeline"));
        assert!(html.contains("Queue depth"));
        assert!(html.contains("Service-level objectives"));
        assert!(html.contains("BREACHED"));
        assert!(html.contains("class=\"err\""), "failed job drawn red");
        assert!(html.contains("class=\"rec\""), "recovered job drawn amber");
        assert!(html.contains("timeline digest"));
        assert!(html.contains("alert digest"));
        // Self-contained: no scripts, no external fetches.
        assert!(!html.contains("<script"));
        assert!(!html.contains("http://") && !html.contains("https://"));
    }

    #[test]
    fn render_is_a_pure_function_of_its_inputs() {
        let tl = sample_timeline();
        assert_eq!(render(&tl, None, None, "t"), render(&tl, None, None, "t"));
    }

    #[test]
    fn critical_path_is_outlined_and_summarized() {
        let tl = sample_timeline();
        let cp = CritPath::from_timeline(&tl);
        // Engine 0's lane ends last (t=3): both of its segments outline.
        assert_eq!(cp.bottleneck_engine, Some(0));
        let html = render(&tl, None, Some(&cp), "crit");
        assert!(html.contains("class=\"ok crit\""), "critical ok job outlined");
        assert!(html.contains("class=\"err crit\""), "critical err job outlined");
        assert!(!html.contains("class=\"rec crit\""), "engine 1 not outlined");
        assert!(html.contains("critical path"));
        assert!(html.contains("makespan-critical path"));
        assert!(html.contains("critpath digest"));
        assert!(!html.contains("<script"));
        // An empty analysis renders exactly like no analysis.
        let without = render(&tl, None, None, "crit");
        let empty = render(&tl, None, Some(&CritPath::default()), "crit");
        assert_eq!(without, empty);
    }

    #[test]
    fn empty_timeline_renders_a_placeholder() {
        let html = render(&FleetTimeline::default(), None, None, "empty");
        assert!(html.contains("No batch segments"));
        assert!(html.contains("--slo spec.toml"));
    }

    #[test]
    fn titles_are_escaped() {
        let html = render(&FleetTimeline::default(), None, None, "<x> & \"y\"");
        assert!(html.contains("&lt;x&gt; &amp; &quot;y&quot;"));
        assert!(!html.contains("<x>"));
    }
}
