//! # tcqr-obs — fleet observability for the batched engine pool
//!
//! The batch subsystem already narrates everything this crate needs through
//! `tcqr-trace`: the scheduler's post-hoc `engine.segment` ops, the
//! `fleet.*` rollups, and the solver span closes. This crate is a pure
//! *consumer* of that stream — it adds no instrumentation to hot loops and
//! holds no global state:
//!
//! - [`timeline`] reconstructs per-engine busy/idle/recovery segments and
//!   queue-depth samples on the simulated clock ([`FleetTimeline`]);
//! - [`slo`] evaluates declarative objectives (p99 queue wait with
//!   burn-rate windows, load-balance efficiency, fault-escape counts,
//!   residual bounds) and narrates breaches back into the trace as typed
//!   `slo.breach` / `slo.recovered` / `slo.objective` events
//!   ([`SloSpec`], [`evaluate`], [`SloReport`]);
//! - [`dashboard`] renders both as a self-contained HTML report (inline
//!   SVG Gantt + sparkline + status table, zero JS) ([`render`]);
//! - [`diff`] aligns two runs' traces by span path × phase × op class ×
//!   engine and attributes every delta to the deepest owning node, with a
//!   ranked blame table ([`AttributionTree`], [`TraceDiff`]);
//! - [`critpath`] reconstructs the makespan-critical chain, per-job slack,
//!   and the bottleneck engine, narrated as `fleet.critpath.*` events
//!   ([`CritPath`]);
//! - [`budget`] accounts measured rounding events against
//!   Yang-Fox-Sanders-style per-phase error bounds, narrated as
//!   `error.budget` events ([`ErrorBudget`]).
//!
//! ## Determinism contract
//!
//! Everything here is a pure function of deterministic inputs. The batch
//! layer's static-lane oracle guarantees the `engine.segment` /
//! `fleet.*` events are bit-identical in content *and order* for any
//! rayon worker count, and residual objectives reduce span closes through
//! an order-independent max — so [`FleetTimeline::digest`],
//! [`SloReport::alert_digest`], and the rendered dashboard bytes are all
//! invariant under `--threads`. The attribution layer goes one step
//! further: per-node float accumulation is folded in IEEE total order
//! (not stream order), so [`AttributionTree`], [`TraceDiff`],
//! [`CritPath`], and [`ErrorBudget`] — and their JSON renderings — are
//! bit-identical even across the *interleaved* per-engine op events that
//! different `--threads` schedules deliver in different orders. CI
//! compares the rendered bytes directly.
//!
//! The crate depends only on `tcqr-trace` on purpose: metric export
//! happens by emitting `slo.*` trace events that the existing
//! `tcqr-metrics` bridge converts to `tcqr_slo_*` series, which keeps one
//! source of truth and avoids double counting.

pub mod budget;
pub mod critpath;
pub mod dashboard;
pub mod diff;
pub mod slo;
pub mod timeline;

pub use budget::{ErrorBudget, PhaseBudget};
pub use critpath::{CritPath, JobSlack};
pub use dashboard::render;
pub use diff::{AttributionTree, BlameRow, Delta, NodeStats, TraceDiff};
pub use slo::{
    evaluate, BurnWindow, Objective, ObjectiveKind, ObjectiveOutcome, SloReport, SloSpec, Transition,
};
pub use timeline::{EngineTimeline, FleetTimeline, Segment};
