//! Fleet timelines: per-engine busy/idle/recovery segments and queue-depth
//! samples on the *simulated* clock, reconstructed from the trace stream.
//!
//! The batch scheduler's hot path emits nothing extra for this module. After
//! a batch completes, `tcqr_batch::FleetReport::emit` narrates the
//! accounting it already holds as one `engine.segment` op per job (in
//! submission order, from the coordinating thread) plus the existing
//! `fleet.engine` / `fleet.summary` rollups. Because those events are
//! emitted post-hoc from deterministic accounting — never from inside the
//! rayon lanes — both their *content* and their *order* are bit-identical
//! for any worker count, and so is everything this module derives from
//! them: segments, idle gaps, queue-depth steps, and the [`FleetTimeline::digest`].

use tcqr_trace::{Event, EventKind};

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Tiny FNV-1a hasher shared by the timeline and SLO digests. Matches the
/// byte-for-byte discipline of `tcqr_batch::fingerprint`: floats are hashed
/// by bit pattern, so two timelines digest equal iff they are bit-identical.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Digest(u64);

impl Digest {
    pub(crate) fn new() -> Self {
        Digest(FNV_OFFSET)
    }

    pub(crate) fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_le_bytes());
    }

    pub(crate) fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// One job's occupancy of one engine, on the simulated clock.
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    /// Pool index of the engine that ran the job.
    pub engine: usize,
    /// Queue index of the job (submission order).
    pub job: u64,
    /// Stable job-kind label (`"rgsqrf"`, `"lls.cgls"`, ...).
    pub kind: String,
    /// Simulated seconds the job waited behind its lane predecessors.
    pub wait_secs: f64,
    /// Absolute simulated time the job started executing.
    pub start_secs: f64,
    /// Absolute simulated time the job finished.
    pub end_secs: f64,
    /// Whether the job returned `Ok`.
    pub ok: bool,
    /// Faults injected into the engine while this job ran.
    pub fault_injected: u64,
    /// Faults detected (and recovered from) while this job ran.
    pub fault_detected: u64,
}

impl Segment {
    /// Simulated seconds of engine time the job consumed (clamped at 0).
    pub fn duration_secs(&self) -> f64 {
        (self.end_secs - self.start_secs).max(0.0)
    }

    /// True when the job hit at least one detected fault and still
    /// completed: the segment covers recovery-ladder work, not just the
    /// nominal solve.
    pub fn recovered(&self) -> bool {
        self.fault_detected > 0 && self.ok
    }
}

/// A fleet lifecycle event pinned to one engine's simulated clock:
/// `"death"`, `"quarantine"`, `"rehabilitated"`, `"requeue"`,
/// `"deadline"`, or `"lost"` (see `tcqr-serve`'s `FleetMark`).
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineMark {
    /// Stable lowercase mark kind.
    pub kind: String,
    /// Simulated time of the event on this engine's clock.
    pub t_secs: f64,
    /// The ticket/job involved, for per-job marks.
    pub ticket: Option<u64>,
}

/// One engine's lane: its segments in execution order plus the clock
/// bookkeeping needed to place idle gaps.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineTimeline {
    /// Pool index of the engine.
    pub engine: usize,
    /// Absolute simulated clock when the batch reached this engine
    /// (pre-batch work if the pool was reused; usually 0).
    pub base_secs: f64,
    /// Modeled seconds this engine spent busy on the batch.
    pub busy_secs: f64,
    /// Absolute engine clock after the batch.
    pub clock_secs: f64,
    /// Segments in execution order (equals submission order within a lane).
    pub segments: Vec<Segment>,
    /// Lifecycle marks (deaths, quarantines, requeues...) in emission
    /// order — `tcqr-serve` emits them engine-major on the simulated
    /// clock, so this order is deterministic.
    pub marks: Vec<TimelineMark>,
}

impl EngineTimeline {
    /// Idle intervals on this engine inside `[base_secs, horizon_secs]`:
    /// gaps between consecutive segments plus the tail after the last
    /// segment. With the all-jobs-arrive-at-start queue the interior gaps
    /// are empty and only the tail (this engine finishing before the
    /// fleet's makespan) shows up.
    pub fn idle_gaps(&self, horizon_secs: f64) -> Vec<(f64, f64)> {
        let mut gaps = Vec::new();
        let mut cursor = self.base_secs;
        for s in &self.segments {
            if s.start_secs > cursor {
                gaps.push((cursor, s.start_secs));
            }
            cursor = cursor.max(s.end_secs);
        }
        if horizon_secs > cursor {
            gaps.push((cursor, horizon_secs));
        }
        gaps
    }
}

/// The fleet's reconstructed schedule: one [`EngineTimeline`] per engine,
/// in pool order, plus the batch-wide window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetTimeline {
    /// Per-engine timelines, in pool order.
    pub engines: Vec<EngineTimeline>,
    /// Jobs reconstructed across the fleet.
    pub jobs: usize,
    /// Earliest engine base clock (the batch's simulated start).
    pub start_secs: f64,
    /// Latest segment end / engine clock (the batch's simulated end).
    pub end_secs: f64,
}

impl FleetTimeline {
    /// Reconstruct the fleet schedule from a trace event stream.
    ///
    /// Consumes `engine.segment` ops (one per job) and `fleet.engine` ops
    /// (per-engine busy/clock totals); everything else is ignored. Returns
    /// an empty timeline when the stream holds no batch.
    pub fn from_events(events: &[Event]) -> FleetTimeline {
        let mut tl = FleetTimeline::default();
        let mut start = f64::INFINITY;
        let mut end = f64::NEG_INFINITY;
        for ev in events {
            if ev.kind != EventKind::Op {
                continue;
            }
            match ev.name.as_str() {
                "engine.segment" => {
                    let engine = ev.u64_field("engine").unwrap_or(0) as usize;
                    let seg = Segment {
                        engine,
                        job: ev.u64_field("job").unwrap_or(0),
                        kind: ev.str_field("kind").unwrap_or("?").to_string(),
                        wait_secs: ev.f64_field("wait_secs").unwrap_or(0.0),
                        start_secs: ev.f64_field("start_secs").unwrap_or(0.0),
                        end_secs: ev.f64_field("end_secs").unwrap_or(0.0),
                        ok: ev.bool_field("ok").unwrap_or(false),
                        fault_injected: ev.u64_field("fault_injected").unwrap_or(0),
                        fault_detected: ev.u64_field("fault_detected").unwrap_or(0),
                    };
                    start = start.min(seg.start_secs - seg.wait_secs);
                    end = end.max(seg.end_secs);
                    let lane = tl.lane(engine);
                    lane.segments.push(seg);
                    tl.jobs += 1;
                }
                "fleet.engine" => {
                    let engine = ev.u64_field("engine").unwrap_or(0) as usize;
                    let busy = ev.f64_field("busy_secs").unwrap_or(0.0);
                    let clock = ev.f64_field("clock_secs").unwrap_or(0.0);
                    let lane = tl.lane(engine);
                    lane.busy_secs = busy;
                    lane.clock_secs = clock;
                    lane.base_secs = clock - busy;
                    start = start.min(lane.base_secs);
                    end = end.max(clock);
                }
                "engine.mark" => {
                    let engine = ev.u64_field("engine").unwrap_or(0) as usize;
                    let mark = TimelineMark {
                        kind: ev.str_field("kind").unwrap_or("?").to_string(),
                        t_secs: ev.f64_field("t").unwrap_or(0.0),
                        ticket: ev.u64_field("ticket"),
                    };
                    tl.lane(engine).marks.push(mark);
                }
                _ => {}
            }
        }
        if start.is_finite() {
            tl.start_secs = start;
            tl.end_secs = end.max(start);
        }
        tl
    }

    /// Mutable lane for `engine`, growing the pool as indices appear.
    fn lane(&mut self, engine: usize) -> &mut EngineTimeline {
        while self.engines.len() <= engine {
            let e = self.engines.len();
            self.engines.push(EngineTimeline {
                engine: e,
                ..EngineTimeline::default()
            });
        }
        &mut self.engines[engine]
    }

    /// True when no batch events were found.
    pub fn is_empty(&self) -> bool {
        self.jobs == 0 && self.engines.is_empty()
    }

    /// Simulated span of the batch.
    pub fn makespan_secs(&self) -> f64 {
        (self.end_secs - self.start_secs).max(0.0)
    }

    /// Total modeled engine-seconds across the fleet.
    pub fn busy_secs(&self) -> f64 {
        self.engines.iter().map(|e| e.busy_secs).sum()
    }

    /// `ideal / makespan` load-balance efficiency; `None` when the batch is
    /// empty or spent no simulated time (never NaN).
    pub fn efficiency(&self) -> Option<f64> {
        let mk = self.makespan_secs();
        if self.engines.is_empty() || mk <= 0.0 {
            return None;
        }
        Some(self.busy_secs() / self.engines.len() as f64 / mk)
    }

    /// Queue-depth step samples `(t_secs, waiting_jobs)`: every job arrives
    /// at the batch start, so the depth starts at the job count and steps
    /// down by one at each segment start. Samples are sorted by
    /// `(time, job)` — deterministic because segment starts are.
    pub fn queue_depth(&self) -> Vec<(f64, u64)> {
        if self.jobs == 0 {
            return Vec::new();
        }
        let mut starts: Vec<(f64, u64)> = self
            .engines
            .iter()
            .flat_map(|e| e.segments.iter().map(|s| (s.start_secs, s.job)))
            .collect();
        starts.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let mut depth = self.jobs as u64;
        let mut out = Vec::with_capacity(starts.len() + 1);
        out.push((self.start_secs, depth));
        for (t, _) in starts {
            depth = depth.saturating_sub(1);
            out.push((t, depth));
        }
        out
    }

    /// Summed per-segment fault statistics `(injected, detected)`.
    pub fn fault_totals(&self) -> (u64, u64) {
        let mut inj = 0u64;
        let mut det = 0u64;
        for e in &self.engines {
            for s in &e.segments {
                inj = inj.saturating_add(s.fault_injected);
                det = det.saturating_add(s.fault_detected);
            }
        }
        (inj, det)
    }

    /// Bit-exact FNV-1a digest of the reconstructed schedule: engine order,
    /// every segment's identity, placement, outcome, and fault counts.
    /// Equal between two runs iff their timelines are bit-identical — the
    /// `--threads` invariance gate in CI compares exactly this.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.push_u64(self.engines.len() as u64);
        d.push_u64(self.jobs as u64);
        for e in &self.engines {
            d.push_u64(e.engine as u64);
            d.push_f64(e.base_secs);
            d.push_f64(e.busy_secs);
            d.push_f64(e.clock_secs);
            d.push_u64(e.segments.len() as u64);
            for s in &e.segments {
                d.push_u64(s.job);
                d.push_bytes(s.kind.as_bytes());
                d.push_f64(s.wait_secs);
                d.push_f64(s.start_secs);
                d.push_f64(s.end_secs);
                d.push_u64(s.ok as u64);
                d.push_u64(s.fault_injected);
                d.push_u64(s.fault_detected);
            }
            d.push_u64(e.marks.len() as u64);
            for m in &e.marks {
                d.push_bytes(m.kind.as_bytes());
                d.push_f64(m.t_secs);
                d.push_u64(m.ticket.map_or(u64::MAX, |t| t));
            }
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tcqr_trace::{MemSink, Tracer, Value};

    /// Narrate a two-engine, three-job batch the way `FleetReport::emit`
    /// does.
    pub(crate) fn sample_events() -> Vec<Event> {
        let sink = Arc::new(MemSink::new());
        let t = Tracer::new(sink.clone());
        let seg = |engine: usize, job: u64, wait: f64, start: f64, end: f64, ok: bool, det: u64| {
            t.op(
                "engine.segment",
                &[
                    ("engine", Value::from(engine)),
                    ("job", Value::from(job)),
                    ("kind", Value::from("rgsqrf")),
                    ("wait_secs", Value::F64(wait)),
                    ("start_secs", Value::F64(start)),
                    ("end_secs", Value::F64(end)),
                    ("ok", Value::from(ok)),
                    ("fault_injected", Value::from(det)),
                    ("fault_detected", Value::from(det)),
                ],
            );
        };
        // Submission order: job 0 -> engine 0, job 1 -> engine 1, job 2 -> engine 0.
        seg(0, 0, 0.0, 0.0, 2.0, true, 0);
        seg(1, 1, 0.0, 0.0, 1.0, true, 1);
        seg(0, 2, 2.0, 2.0, 3.0, false, 0);
        for (e, jobs, busy) in [(0usize, 2usize, 3.0f64), (1, 1, 1.0)] {
            t.op(
                "fleet.engine",
                &[
                    ("engine", Value::from(e)),
                    ("jobs", Value::from(jobs)),
                    ("busy_secs", Value::F64(busy)),
                    ("clock_secs", Value::F64(busy)),
                    ("fault_injected", Value::from(0u64)),
                    ("fault_detected", Value::from(0u64)),
                ],
            );
        }
        sink.snapshot()
    }

    #[test]
    fn reconstructs_lanes_and_window() {
        let tl = FleetTimeline::from_events(&sample_events());
        assert_eq!(tl.engines.len(), 2);
        assert_eq!(tl.jobs, 3);
        assert_eq!(tl.start_secs, 0.0);
        assert_eq!(tl.end_secs, 3.0);
        assert_eq!(tl.makespan_secs(), 3.0);
        assert_eq!(tl.busy_secs(), 4.0);
        assert!((tl.efficiency().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        let e0 = &tl.engines[0];
        assert_eq!(e0.segments.len(), 2);
        assert_eq!(e0.segments[1].job, 2);
        assert!(!e0.segments[1].ok);
        assert_eq!(e0.idle_gaps(3.0), vec![]);
        let e1 = &tl.engines[1];
        assert!(e1.segments[0].recovered());
        // Engine 1 sits idle from t=1 to the fleet makespan.
        assert_eq!(e1.idle_gaps(3.0), vec![(1.0, 3.0)]);
        assert_eq!(tl.fault_totals(), (1, 1));
    }

    #[test]
    fn queue_depth_steps_down_at_each_start() {
        let tl = FleetTimeline::from_events(&sample_events());
        assert_eq!(
            tl.queue_depth(),
            vec![(0.0, 3), (0.0, 2), (0.0, 1), (2.0, 0)]
        );
    }

    #[test]
    fn digest_ignores_unrelated_events_but_not_schedule_changes() {
        let events = sample_events();
        let base = FleetTimeline::from_events(&events).digest();
        // Unrelated chatter (different seq numbers, extra ops) must not
        // move the digest: it hashes the reconstruction, not the stream.
        let sink = Arc::new(MemSink::new());
        let t = Tracer::new(sink.clone());
        t.info("noise", &[("msg", Value::from("hi"))]);
        t.op("gemm", &[("phase", Value::from("update")), ("secs", Value::F64(0.5))]);
        let mut padded = sink.snapshot();
        padded.extend(events.iter().cloned());
        assert_eq!(FleetTimeline::from_events(&padded).digest(), base);
        // A one-bit schedule change must move it.
        let mut altered = events;
        for ev in &mut altered {
            if ev.name == "engine.segment" {
                for (k, v) in &mut ev.fields {
                    if k == "end_secs" {
                        if let Value::F64(x) = v {
                            *x += 1e-9;
                        }
                        break;
                    }
                }
                break;
            }
        }
        assert_ne!(FleetTimeline::from_events(&altered).digest(), base);
    }

    #[test]
    fn marks_land_on_their_lane_and_move_the_digest() {
        let mut events = sample_events();
        let base = FleetTimeline::from_events(&events).digest();
        let sink = Arc::new(MemSink::new());
        let t = Tracer::new(sink.clone());
        t.op(
            "engine.mark",
            &[
                ("engine", Value::from(1usize)),
                ("kind", Value::from("death")),
                ("t", Value::F64(0.75)),
                ("ticket", Value::from(4usize)),
            ],
        );
        t.op(
            "engine.mark",
            &[
                ("engine", Value::from(1usize)),
                ("kind", Value::from("quarantine")),
                ("t", Value::F64(0.9)),
            ],
        );
        events.extend(sink.snapshot());
        let tl = FleetTimeline::from_events(&events);
        assert!(tl.engines[0].marks.is_empty());
        assert_eq!(
            tl.engines[1].marks,
            vec![
                TimelineMark {
                    kind: "death".into(),
                    t_secs: 0.75,
                    ticket: Some(4),
                },
                TimelineMark {
                    kind: "quarantine".into(),
                    t_secs: 0.9,
                    ticket: None,
                },
            ]
        );
        // Chaos marks are part of the reconstruction: the digest must see them.
        assert_ne!(tl.digest(), base);
    }

    #[test]
    fn empty_stream_is_an_empty_timeline() {
        let tl = FleetTimeline::from_events(&[]);
        assert!(tl.is_empty());
        assert_eq!(tl.makespan_secs(), 0.0);
        assert_eq!(tl.efficiency(), None);
        assert!(tl.queue_depth().is_empty());
    }
}
