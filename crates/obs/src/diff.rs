//! Trace differ: hierarchical regression attribution between two runs.
//!
//! Two JSONL traces (or in-memory event streams) are each folded into an
//! [`AttributionTree`] keyed by span path × phase × op class (plus a
//! parallel `fleet/engine:N/kind:K` branch built from the post-hoc
//! `engine.segment` narration), accumulating modeled seconds, flops,
//! rounding events, and fault counts at each node. [`TraceDiff::between`]
//! then zips the two trees and attributes every delta to the deepest node
//! that owns it, rolling subtree totals up so that, at every node,
//!
//! ```text
//! subtree(node) = own(node) + Σ subtree(child)   (children in key order)
//! ```
//!
//! holds *exactly* — deltas can move between siblings but never leak or
//! appear from nowhere. The ranked blame table ([`TraceDiff::blame`],
//! rendered by [`TraceDiff::render_text`] / [`TraceDiff::to_json`]) names
//! the nodes whose *own* deltas dominate, normalized per metric, so a
//! pure-rounding or pure-fault regression surfaces even when no modeled
//! time moved.
//!
//! Determinism: all floating-point accumulation goes through `StableSum`,
//! which sorts contributions by total order before folding, so the tree —
//! and therefore the diff, the blame ranking, and the rendered bytes — is
//! bit-identical for any event interleaving that preserves the per-span
//! event multiset. Batch runs under different `--threads` produce exactly
//! such reorderings, which is what the CI byte-compare gate relies on.

use std::collections::{BTreeMap, HashMap};

use tcqr_trace::{Event, EventKind};

use crate::timeline::Digest;

/// Order-independent f64 accumulator: contributions are sorted by IEEE
/// total order before the fold, so the result depends only on the multiset
/// of values, never on stream interleaving. Zero contributions are skipped
/// (they cannot move a sum of same-signed terms, and skipping them keeps
/// zero-cost ops from perturbing alignment).
#[derive(Clone, Debug, Default)]
pub(crate) struct StableSum(Vec<f64>);

impl StableSum {
    pub(crate) fn push(&mut self, v: f64) {
        if v != 0.0 {
            self.0.push(v);
        }
    }

    pub(crate) fn finish(mut self) -> f64 {
        self.0.sort_by(|a, b| a.total_cmp(b));
        self.0.iter().sum()
    }
}

/// JSON string literal (quoted, escaped).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: shortest round-trip form; non-finite values become `null`
/// (bare `NaN`/`inf` are not valid JSON).
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Telemetry owned by one attribution node.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeStats {
    /// Op events attributed here.
    pub ops: u64,
    /// Modeled engine seconds (`secs` fields).
    pub secs: f64,
    /// Charged flops (`flops` fields).
    pub flops: f64,
    /// Elements rounded to half precision.
    pub rounded: u64,
    /// Rounding overflows (values clamped to ±max).
    pub overflow: u64,
    /// Rounding underflows (flushed to zero).
    pub underflow: u64,
    /// NaNs seen while rounding.
    pub nan: u64,
    /// `fault.injected` ops (span side) / segment injection tallies (fleet side).
    pub fault_injected: u64,
    /// `fault.detected` warnings / segment detection tallies.
    pub fault_detected: u64,
}

/// Per-node accumulator used while folding an event stream; finalized into
/// [`NodeStats`] once the stream ends.
#[derive(Debug, Default)]
struct Acc {
    ops: u64,
    secs: StableSum,
    flops: StableSum,
    rounded: u64,
    overflow: u64,
    underflow: u64,
    nan: u64,
    fault_injected: u64,
    fault_detected: u64,
    children: BTreeMap<String, Acc>,
}

impl Acc {
    fn child(&mut self, label: &str) -> &mut Acc {
        self.children.entry(label.to_string()).or_default()
    }

    fn finish(self, label: String) -> Node {
        Node {
            label,
            own: NodeStats {
                ops: self.ops,
                secs: self.secs.finish(),
                flops: self.flops.finish(),
                rounded: self.rounded,
                overflow: self.overflow,
                underflow: self.underflow,
                nan: self.nan,
                fault_injected: self.fault_injected,
                fault_detected: self.fault_detected,
            },
            children: self
                .children
                .into_iter()
                .map(|(k, v)| {
                    let n = v.finish(k.clone());
                    (k, n)
                })
                .collect(),
        }
    }
}

/// One node of an [`AttributionTree`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Node {
    /// Path segment (`"experiment:fig6"`, `"phase:update"`, `"class:tc"`, ...).
    pub label: String,
    /// Telemetry attributed to exactly this node (not its children).
    pub own: NodeStats,
    /// Children keyed by label; `BTreeMap` fixes the iteration order.
    pub children: BTreeMap<String, Node>,
}

/// Hierarchical rollup of one run's trace, aligned for diffing.
///
/// Levels: span path (span name, suffixed `:<id>` when the open event
/// carries a string `id` field, so per-experiment subtrees align across
/// runs) → `phase:<p>` → `class:<c>`, plus a `fleet/engine:N/kind:K`
/// branch from `engine.segment` events. Post-hoc rollup events
/// (`fleet.*`, `slo.*`, `error.budget`) are excluded: they re-describe
/// telemetry already attributed elsewhere in the tree.
///
/// Note the `fleet` branch is a second *view* of batch time (by engine
/// lane) alongside the span-side view of the same modeled seconds (by
/// phase); blame ranks nodes by their own deltas, so the two views
/// surface independently and never compete.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AttributionTree {
    /// Unlabeled root; its own stats hold ops emitted outside any span.
    pub root: Node,
}

/// True for op names the span-side attribution skips (post-hoc rollups).
fn excluded(name: &str) -> bool {
    name.starts_with("fleet.") || name.starts_with("slo.") || name == "error.budget"
}

impl AttributionTree {
    /// Fold an event stream into an attribution tree.
    pub fn from_events(events: &[Event]) -> AttributionTree {
        let mut spans: HashMap<u64, Vec<String>> = HashMap::new();
        let mut root = Acc::default();
        for ev in events {
            match ev.kind {
                EventKind::SpanOpen => {
                    let mut path = spans.get(&ev.span).cloned().unwrap_or_default();
                    let label = match ev.str_field("id") {
                        Some(id) => format!("{}:{}", ev.name, id),
                        None => ev.name.clone(),
                    };
                    path.push(label);
                    spans.insert(ev.id, path);
                }
                EventKind::Op => {
                    if ev.name == "engine.segment" {
                        let engine = ev.u64_field("engine").unwrap_or(0);
                        let kind = ev.str_field("kind").unwrap_or("?");
                        let start = ev.f64_field("start_secs").unwrap_or(0.0);
                        let end = ev.f64_field("end_secs").unwrap_or(0.0);
                        let node = root
                            .child("fleet")
                            .child(&format!("engine:{engine}"))
                            .child(&format!("kind:{kind}"));
                        node.ops += 1;
                        node.secs.push((end - start).max(0.0));
                        node.fault_injected = node
                            .fault_injected
                            .saturating_add(ev.u64_field("fault_injected").unwrap_or(0));
                        node.fault_detected = node
                            .fault_detected
                            .saturating_add(ev.u64_field("fault_detected").unwrap_or(0));
                        continue;
                    }
                    if excluded(&ev.name) {
                        continue;
                    }
                    let mut node = &mut root;
                    if let Some(path) = spans.get(&ev.span) {
                        for seg in path {
                            node = node.child(seg);
                        }
                    }
                    if let Some(p) = ev.str_field("phase") {
                        node = node.child(&format!("phase:{p}"));
                    }
                    if let Some(c) = ev.str_field("class") {
                        node = node.child(&format!("class:{c}"));
                    }
                    node.ops += 1;
                    if let Some(v) = ev.f64_field("secs") {
                        node.secs.push(v);
                    }
                    if let Some(v) = ev.f64_field("flops") {
                        node.flops.push(v);
                    }
                    node.rounded = node
                        .rounded
                        .saturating_add(ev.u64_field("rounded").unwrap_or(0));
                    node.overflow = node
                        .overflow
                        .saturating_add(ev.u64_field("overflow").unwrap_or(0));
                    node.underflow = node
                        .underflow
                        .saturating_add(ev.u64_field("underflow").unwrap_or(0));
                    node.nan = node.nan.saturating_add(ev.u64_field("nan").unwrap_or(0));
                    if ev.name == "fault.injected" {
                        node.fault_injected = node.fault_injected.saturating_add(1);
                    }
                }
                EventKind::Warn => {
                    if ev.name == "fault.detected" {
                        let mut node = &mut root;
                        if let Some(path) = spans.get(&ev.span) {
                            for seg in path {
                                node = node.child(seg);
                            }
                        }
                        node.fault_detected = node.fault_detected.saturating_add(1);
                    }
                }
                EventKind::SpanClose | EventKind::Info => {}
            }
        }
        AttributionTree {
            root: root.finish(String::new()),
        }
    }

    /// Bit-exact FNV-1a digest of the tree (labels + stats, in key order).
    pub fn digest(&self) -> u64 {
        fn walk(d: &mut Digest, n: &Node) {
            d.push_bytes(n.label.as_bytes());
            d.push_u64(n.own.ops);
            d.push_f64(n.own.secs);
            d.push_f64(n.own.flops);
            d.push_u64(n.own.rounded);
            d.push_u64(n.own.overflow);
            d.push_u64(n.own.underflow);
            d.push_u64(n.own.nan);
            d.push_u64(n.own.fault_injected);
            d.push_u64(n.own.fault_detected);
            d.push_u64(n.children.len() as u64);
            for c in n.children.values() {
                walk(d, c);
            }
        }
        let mut d = Digest::new();
        walk(&mut d, &self.root);
        d.finish()
    }
}

/// Signed per-metric difference between two [`NodeStats`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Delta {
    /// Δ op count.
    pub ops: i64,
    /// Δ modeled seconds.
    pub secs: f64,
    /// Δ charged flops.
    pub flops: f64,
    /// Δ elements rounded.
    pub rounded: i64,
    /// Δ rounding overflows.
    pub overflow: i64,
    /// Δ rounding underflows.
    pub underflow: i64,
    /// Δ rounding NaNs.
    pub nan: i64,
    /// Δ injected faults.
    pub fault_injected: i64,
    /// Δ detected faults.
    pub fault_detected: i64,
}

fn dcount(base: u64, cur: u64) -> i64 {
    cur as i64 - base as i64
}

impl Delta {
    /// `current - base`, metric by metric.
    pub fn between(base: &NodeStats, cur: &NodeStats) -> Delta {
        Delta {
            ops: dcount(base.ops, cur.ops),
            secs: cur.secs - base.secs,
            flops: cur.flops - base.flops,
            rounded: dcount(base.rounded, cur.rounded),
            overflow: dcount(base.overflow, cur.overflow),
            underflow: dcount(base.underflow, cur.underflow),
            nan: dcount(base.nan, cur.nan),
            fault_injected: dcount(base.fault_injected, cur.fault_injected),
            fault_detected: dcount(base.fault_detected, cur.fault_detected),
        }
    }

    /// Accumulate another delta into this one (used for subtree rollups;
    /// children are always folded in key order, so the result is
    /// deterministic).
    pub fn add(&mut self, other: &Delta) {
        self.ops += other.ops;
        self.secs += other.secs;
        self.flops += other.flops;
        self.rounded += other.rounded;
        self.overflow += other.overflow;
        self.underflow += other.underflow;
        self.nan += other.nan;
        self.fault_injected += other.fault_injected;
        self.fault_detected += other.fault_detected;
    }

    /// True when every metric is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.ops == 0
            && self.secs == 0.0
            && self.flops == 0.0
            && self.rounded == 0
            && self.overflow == 0
            && self.underflow == 0
            && self.nan == 0
            && self.fault_injected == 0
            && self.fault_detected == 0
    }

    fn metrics(&self) -> [f64; 9] {
        [
            self.secs,
            self.flops,
            self.rounded as f64,
            self.overflow as f64,
            self.underflow as f64,
            self.nan as f64,
            self.fault_injected as f64,
            self.fault_detected as f64,
            self.ops as f64,
        ]
    }

    fn json(&self) -> String {
        format!(
            "{{\"ops\":{},\"secs\":{},\"flops\":{},\"rounded\":{},\"overflow\":{},\
             \"underflow\":{},\"nan\":{},\"fault_injected\":{},\"fault_detected\":{}}}",
            self.ops,
            json_num(self.secs),
            json_num(self.flops),
            self.rounded,
            self.overflow,
            self.underflow,
            self.nan,
            self.fault_injected,
            self.fault_detected,
        )
    }
}

impl NodeStats {
    fn json(&self) -> String {
        format!(
            "{{\"ops\":{},\"secs\":{},\"flops\":{},\"rounded\":{},\"overflow\":{},\
             \"underflow\":{},\"nan\":{},\"fault_injected\":{},\"fault_detected\":{}}}",
            self.ops,
            json_num(self.secs),
            json_num(self.flops),
            self.rounded,
            self.overflow,
            self.underflow,
            self.nan,
            self.fault_injected,
            self.fault_detected,
        )
    }
}

/// One node of a [`TraceDiff`]: both runs' own stats, the own delta, and
/// the exact subtree rollup.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiffNode {
    /// Path segment label.
    pub label: String,
    /// `/`-joined path from the root (empty at the root).
    pub path: String,
    /// Base run's own stats at this node.
    pub base: NodeStats,
    /// Current run's own stats at this node.
    pub cur: NodeStats,
    /// `cur - base` of the own stats.
    pub own: Delta,
    /// `own + Σ children.subtree`, folded in child key order — exact by
    /// construction, asserted by the conservation tests.
    pub subtree: Delta,
    /// Children in label order.
    pub children: Vec<DiffNode>,
}

/// One row of the ranked blame table.
#[derive(Clone, Debug, PartialEq)]
pub struct BlameRow {
    /// `/`-joined node path.
    pub path: String,
    /// Salience in `[0, 1]`: the node's worst own-delta magnitude after
    /// normalizing each metric by the tree-wide maximum own-delta
    /// magnitude for that metric.
    pub score: f64,
    /// Own delta at the node.
    pub delta: Delta,
    /// Base run's own stats.
    pub base: NodeStats,
    /// Current run's own stats.
    pub cur: NodeStats,
}

/// The aligned diff of two attribution trees.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceDiff {
    /// Root diff node; `root.subtree` is the whole-run delta.
    pub root: DiffNode,
}

fn diff_node(label: &str, path: String, base: Option<&Node>, cur: Option<&Node>) -> DiffNode {
    let empty = NodeStats::default();
    let b = base.map(|n| &n.own).unwrap_or(&empty).clone();
    let c = cur.map(|n| &n.own).unwrap_or(&empty).clone();
    let own = Delta::between(&b, &c);
    let mut keys: Vec<&String> = Vec::new();
    if let Some(n) = base {
        keys.extend(n.children.keys());
    }
    if let Some(n) = cur {
        for k in n.children.keys() {
            if base.is_none_or(|b| !b.children.contains_key(k)) {
                keys.push(k);
            }
        }
    }
    keys.sort();
    let children: Vec<DiffNode> = keys
        .into_iter()
        .map(|k| {
            let child_path = if path.is_empty() {
                k.clone()
            } else {
                format!("{path}/{k}")
            };
            diff_node(
                k,
                child_path,
                base.and_then(|n| n.children.get(k)),
                cur.and_then(|n| n.children.get(k)),
            )
        })
        .collect();
    let mut subtree = own.clone();
    for ch in &children {
        subtree.add(&ch.subtree);
    }
    DiffNode {
        label: label.to_string(),
        path,
        base: b,
        cur: c,
        own,
        subtree,
        children,
    }
}

impl TraceDiff {
    /// Align two trees and attribute every delta.
    pub fn between(base: &AttributionTree, cur: &AttributionTree) -> TraceDiff {
        TraceDiff {
            root: diff_node("", String::new(), Some(&base.root), Some(&cur.root)),
        }
    }

    /// Convenience: build both trees from raw event streams and diff them.
    pub fn between_events(base: &[Event], cur: &[Event]) -> TraceDiff {
        TraceDiff::between(
            &AttributionTree::from_events(base),
            &AttributionTree::from_events(cur),
        )
    }

    /// True when nothing moved anywhere.
    pub fn is_zero(&self) -> bool {
        self.root.subtree.is_zero()
    }

    /// Ranked blame rows: nodes with a nonzero own delta, most salient
    /// first, ties broken by path. `top == 0` means "all rows".
    pub fn blame(&self, top: usize) -> Vec<BlameRow> {
        let mut maxes = [0.0f64; 9];
        let mut rows: Vec<BlameRow> = Vec::new();
        fn collect<'a>(n: &'a DiffNode, out: &mut Vec<&'a DiffNode>) {
            if !n.path.is_empty() && !n.own.is_zero() {
                out.push(n);
            }
            for c in &n.children {
                collect(c, out);
            }
        }
        let mut nodes = Vec::new();
        collect(&self.root, &mut nodes);
        for n in &nodes {
            for (m, v) in maxes.iter_mut().zip(n.own.metrics()) {
                *m = m.max(v.abs());
            }
        }
        for n in nodes {
            let mut score = 0.0f64;
            for (m, v) in maxes.iter().zip(n.own.metrics()) {
                if *m > 0.0 {
                    score = score.max(v.abs() / *m);
                }
            }
            rows.push(BlameRow {
                path: n.path.clone(),
                score,
                delta: n.own.clone(),
                base: n.base.clone(),
                cur: n.cur.clone(),
            });
        }
        rows.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.path.cmp(&b.path))
        });
        if top > 0 {
            rows.truncate(top);
        }
        rows
    }

    /// Human blame table. `top == 0` means "all rows".
    pub fn render_text(&self, top: usize) -> String {
        let rows = self.blame(top);
        let t = &self.root.subtree;
        let mut out = String::new();
        out.push_str(&format!(
            "trace diff: Δsecs {:+.3e}  Δflops {:+.3e}  Δrounded {:+}  Δoverflow {:+}  \
             Δfaults {:+}/{:+}  Δops {:+}\n",
            t.secs, t.flops, t.rounded, t.overflow, t.fault_injected, t.fault_detected, t.ops,
        ));
        if rows.is_empty() {
            out.push_str("  no attribution: the runs are identical under the tree keys\n");
            return out;
        }
        let pathw = rows
            .iter()
            .map(|r| r.path.len())
            .max()
            .unwrap_or(4)
            .max(4);
        out.push_str(&format!(
            "  {:<5} {:<pathw$}  {:>10} {:>10} {:>8} {:>6} {:>7} {:>6}\n",
            "score", "path", "Δsecs", "Δflops", "Δround", "Δovf", "Δfault", "Δops",
        ));
        for r in &rows {
            out.push_str(&format!(
                "  {:<5.2} {:<pathw$}  {:>+10.3e} {:>+10.3e} {:>+8} {:>+6} {:>+7} {:>+6}\n",
                r.score,
                r.path,
                r.delta.secs,
                r.delta.flops,
                r.delta.rounded,
                r.delta.overflow,
                r.delta.fault_injected + r.delta.fault_detected,
                r.delta.ops,
            ));
        }
        out
    }

    /// Machine-readable blame report. `top == 0` means "all rows".
    pub fn to_json(&self, top: usize) -> String {
        let rows = self.blame(top);
        let mut out = String::from("{\"schema\":\"tcqr.tracediff.v1\"");
        out.push_str(&format!(",\"total\":{}", self.root.subtree.json()));
        out.push_str(",\"rows\":[");
        for (i, r) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":{},\"score\":{},\"delta\":{},\"base\":{},\"current\":{}}}",
                json_str(&r.path),
                json_num(r.score),
                r.delta.json(),
                r.base.json(),
                r.cur.json(),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Bit-exact digest of the full report (all rows).
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.push_bytes(self.to_json(0).as_bytes());
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tcqr_trace::{MemSink, Tracer, Value};

    /// Emit a small two-experiment trace; `update_secs` seeds the modeled
    /// cost of the update-phase TC GEMM (the knob regression tests turn).
    fn synth(update_secs: f64) -> Vec<Event> {
        let sink = Arc::new(MemSink::new());
        let t = Tracer::new(sink.clone());
        {
            let _e = t.span("experiment", &[("id", Value::from("fig6"))]);
            let _s = t.span("rgsqrf", &[("m", Value::from(64u64))]);
            t.op(
                "gemm",
                &[
                    ("phase", Value::from("update")),
                    ("class", Value::from("tc")),
                    ("secs", Value::F64(update_secs)),
                    ("flops", Value::F64(2e6)),
                    ("rounded", Value::from(100u64)),
                    ("overflow", Value::from(1u64)),
                ],
            );
            t.op(
                "gemm",
                &[
                    ("phase", Value::from("panel")),
                    ("class", Value::from("fp32")),
                    ("secs", Value::F64(2e-3)),
                    ("flops", Value::F64(1e6)),
                ],
            );
            t.op(
                "round_half",
                &[("phase", Value::from("update")), ("rounded", Value::from(50u64))],
            );
        }
        {
            let _e = t.span("experiment", &[("id", Value::from("fig7"))]);
            t.op(
                "gemv",
                &[
                    ("phase", Value::from("solve")),
                    ("class", Value::from("fp32")),
                    ("secs", Value::F64(1e-4)),
                ],
            );
        }
        t.op(
            "engine.segment",
            &[
                ("engine", Value::from(1u64)),
                ("job", Value::from(0u64)),
                ("kind", Value::from("rgsqrf")),
                ("start_secs", Value::F64(0.0)),
                ("end_secs", Value::F64(0.5)),
                ("fault_injected", Value::from(2u64)),
                ("fault_detected", Value::from(2u64)),
            ],
        );
        t.op("fleet.summary", &[("jobs", Value::from(1u64))]);
        sink.snapshot()
    }

    #[test]
    fn tree_places_ops_under_span_phase_class() {
        let tree = AttributionTree::from_events(&synth(1e-3));
        let exp = tree.root.children.get("experiment:fig6").unwrap();
        let qr = exp.children.get("rgsqrf").unwrap();
        let upd = qr.children.get("phase:update").unwrap();
        let tc = upd.children.get("class:tc").unwrap();
        assert_eq!(tc.own.ops, 1);
        assert_eq!(tc.own.secs, 1e-3);
        assert_eq!(tc.own.rounded, 100);
        assert_eq!(tc.own.overflow, 1);
        // The classless round_half op stops at the phase node.
        assert_eq!(upd.own.rounded, 50);
        // The fleet branch carries the segment, not the span side.
        let seg = tree.root.children.get("fleet").unwrap();
        let e1 = seg.children.get("engine:1").unwrap();
        let kind = e1.children.get("kind:rgsqrf").unwrap();
        assert_eq!(kind.own.secs, 0.5);
        assert_eq!(kind.own.fault_injected, 2);
        // fleet.summary is a rollup of the above: excluded.
        assert!(!tree.root.children.contains_key("fleet.summary"));
    }

    #[test]
    fn identical_traces_attribute_zero_everywhere() {
        let events = synth(1e-3);
        let diff = TraceDiff::between_events(&events, &events);
        assert!(diff.is_zero());
        assert!(diff.blame(0).is_empty());
        fn all_zero(n: &DiffNode) -> bool {
            n.own.is_zero() && n.subtree.is_zero() && n.children.iter().all(all_zero)
        }
        assert!(all_zero(&diff.root));
        assert!(diff.render_text(5).contains("runs are identical"));
    }

    #[test]
    fn seeded_regression_is_blamed_at_the_right_node() {
        // Bump the modeled cost of the update-phase TC GEMM only: the top
        // blame row must be exactly that span/phase/class node.
        let diff = TraceDiff::between_events(&synth(1e-3), &synth(3e-3));
        let rows = diff.blame(3);
        assert_eq!(
            rows[0].path,
            "experiment:fig6/rgsqrf/phase:update/class:tc"
        );
        assert!((rows[0].delta.secs - 2e-3).abs() < 1e-15);
        assert_eq!(rows[0].score, 1.0);
        // Nothing else moved, so there is exactly one row.
        assert_eq!(rows.len(), 1);
        assert!((diff.root.subtree.secs - 2e-3).abs() < 1e-15);
    }

    #[test]
    fn pure_rounding_regressions_surface_without_time_deltas() {
        let base = synth(1e-3);
        let mut cur = synth(1e-3);
        for ev in &mut cur {
            if ev.name == "round_half" {
                for (k, v) in &mut ev.fields {
                    if k == "rounded" {
                        *v = Value::from(500u64);
                    }
                }
            }
        }
        let diff = TraceDiff::between_events(&base, &cur);
        let rows = diff.blame(1);
        assert_eq!(rows[0].path, "experiment:fig6/rgsqrf/phase:update");
        assert_eq!(rows[0].delta.rounded, 450);
        assert_eq!(rows[0].delta.secs, 0.0);
    }

    #[test]
    fn attribution_is_invariant_to_op_interleaving() {
        // Two ops landing on the same node, delivered in either order (as
        // different --threads schedules interleave them): the sorted-fold
        // accumulator must produce bit-identical trees. The values are
        // chosen so a naive left-to-right fold would differ in the last
        // ulp between the two orders.
        let (x, y, z) = (0.1f64, 0.2f64, 0.3f64);
        assert_ne!(x + y + z, z + y + x, "values no longer order-sensitive");
        let emit = |order: &[f64]| -> Vec<Event> {
            let sink = Arc::new(MemSink::new());
            let t = Tracer::new(sink.clone());
            let _s = t.span("rgsqrf", &[]);
            for &v in order {
                t.op(
                    "gemm",
                    &[
                        ("phase", Value::from("update")),
                        ("class", Value::from("tc")),
                        ("secs", Value::F64(v)),
                    ],
                );
            }
            sink.snapshot()
        };
        let a = AttributionTree::from_events(&emit(&[x, y, z]));
        let b = AttributionTree::from_events(&emit(&[z, y, x]));
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a, b);
    }

    #[test]
    fn conservation_holds_at_every_node() {
        // Seeded pseudo-random pair of streams (splitmix64, no external
        // RNG): at every diff node the subtree delta must equal the own
        // delta plus the children's subtree deltas, re-folded in the same
        // child order — deltas never leak between levels.
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn random_events(seed: u64) -> Vec<Event> {
            let sink = Arc::new(MemSink::new());
            let t = Tracer::new(sink.clone());
            let mut s = seed;
            let phases = ["panel", "update", "solve"];
            let classes = ["tc", "fp32", "fp64"];
            for _ in 0..4 {
                let _sp = t.span("experiment", &[("id", Value::from("x"))]);
                for _ in 0..(splitmix(&mut s) % 20) {
                    let p = phases[(splitmix(&mut s) % 3) as usize];
                    let c = classes[(splitmix(&mut s) % 3) as usize];
                    let secs = (splitmix(&mut s) % 1000) as f64 * 1e-6;
                    t.op(
                        "gemm",
                        &[
                            ("phase", Value::from(p)),
                            ("class", Value::from(c)),
                            ("secs", Value::F64(secs)),
                            ("flops", Value::F64(secs * 1e12)),
                            ("rounded", Value::from(splitmix(&mut s) % 100)),
                        ],
                    );
                }
            }
            sink.snapshot()
        }
        for seed in 1..20u64 {
            let diff = TraceDiff::between_events(
                &random_events(seed),
                &random_events(seed.wrapping_mul(0x5851_f42d_4c95_7f2d)),
            );
            fn check(n: &DiffNode) {
                let mut expect = n.own.clone();
                for c in &n.children {
                    expect.add(&c.subtree);
                }
                assert_eq!(expect, n.subtree, "leak at {:?}", n.path);
                for c in &n.children {
                    check(c);
                }
            }
            check(&diff.root);
        }
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let diff = TraceDiff::between_events(&synth(1e-3), &synth(2e-3));
        let a = diff.to_json(5);
        let b = diff.to_json(5);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\":\"tcqr.tracediff.v1\""));
        assert!(a.contains("\"rows\":["));
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(1.5), "1.5");
    }
}
