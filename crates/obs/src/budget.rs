//! Rounding-error budgets: per-phase accounting of measured rounding
//! events against Yang-Fox-Sanders-style modeled bounds.
//!
//! Every charged GEMM in the trace carries its compute class and inner
//! dimension `k`; from those the per-phase *budget* accumulates the
//! first-order composition of the per-product error bounds of Yang, Fox &
//! Sanders (arXiv 1912.06217): deterministically
//! `2·u_in + u_in² + γ_k(u32)` per TensorCore product (fp16 inputs, fp32
//! accumulation) and probabilistically `λ(2·u_in/√k + √k·u32)` with
//! `λ = 6` (failure probability ≈ 4·exp(-λ²/2) ≈ 6e-8 per entry), with
//! the corresponding `γ_k` terms for pure fp32/fp64 products. Alongside
//! the modeled bounds, each phase tallies the rounding events the
//! simulator actually measured (elements rounded, overflows, underflows,
//! NaNs), so an accuracy regression attributes to a *phase* — "the update
//! GEMMs' modeled bound doubled", "panel roundings started overflowing" —
//! instead of only moving a final residual.
//!
//! The unit-roundoff constants are deliberately duplicated from
//! `tcqr_core::error_analysis` (this crate depends only on `tcqr-trace`
//! by design); a cross-crate test in `tcqr-bench` asserts they stay equal.
//!
//! Like the rest of the attribution layer, budgets are post-hoc trace
//! consumers: bound contributions are folded through the order-independent
//! [`StableSum`](crate::diff), so the budget — and the `error.budget`
//! events it emits — is bit-identical for any `--threads` interleaving.

use std::collections::BTreeMap;

use tcqr_trace::{Event, EventKind, Tracer, Value};

use crate::diff::{json_num, json_str, StableSum};
use crate::timeline::Digest;

/// Unit roundoff of IEEE fp16 (2^-11). Mirrors `tcqr_core::error_analysis::U16`.
pub const U16: f64 = 4.8828125e-4;
/// Unit roundoff of IEEE fp32 (2^-24). Mirrors `tcqr_core::error_analysis::U32`.
pub const U32: f64 = 5.960464477539063e-8;
/// Unit roundoff of IEEE fp64 (2^-53).
pub const U64_UNIT: f64 = 1.1102230246251565e-16;
/// Probabilistic-bound confidence multiplier: failure probability
/// ≈ `4 exp(-λ²/2)` ≈ 6e-8 per entry at `λ = 6`.
pub const LAMBDA: f64 = 6.0;

/// `γ_n(u) = n·u / (1 - n·u)`, saturating to `+∞` once `n·u >= 1` (the
/// classical bound is vacuous there; `+∞` keeps that visible instead of
/// going negative).
pub fn gamma(n: f64, u: f64) -> f64 {
    let nu = n * u;
    if nu >= 1.0 {
        f64::INFINITY
    } else {
        nu / (1.0 - nu)
    }
}

/// Deterministic per-product bound for a `k`-deep accumulation in `class`.
fn det_bound(class: &str, k: f64) -> f64 {
    match class {
        "tc" => 2.0 * U16 + U16 * U16 + gamma(k, U32),
        "fp32" => gamma(k, U32),
        _ => gamma(k, U64_UNIT),
    }
}

/// Probabilistic (`λ = 6`) per-product bound for a `k`-deep accumulation.
fn prob_bound(class: &str, k: f64) -> f64 {
    let sk = k.max(1.0).sqrt();
    match class {
        "tc" => LAMBDA * (2.0 * U16 / sk + sk * U32),
        "fp32" => LAMBDA * sk * U32,
        _ => LAMBDA * sk * U64_UNIT,
    }
}

/// One phase's measured rounding events and modeled error budget.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseBudget {
    /// Phase label (`"panel"`, `"update"`, ...).
    pub phase: String,
    /// Charged ops observed in the phase.
    pub ops: u64,
    /// GEMMs (ops carrying a `k` inner dimension) among them.
    pub gemms: u64,
    /// Elements rounded to half precision.
    pub rounded: u64,
    /// Rounding overflows (clamped to ±max).
    pub overflow: u64,
    /// Rounding underflows (flushed to zero).
    pub underflow: u64,
    /// NaNs seen while rounding.
    pub nan: u64,
    /// First-order composition of the deterministic per-product bounds.
    pub det_bound: f64,
    /// First-order composition of the probabilistic (`λ = 6`) bounds.
    pub prob_bound: f64,
}

impl PhaseBudget {
    /// Fraction of rounded elements that overflowed (0 when none rounded).
    pub fn overflow_rate(&self) -> f64 {
        if self.rounded == 0 {
            0.0
        } else {
            self.overflow as f64 / self.rounded as f64
        }
    }
}

#[derive(Default)]
struct PhaseAcc {
    ops: u64,
    gemms: u64,
    rounded: u64,
    overflow: u64,
    underflow: u64,
    nan: u64,
    det: StableSum,
    prob: StableSum,
}

/// A run's rounding-error budget, one [`PhaseBudget`] per phase in phase
/// order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ErrorBudget {
    /// Per-phase budgets, sorted by phase name.
    pub phases: Vec<PhaseBudget>,
}

/// Op names that never contribute to a budget: post-hoc rollups (including
/// previously emitted budgets) and the fleet narration.
fn excluded(name: &str) -> bool {
    name.starts_with("fleet.")
        || name.starts_with("slo.")
        || name == "error.budget"
        || name == "engine.segment"
}

impl ErrorBudget {
    /// Fold an event stream into per-phase budgets.
    pub fn from_events(events: &[Event]) -> ErrorBudget {
        let mut acc: BTreeMap<String, PhaseAcc> = BTreeMap::new();
        for ev in events {
            if ev.kind != EventKind::Op || excluded(&ev.name) {
                continue;
            }
            let Some(phase) = ev.str_field("phase") else {
                continue;
            };
            let a = acc.entry(phase.to_string()).or_default();
            a.ops += 1;
            a.rounded = a.rounded.saturating_add(ev.u64_field("rounded").unwrap_or(0));
            a.overflow = a
                .overflow
                .saturating_add(ev.u64_field("overflow").unwrap_or(0));
            a.underflow = a
                .underflow
                .saturating_add(ev.u64_field("underflow").unwrap_or(0));
            a.nan = a.nan.saturating_add(ev.u64_field("nan").unwrap_or(0));
            if let (Some(class), Some(k)) = (ev.str_field("class"), ev.u64_field("k")) {
                a.gemms += 1;
                let k = (k as f64).max(1.0);
                a.det.push(det_bound(class, k));
                a.prob.push(prob_bound(class, k));
            }
        }
        ErrorBudget {
            phases: acc
                .into_iter()
                .map(|(phase, a)| PhaseBudget {
                    phase,
                    ops: a.ops,
                    gemms: a.gemms,
                    rounded: a.rounded,
                    overflow: a.overflow,
                    underflow: a.underflow,
                    nan: a.nan,
                    det_bound: a.det.finish(),
                    prob_bound: a.prob.finish(),
                })
                .collect(),
        }
    }

    /// True when no phased ops were found.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Narrate the budget as one `error.budget` op per phase. These are
    /// rollups of already-traced telemetry: the report/bridge/differ all
    /// recognize the name and keep them out of charge accounting.
    pub fn emit(&self, tracer: &Tracer) {
        for p in &self.phases {
            tracer.op(
                "error.budget",
                &[
                    ("phase", Value::from(p.phase.as_str())),
                    ("ops", Value::from(p.ops)),
                    ("gemms", Value::from(p.gemms)),
                    ("rounded", Value::from(p.rounded)),
                    ("overflow", Value::from(p.overflow)),
                    ("underflow", Value::from(p.underflow)),
                    ("nan", Value::from(p.nan)),
                    ("det_bound", Value::F64(p.det_bound)),
                    ("prob_bound", Value::F64(p.prob_bound)),
                ],
            );
        }
    }

    /// Human "numerical blame" table for a single run.
    pub fn render_text(&self) -> String {
        if self.is_empty() {
            return "error budget: (no phased ops in trace)\n".to_string();
        }
        let mut out = String::from("error budget (per phase):\n");
        let w = self
            .phases
            .iter()
            .map(|p| p.phase.len())
            .max()
            .unwrap_or(5)
            .max(5);
        out.push_str(&format!(
            "  {:<w$} {:>7} {:>7} {:>10} {:>6} {:>6} {:>5} {:>11} {:>11}\n",
            "phase", "ops", "gemms", "rounded", "ovf", "unf", "nan", "det_bound", "prob_bound",
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "  {:<w$} {:>7} {:>7} {:>10} {:>6} {:>6} {:>5} {:>11.3e} {:>11.3e}\n",
                p.phase,
                p.ops,
                p.gemms,
                p.rounded,
                p.overflow,
                p.underflow,
                p.nan,
                p.det_bound,
                p.prob_bound,
            ));
        }
        out
    }

    /// Per-phase delta table between two budgets, most salient phase
    /// first (same normalized-own-delta ranking as the trace differ).
    pub fn blame(base: &ErrorBudget, cur: &ErrorBudget) -> Vec<BudgetDelta> {
        let empty = PhaseBudget::default();
        let mut names: Vec<&String> = base.phases.iter().map(|p| &p.phase).collect();
        for p in &cur.phases {
            if !base.phases.iter().any(|b| b.phase == p.phase) {
                names.push(&p.phase);
            }
        }
        names.sort();
        let lookup = |b: &'_ ErrorBudget, name: &str| -> PhaseBudget {
            b.phases
                .iter()
                .find(|p| p.phase == name)
                .unwrap_or(&empty)
                .clone()
        };
        let mut rows: Vec<BudgetDelta> = names
            .into_iter()
            .map(|name| {
                let b = lookup(base, name);
                let c = lookup(cur, name);
                BudgetDelta {
                    phase: name.clone(),
                    score: 0.0,
                    d_rounded: c.rounded as i64 - b.rounded as i64,
                    d_overflow: c.overflow as i64 - b.overflow as i64,
                    d_underflow: c.underflow as i64 - b.underflow as i64,
                    d_nan: c.nan as i64 - b.nan as i64,
                    d_det_bound: sub_bound(b.det_bound, c.det_bound),
                    d_prob_bound: sub_bound(b.prob_bound, c.prob_bound),
                    base: b,
                    cur: c,
                }
            })
            .filter(|r| !r.is_zero())
            .collect();
        let mut maxes = [0.0f64; 6];
        for r in &rows {
            for (m, v) in maxes.iter_mut().zip(r.metrics()) {
                *m = m.max(v.abs());
            }
        }
        for r in &mut rows {
            let mut score = 0.0;
            for (m, v) in maxes.iter().zip(r.metrics()) {
                if *m > 0.0 && v.is_finite() {
                    score = f64::max(score, v.abs() / *m);
                } else if v.abs() > 0.0 {
                    score = 1.0; // ±∞ delta: maximally salient
                }
            }
            r.score = score;
        }
        rows.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.phase.cmp(&b.phase))
        });
        rows
    }

    /// Human blame table between two budgets.
    pub fn render_blame(base: &ErrorBudget, cur: &ErrorBudget) -> String {
        let rows = ErrorBudget::blame(base, cur);
        if rows.is_empty() {
            return "error budget diff: no per-phase numerical deltas\n".to_string();
        }
        let w = rows.iter().map(|r| r.phase.len()).max().unwrap().max(5);
        let mut out = String::from("error budget diff (numerical blame):\n");
        out.push_str(&format!(
            "  {:<5} {:<w$} {:>10} {:>6} {:>6} {:>5} {:>12} {:>12}\n",
            "score", "phase", "Δround", "Δovf", "Δunf", "Δnan", "Δdet_bound", "Δprob_bound",
        ));
        for r in &rows {
            out.push_str(&format!(
                "  {:<5.2} {:<w$} {:>+10} {:>+6} {:>+6} {:>+5} {:>+12.3e} {:>+12.3e}\n",
                r.score,
                r.phase,
                r.d_rounded,
                r.d_overflow,
                r.d_underflow,
                r.d_nan,
                r.d_det_bound,
                r.d_prob_bound,
            ));
        }
        out
    }

    /// Machine-readable budget.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"tcqr.errorbudget.v1\",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"phase\":{},\"ops\":{},\"gemms\":{},\"rounded\":{},\"overflow\":{},\
                 \"underflow\":{},\"nan\":{},\"det_bound\":{},\"prob_bound\":{}}}",
                json_str(&p.phase),
                p.ops,
                p.gemms,
                p.rounded,
                p.overflow,
                p.underflow,
                p.nan,
                json_num(p.det_bound),
                json_num(p.prob_bound),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Bit-exact FNV-1a digest of the budget.
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.push_bytes(self.to_json().as_bytes());
        for p in &self.phases {
            d.push_f64(p.det_bound);
            d.push_f64(p.prob_bound);
        }
        d.finish()
    }
}

/// `cur - base` with `∞ - ∞ = 0` (both budgets saturated: no delta).
fn sub_bound(base: f64, cur: f64) -> f64 {
    if base.to_bits() == cur.to_bits() {
        0.0
    } else {
        cur - base
    }
}

/// One phase's numerical delta between two budgets.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BudgetDelta {
    /// Phase label.
    pub phase: String,
    /// Salience in `[0, 1]` (normalized like [`crate::diff::BlameRow`]).
    pub score: f64,
    /// Δ elements rounded.
    pub d_rounded: i64,
    /// Δ rounding overflows.
    pub d_overflow: i64,
    /// Δ rounding underflows.
    pub d_underflow: i64,
    /// Δ rounding NaNs.
    pub d_nan: i64,
    /// Δ deterministic bound.
    pub d_det_bound: f64,
    /// Δ probabilistic bound.
    pub d_prob_bound: f64,
    /// Base phase budget.
    pub base: PhaseBudget,
    /// Current phase budget.
    pub cur: PhaseBudget,
}

impl BudgetDelta {
    fn metrics(&self) -> [f64; 6] {
        [
            self.d_rounded as f64,
            self.d_overflow as f64,
            self.d_underflow as f64,
            self.d_nan as f64,
            self.d_det_bound,
            self.d_prob_bound,
        ]
    }

    /// True when nothing moved in this phase.
    pub fn is_zero(&self) -> bool {
        self.d_rounded == 0
            && self.d_overflow == 0
            && self.d_underflow == 0
            && self.d_nan == 0
            && self.d_det_bound == 0.0
            && self.d_prob_bound == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tcqr_trace::MemSink;

    fn gemm(t: &Tracer, phase: &str, class: &str, k: u64, rounded: u64, overflow: u64) {
        t.op(
            "gemm",
            &[
                ("phase", Value::from(phase)),
                ("class", Value::from(class)),
                ("m", Value::from(64u64)),
                ("n", Value::from(64u64)),
                ("k", Value::from(k)),
                ("secs", Value::F64(1e-4)),
                ("flops", Value::F64(1e6)),
                ("rounded", Value::from(rounded)),
                ("overflow", Value::from(overflow)),
            ],
        );
    }

    fn sample(k: u64, overflow: u64) -> Vec<Event> {
        let sink = Arc::new(MemSink::new());
        let t = Tracer::new(sink.clone());
        gemm(&t, "update", "tc", k, 4096, overflow);
        gemm(&t, "panel", "fp32", 64, 0, 0);
        t.op(
            "round_half",
            &[("phase", Value::from("update")), ("rounded", Value::from(100u64))],
        );
        t.op("fleet.summary", &[("jobs", Value::from(1u64))]);
        sink.snapshot()
    }

    #[test]
    fn bounds_match_the_yang_et_al_forms() {
        let k = 4096.0;
        assert_eq!(det_bound("tc", k), 2.0 * U16 + U16 * U16 + gamma(k, U32));
        assert_eq!(
            prob_bound("tc", k),
            LAMBDA * (2.0 * U16 / k.sqrt() + k.sqrt() * U32)
        );
        assert_eq!(det_bound("fp32", k), gamma(k, U32));
        // The probabilistic bound beats the deterministic one at depth.
        assert!(prob_bound("tc", k) < det_bound("tc", k));
        // γ saturates instead of going negative.
        assert_eq!(gamma(1e12, U16), f64::INFINITY);
        assert!(gamma(10.0, U32) > 9.9 * U32 && gamma(10.0, U32) < 10.1 * U32);
    }

    #[test]
    fn budget_accumulates_per_phase() {
        let b = ErrorBudget::from_events(&sample(4096, 7));
        assert_eq!(b.phases.len(), 2);
        let panel = &b.phases[0];
        assert_eq!(panel.phase, "panel");
        assert_eq!((panel.ops, panel.gemms), (1, 1));
        assert_eq!(panel.det_bound, det_bound("fp32", 64.0));
        let update = &b.phases[1];
        assert_eq!(update.phase, "update");
        // gemm + round_half ops, one gemm.
        assert_eq!((update.ops, update.gemms), (2, 1));
        assert_eq!(update.rounded, 4196);
        assert_eq!(update.overflow, 7);
        assert_eq!(update.det_bound, det_bound("tc", 4096.0));
        assert!((update.overflow_rate() - 7.0 / 4196.0).abs() < 1e-15);
        // Rollup events never feed a budget.
        assert!(b.phases.iter().all(|p| p.phase != "jobs"));
    }

    #[test]
    fn emitted_budget_round_trips_and_does_not_self_feed() {
        let b = ErrorBudget::from_events(&sample(4096, 0));
        let sink = Arc::new(MemSink::new());
        b.emit(&Tracer::new(sink.clone()));
        let emitted = sink.snapshot();
        assert_eq!(emitted.len(), 2);
        assert!(emitted.iter().all(|e| e.name == "error.budget"));
        assert_eq!(emitted[1].str_field("phase"), Some("update"));
        assert_eq!(emitted[1].u64_field("rounded"), Some(4196));
        // Re-deriving a budget from a stream that already contains
        // error.budget ops must ignore them (no double counting).
        let mut stream = sample(4096, 0);
        stream.extend(emitted);
        assert_eq!(ErrorBudget::from_events(&stream), b);
    }

    #[test]
    fn blame_ranks_the_phase_whose_bound_moved() {
        // Same trace except the update GEMM deepens (k 512 -> 4096) and
        // starts overflowing: update must own the blame.
        let base = ErrorBudget::from_events(&sample(512, 0));
        let cur = ErrorBudget::from_events(&sample(4096, 9));
        let rows = ErrorBudget::blame(&base, &cur);
        assert_eq!(rows[0].phase, "update");
        assert_eq!(rows[0].score, 1.0);
        assert_eq!(rows[0].d_overflow, 9);
        assert!(rows[0].d_det_bound > 0.0);
        assert_eq!(rows.len(), 1, "panel did not move");
        let txt = ErrorBudget::render_blame(&base, &cur);
        assert!(txt.contains("update"));
        // Identical budgets blame nothing.
        assert!(ErrorBudget::blame(&base, &base).is_empty());
    }

    #[test]
    fn budget_is_invariant_to_op_interleaving() {
        let events = sample(4096, 1);
        let mut reordered = events.clone();
        reordered.swap(0, 2); // gemm(update) and round_half swap arrival order
        assert_eq!(
            ErrorBudget::from_events(&events).digest(),
            ErrorBudget::from_events(&reordered).digest()
        );
    }

    #[test]
    fn json_is_stable() {
        let b = ErrorBudget::from_events(&sample(4096, 1));
        assert_eq!(b.to_json(), b.to_json());
        assert!(b.to_json().starts_with("{\"schema\":\"tcqr.errorbudget.v1\""));
        assert!(ErrorBudget::default().is_empty());
        assert!(ErrorBudget::default()
            .render_text()
            .contains("no phased ops"));
    }
}
