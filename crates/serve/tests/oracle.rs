//! Service-level integration tests: the deterministic batch scheduler as a
//! bit-exact oracle for the live service (including mid-stream fault
//! arming), drain under load, and admission control under an overload
//! burst.

use std::sync::Arc;

use tcqr_batch::{
    jobgen::{self, JobMixConfig},
    result_fingerprint, BatchScheduler, EnginePool, Job,
};
use tcqr_core::RgsqrfConfig;
use tcqr_obs::{evaluate, FleetTimeline, SloSpec};
use tcqr_serve::{interleave_execution_order, Handle, Priority, ServeConfig, ServeError, Ticket};
use tcqr_trace::{MemSink, Tracer};
use tensor_engine::{EngineConfig, FaultPlan};

/// Submit a burst of pre-generated jobs with alternating priorities and
/// wait for every result, recording each ticket's result fingerprint.
fn run_burst(
    handle: &Handle,
    jobs: impl IntoIterator<Item = tcqr_batch::BatchJob>,
    fps: &mut Vec<(usize, u64)>,
) {
    let tickets: Vec<Ticket> = jobs
        .into_iter()
        .enumerate()
        .map(|(i, job)| {
            let pri = if i % 2 == 0 { Priority::High } else { Priority::Low };
            handle.submit_batch_job(job, pri).expect("no admission gate")
        })
        .collect();
    for t in tickets {
        let id = t.id();
        let res = t.wait().expect("worker alive");
        fps.push((id, result_fingerprint(&res)));
    }
}

/// Chaos streaming vs the deterministic oracle: two bursts with a fault
/// plan armed in between, mixed priorities racing the workers. The
/// realized per-engine order is interleaved back into a submission order
/// for `BatchScheduler::run`, which must reproduce every result — and the
/// final engine state — bit for bit.
#[test]
fn chaos_stream_matches_the_batch_oracle_bit_for_bit() {
    const K: usize = 3;
    const BURST: usize = 9; // divisible by K so each burst splits 3/3/3
    let mix = JobMixConfig {
        seed: 77,
        jobs: 2 * BURST,
        m: 96,
        n: 24,
    };
    let plan = FaultPlan::all(4242);

    // Live service: burst, settle, arm faults, burst again.
    let handle = Handle::start(ServeConfig {
        engines: K,
        ..ServeConfig::default()
    });
    let mut jobs = jobgen::job_mix(&mix);
    let second: Vec<_> = jobs.split_off(BURST);
    let mut serve_fps: Vec<(usize, u64)> = Vec::new();
    run_burst(&handle, jobs, &mut serve_fps);
    // Every burst-1 ticket has delivered, so the workers are idle and the
    // arming point is a deterministic job boundary on every engine.
    handle.pool().arm(&plan);
    run_burst(&handle, second, &mut serve_fps);
    let out = handle.drain();
    assert_eq!(out.admitted, 2 * BURST as u64);
    assert_eq!(out.completed, 2 * BURST as u64);
    serve_fps.sort_by_key(|&(id, _)| id);

    // Split the realized order at the burst boundary (tickets 0..BURST
    // settled before any of BURST.. was submitted).
    let split = |pred: &dyn Fn(usize) -> bool| -> Vec<Vec<usize>> {
        out.execution_order
            .iter()
            .map(|lane| lane.iter().copied().filter(|&t| pred(t)).collect())
            .collect()
    };
    let order1 = interleave_execution_order(&split(&|t| t < BURST));
    let order2 = interleave_execution_order(&split(&|t| t >= BURST));

    // Oracle: one persistent scheduler + pool, same arming point, jobs
    // permuted so static lane e replays engine e's realized sequence.
    let all_jobs = jobgen::job_mix(&mix);
    let mut slots: Vec<Option<tcqr_batch::BatchJob>> = all_jobs.into_iter().map(Some).collect();
    let permute = |order: &[usize], slots: &mut Vec<Option<tcqr_batch::BatchJob>>| {
        order
            .iter()
            .map(|&t| slots[t].take().expect("each ticket ran exactly once"))
            .collect::<Vec<_>>()
    };
    let jobs1 = permute(&order1, &mut slots);
    let jobs2 = permute(&order2, &mut slots);

    let oracle_pool = EnginePool::new(K, EngineConfig::default());
    let sched = BatchScheduler::with_threads(2);
    let out1 = sched.run(&oracle_pool, &jobs1);
    oracle_pool.arm(&plan);
    let out2 = sched.run(&oracle_pool, &jobs2);

    let mut oracle_fps: Vec<(usize, u64)> = order1
        .iter()
        .zip(&out1.results)
        .chain(order2.iter().zip(&out2.results))
        .map(|(&t, r)| (t, result_fingerprint(r)))
        .collect();
    oracle_fps.sort_by_key(|&(id, _)| id);

    assert_eq!(serve_fps, oracle_fps, "per-ticket results must be bit-identical");
    assert_eq!(
        out.pool.fingerprint(),
        oracle_pool.fingerprint(),
        "engine state (clocks, ledgers, fault stats) must be bit-identical"
    );
    // The chaos plan actually did something, or this test proves nothing.
    let injected: u64 = out.report.engines.iter().map(|e| e.fault.injected).sum();
    assert!(injected > 0, "fault plan never fired");
}

/// Drain under load: submit a pile of work and drain immediately. No job
/// may be lost, none may run twice, and every ticket still delivers.
#[test]
fn drain_under_load_loses_nothing_and_runs_nothing_twice() {
    const N: usize = 12;
    let handle = Handle::start(ServeConfig {
        engines: 2,
        ..ServeConfig::default()
    });
    let tickets: Vec<Ticket> = (0..N)
        .map(|i| {
            let job = Job::rgsqrf(
                jobgen::gaussian_f32(48, 12, 500 + i as u64),
                RgsqrfConfig {
                    cutoff: 16,
                    ..RgsqrfConfig::default()
                },
            );
            handle.submit(job, Priority::Low).expect("intake open")
        })
        .collect();
    // Drain races the queued work: intake closes, but everything already
    // admitted must still run exactly once.
    let out = handle.drain();
    assert_eq!(out.admitted, N as u64);
    assert_eq!(out.completed, N as u64);
    assert_eq!(out.report.jobs.len(), N);

    // Results survive the drain, one per ticket.
    for t in tickets {
        let id = t.id();
        let res = t.wait().expect("result buffered through drain");
        assert!(res.is_ok(), "job {id} failed");
    }

    // The realized order is a permutation of the admitted tickets: nothing
    // lost, nothing duplicated.
    let mut ran: Vec<usize> = out.execution_order.iter().flatten().copied().collect();
    ran.sort_unstable();
    assert_eq!(ran, (0..N).collect::<Vec<_>>());
    // Report jobs are engine-major in execution order; with one priority
    // lane per engine that is ticket order within each engine, and the
    // per-engine segments tile the clock without gaps or overlaps.
    for (i, job) in out.report.jobs.iter().enumerate() {
        let (engine, slot) = (i / (N / 2), i % (N / 2));
        assert_eq!(job.engine, engine, "engine-major report order");
        assert_eq!(job.index, 2 * slot + engine, "round-robin pinning");
        if slot > 0 {
            let prev = &out.report.jobs[i - 1];
            let gap = job.start_secs - (prev.start_secs + prev.exec_secs);
            assert!(
                gap.abs() <= 1e-12 * job.start_secs.abs().max(1.0),
                "segments are back-to-back on the engine clock (gap {gap:e})"
            );
        }
    }
}

/// An overload burst is shed with typed `Overloaded` errors instead of
/// degrading admitted jobs' queue waits past the SLO spec.
#[test]
fn overload_burst_is_rejected_not_degraded() {
    const SPEC: &str = r#"
[objective.queue-wait]
kind = "queue_wait"
threshold_secs = 1.0
target = 0.9
window_secs = 1.0
max_burn_rate = 1.0
"#;
    let spec = SloSpec::parse(SPEC).expect("well-formed spec");
    let handle = Handle::start(ServeConfig {
        engines: 2,
        slo: Some(spec.clone()),
        ..ServeConfig::default()
    });

    let mut accepted: Vec<Ticket> = Vec::new();
    let mut rejected = 0u64;
    for i in 0..32u64 {
        let job = Job::rgsqrf(
            jobgen::gaussian_f32(128, 32, 9000 + i),
            RgsqrfConfig {
                cutoff: 32,
                caqr_width: 8,
                ..RgsqrfConfig::default()
            },
        );
        match handle.submit(job, Priority::Low) {
            Ok(t) => accepted.push(t),
            Err(ServeError::Overloaded { burn, limit }) => {
                assert!(burn > limit, "rejection must cite burn {burn} > limit {limit}");
                rejected += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    // The first K submissions always land on idle engines; the burst
    // behind them trips the burn-rate gate.
    assert!(accepted.len() >= 2, "idle engines must admit");
    assert!(rejected > 0, "a 32-job burst on 2 engines must shed load");

    for t in accepted {
        t.wait().expect("worker alive").expect("admitted jobs are well-posed");
    }
    let out = handle.drain();
    assert_eq!(out.rejected, rejected);
    assert!(out.admission_enabled);
    // Admission kept the live window healthy: the worst burn rate the
    // window ever saw stays within the spec.
    assert!(
        out.worst_burn <= out.burn_limit,
        "worst burn {} exceeded limit {}",
        out.worst_burn,
        out.burn_limit
    );
    // And the post-hoc SLO evaluation over the emitted trace agrees: no
    // breach the admission controller should have prevented.
    let sink = Arc::new(MemSink::new());
    out.emit(&Tracer::new(sink.clone()));
    let events = sink.snapshot();
    let timeline = FleetTimeline::from_events(&events);
    let report = evaluate(&spec, &timeline, &events);
    for o in &report.outcomes {
        assert!(o.healthy, "objective {} breached despite admission control", o.name);
    }
    // Queue-wait percentiles of admitted jobs stay under the threshold.
    assert!(out.report.queue_wait_percentile_secs(0.99) <= 1.0);
}
