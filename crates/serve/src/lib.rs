//! `tcqr-serve`: a long-lived solver service over the batched engine pool.
//!
//! The batch layer (`tcqr-batch`) answers "run these N jobs and give me a
//! report"; this crate answers "keep K engines warm and feed them a job
//! *stream*". It sits at the top of the stack:
//!
//! ```text
//! tcqr-serve   service: priority lanes, admission control, drain
//! tcqr-batch   pool + deterministic scheduler (the service's oracle)
//! tcqr-obs     SLOs (BurnWindow drives admission), timelines, dashboards
//! tcqr-core    solvers behind the Solver trait
//! ```
//!
//! Standard library only — threads, channels, and condvars; no new
//! external dependencies.
//!
//! ## Shape of the service
//!
//! [`Handle::start`] builds an [`tcqr_batch::EnginePool`] and spawns one
//! worker thread per engine. [`Handle::submit`] admits a job, pins it to
//! engine `ticket mod K` (the batch scheduler's static round-robin), and
//! enqueues it on that engine's High or Low FIFO lane; the worker drains
//! High before Low and streams each result into the ticket's private
//! channel the moment it lands. [`Handle::drain`] closes intake, finishes
//! everything queued, joins the workers, and returns a [`DrainOutcome`]
//! whose [`tcqr_batch::FleetReport`] feeds the whole `tcqr-obs` stack
//! unchanged.
//!
//! ## Determinism contract
//!
//! Engines are owned exclusively by their workers and jobs are pinned at
//! admission, so each engine runs a well-defined job sequence; the only
//! live nondeterminism is the per-engine order in which priorities
//! interleave. [`DrainOutcome::oracle_order`] converts the realized order
//! into a job permutation that makes the deterministic
//! [`tcqr_batch::BatchScheduler`] replay the run bit-for-bit — the batch
//! scheduler is the service's test oracle, not a parallel implementation.
//!
//! ## Admission control
//!
//! Give [`ServeConfig::slo`] a spec with a `queue_wait` objective and the
//! service runs its burn-rate window live on the simulated clock
//! ([`tcqr_obs::BurnWindow`]): each submission is classified by its
//! projected wait (engine depth × mean exec time, conservatively infinite
//! before any history), and if admitting it would push the window's burn
//! rate past the spec's `max_burn_rate`, the submission is rejected with
//! [`ServeError::Overloaded`] instead of degrading everyone else's
//! latency. Rejections are load-shedding working as designed: they emit
//! `serve.rejected` *info* events, never warnings.
//!
//! ## Chaos tolerance
//!
//! [`ResilienceConfig`] arms the failure-handling layer: when an engine
//! dies mid-job (`tensor_engine::avail`), its worker re-homes the backlog
//! onto the survivors and the crashed job is retried within a bounded
//! budget with modeled backoff; per-job deadline watchdogs cancel jobs
//! whose simulated wait blew the deadline; a circuit breaker quarantines
//! an engine after consecutive typed failures and rehabilitates it
//! through `reset_in_place` only if it proves state-fingerprint equality
//! with a fresh engine; and degraded fleets shed [`Priority::Low`] intake
//! first. Every admitted ticket resolves exactly once — with a result or
//! a typed [`ServeError`] — and completed outputs stay bit-identical to
//! the healthy-pool batch oracle because job outputs are pure functions
//! of the job.

#![warn(missing_docs)]

pub mod error;
pub mod service;

pub use error::ServeError;
pub use service::{
    interleave_execution_order, DrainOutcome, FleetMark, Handle, Priority, ResilienceConfig,
    ServeConfig, ServeStats, Ticket,
};
