//! Typed service-level errors, distinct from the solvers' numerical
//! [`tcqr_core::TcqrError`]s: these describe what the *service* did with a
//! submission, not what an engine computed.

/// Why the service refused (or lost) a submission.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// Admission control rejected the job: admitting it would push the
    /// live queue-wait burn rate past the SLO spec. Shed load (or slow
    /// down) and resubmit later.
    Overloaded {
        /// The burn rate admitting the job would have produced.
        burn: f64,
        /// The spec's `max_burn_rate` bound.
        limit: f64,
    },
    /// The service is draining: intake is closed, in-flight jobs are being
    /// finished, and no new work is accepted.
    Draining,
    /// The worker that owned this ticket's engine is gone without
    /// delivering a result (it panicked mid-job). The submitted job's fate
    /// is unknown.
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { burn, limit } => write!(
                f,
                "serve: admission rejected job (queue-wait burn rate {burn:.3} > limit {limit:.3})"
            ),
            ServeError::Draining => write!(f, "serve: service is draining, intake closed"),
            ServeError::Disconnected => write!(f, "serve: worker gone without a result"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = ServeError::Overloaded {
            burn: 2.5,
            limit: 1.0,
        };
        let s = e.to_string();
        assert!(s.contains("2.5"), "{s}");
        assert!(s.contains("1.0"), "{s}");
        assert!(ServeError::Draining.to_string().contains("draining"));
    }
}
