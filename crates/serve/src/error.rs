//! Typed service-level errors, distinct from the solvers' numerical
//! [`tcqr_core::TcqrError`]s: these describe what the *service* did with a
//! submission, not what an engine computed.

/// Why the service refused (or lost) a submission.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// Admission control rejected the job: admitting it would push the
    /// live queue-wait burn rate past the SLO spec. Shed load (or slow
    /// down) and resubmit later.
    Overloaded {
        /// The burn rate admitting the job would have produced.
        burn: f64,
        /// The spec's `max_burn_rate` bound.
        limit: f64,
    },
    /// The service is draining: intake is closed, in-flight jobs are being
    /// finished, and no new work is accepted.
    Draining,
    /// The fleet has lost engines and the survivors cannot absorb the
    /// demand; low-priority intake is shed first (graceful degradation).
    /// High-priority submissions only see this when *no* engine remains
    /// in rotation.
    Degraded {
        /// Engines out of rotation (dead or quarantined).
        dead: usize,
        /// Engines still serving.
        alive: usize,
    },
    /// The worker that owned this ticket's engine is gone without
    /// delivering a result (it panicked mid-job with something that was
    /// not a modeled engine loss). The submitted job's fate is unknown.
    Disconnected {
        /// Pool index of the engine the ticket was pinned to at admission.
        engine: usize,
        /// The ticket id of the submission left without a result.
        job: usize,
    },
    /// The engine running (or queueing) this job died and the retry
    /// budget — or the pool of survivors — ran out before the job could
    /// be re-homed.
    EngineLost {
        /// Pool index of the engine that held the job when it was lost.
        engine: usize,
        /// The ticket id of the lost submission.
        job: usize,
    },
    /// The job waited past its deadline on the simulated clock and the
    /// watchdog cancelled it before execution started.
    DeadlineExceeded {
        /// The configured deadline the wait exceeded.
        deadline_secs: f64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { burn, limit } => write!(
                f,
                "serve: admission rejected job (queue-wait burn rate {burn:.3} > limit {limit:.3})"
            ),
            ServeError::Draining => write!(f, "serve: service is draining, intake closed"),
            ServeError::Degraded { dead, alive } => write!(
                f,
                "serve: fleet degraded ({dead} engines out of rotation, {alive} serving), intake shed"
            ),
            ServeError::Disconnected { engine, job } => {
                write!(f, "serve: worker for engine {engine} gone without a result for job {job}")
            }
            ServeError::EngineLost { engine, job } => write!(
                f,
                "serve: engine {engine} lost while holding job {job}, no retry budget or survivor left"
            ),
            ServeError::DeadlineExceeded { deadline_secs } => write!(
                f,
                "serve: job waited past its {deadline_secs:.3}s deadline, cancelled by the watchdog"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = ServeError::Overloaded {
            burn: 2.5,
            limit: 1.0,
        };
        let s = e.to_string();
        assert!(s.contains("2.5"), "{s}");
        assert!(s.contains("1.0"), "{s}");
        assert!(ServeError::Draining.to_string().contains("draining"));

        let s = ServeError::Degraded { dead: 2, alive: 4 }.to_string();
        assert!(s.contains('2') && s.contains('4'), "{s}");

        // The lossy variants name both the engine and the ticket so a
        // caller can correlate them with the fleet report.
        let s = ServeError::Disconnected { engine: 3, job: 17 }.to_string();
        assert!(s.contains("engine 3") && s.contains("job 17"), "{s}");
        let s = ServeError::EngineLost { engine: 1, job: 9 }.to_string();
        assert!(s.contains("engine 1") && s.contains("job 9"), "{s}");

        let s = ServeError::DeadlineExceeded { deadline_secs: 0.75 }.to_string();
        assert!(s.contains("0.750"), "{s}");
    }
}
