//! The service proper: worker threads owning engines, priority lanes,
//! admission control, and graceful drain.
//!
//! ## Determinism and the oracle
//!
//! Every admitted ticket `n` is pinned to engine `n mod K` at admission —
//! the same static round-robin the deterministic
//! [`tcqr_batch::BatchScheduler`] uses —
//! and each engine is owned by exactly one worker thread, so a job's
//! engine never runs anything concurrently with it. What the host's
//! scheduler *can* change is the per-engine interleaving of priorities:
//! a High submission overtakes queued Low work, so the realized per-engine
//! execution order depends on arrival timing. The service records that
//! realized order, and [`DrainOutcome::oracle_order`] converts it into a
//! job permutation for which `BatchScheduler::run` replays the exact
//! per-engine sequences — making the deterministic batch scheduler a
//! bit-exact oracle for whatever order the live service actually ran.

use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use tcqr_batch::{BatchJob, EnginePool, EngineReport, FleetReport, Job, JobOutput, JobReport};
use tcqr_core::{RecoveryPolicy, TcqrError};
use tcqr_obs::{BurnWindow, SloSpec};
use tcqr_trace::{Tracer, Value};
use tensor_engine::EngineConfig;

use crate::error::ServeError;

/// Which FIFO lane a submission joins. Workers always drain the High lane
/// of their engine before touching the Low lane; within a lane, order is
/// strictly first-in-first-out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Priority {
    /// Latency-sensitive: overtakes queued (not running) Low work.
    High,
    /// Throughput traffic.
    Low,
}

impl Priority {
    /// Stable lowercase name for reports and trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Low => "low",
        }
    }
}

/// Service construction knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Engines in the pool (one worker thread each, `>= 1`).
    pub engines: usize,
    /// Shared engine configuration / performance model.
    pub engine: EngineConfig,
    /// Recovery policy applied to jobs submitted via [`Handle::submit`]
    /// (full-knob submissions go through [`Handle::submit_batch_job`]).
    pub policy: RecoveryPolicy,
    /// SLO spec for admission control. The first `queue_wait` objective
    /// becomes the live burn-rate gate: submissions that would push the
    /// queue-wait burn rate past its `max_burn_rate` are rejected with
    /// [`ServeError::Overloaded`]. `None` (or a spec with no `queue_wait`
    /// objective) admits everything.
    pub slo: Option<SloSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            engines: 2,
            engine: EngineConfig::default(),
            policy: RecoveryPolicy::default(),
            slo: None,
        }
    }
}

/// A claim on one submitted job's result.
///
/// Results stream back per ticket: the worker sends the job's
/// `Result<JobOutput, TcqrError>` into this ticket's private channel the
/// moment the job finishes, so callers consume completions in whatever
/// order they land without polling the service.
#[derive(Debug)]
pub struct Ticket {
    id: usize,
    engine: usize,
    priority: Priority,
    rx: Receiver<Result<JobOutput, TcqrError>>,
}

impl Ticket {
    /// Admission sequence number — also the job's `index` in the final
    /// [`FleetReport`].
    pub fn id(&self) -> usize {
        self.id
    }

    /// Engine the job was pinned to at admission (`id mod engines`).
    pub fn engine(&self) -> usize {
        self.engine
    }

    /// The lane the submission joined.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Block until the job's result arrives. The outer error is the
    /// service's (worker died without delivering); the inner result is the
    /// solver's own typed outcome, exactly what
    /// [`tcqr_batch::BatchScheduler::run`]
    /// would return for this job.
    ///
    /// Results survive [`Handle::drain`]: a drained service has finished
    /// every admitted job, and each ticket's result waits buffered in its
    /// channel.
    pub fn wait(self) -> Result<Result<JobOutput, TcqrError>, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Disconnected)
    }
}

/// One queued submission, owned by its engine's worker once popped.
struct WorkItem {
    ticket: usize,
    job: BatchJob,
    /// Admission-time classification: was this job *projected* to wait
    /// past the SLO threshold? Used to release the admission look-ahead
    /// when the job completes.
    projected_bad: bool,
    /// Engine's simulated clock at enqueue; the job's queue wait is the
    /// clock advance between this and its start.
    enqueue_clock: f64,
    tx: Sender<Result<JobOutput, TcqrError>>,
}

/// Per-engine submission queues. Two FIFO lanes; High drains first.
struct Lanes {
    high: VecDeque<WorkItem>,
    low: VecDeque<WorkItem>,
    /// Set by [`Handle::close`]: finish queued work, then exit.
    draining: bool,
}

struct WorkerQueue {
    lanes: Mutex<Lanes>,
    cv: Condvar,
}

/// Live admission + accounting state, behind one mutex.
struct ServeState {
    /// Next admission sequence number.
    next_ticket: usize,
    rejected: u64,
    draining: bool,
    /// Live queue-wait burn window (the SLO spec's first `queue_wait`
    /// objective), fed by completions on the simulated clock.
    window: Option<BurnWindow>,
    /// Admitted but not yet completed jobs.
    pending: u64,
    /// Pending jobs whose projected wait exceeded the threshold.
    pending_bad: u64,
    /// Queued + running jobs per engine.
    depth: Vec<u64>,
    /// Sum of completed jobs' simulated exec seconds (for wait projection).
    exec_total_secs: f64,
    exec_done: u64,
    completed: u64,
    failed: u64,
    /// Monotonicized completion clock fed to the burn window: per-engine
    /// clocks are independent, so out-of-order completion stamps are
    /// clamped forward to keep the window's replay order valid.
    last_t: f64,
    done: Vec<DoneRecord>,
    /// Realized execution order per engine: ticket ids in run order.
    exec_order: Vec<Vec<usize>>,
}

/// One completed job's accounting (mirrors the batch scheduler's).
struct DoneRecord {
    ticket: usize,
    engine: usize,
    kind: &'static str,
    shape: (usize, usize),
    ok: bool,
    error: Option<String>,
    wait_secs: f64,
    /// Absolute engine clock when execution began.
    start_secs: f64,
    exec_secs: f64,
    fault_injected: u64,
    fault_detected: u64,
}

struct Shared {
    pool: EnginePool,
    /// Per-engine clock at service start (pre-existing work if any).
    clock_base: Vec<f64>,
    state: Mutex<ServeState>,
    queues: Vec<WorkerQueue>,
    tracer: Tracer,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // A worker panicking mid-job poisons nothing we can't still read;
    // accounting for the panicked job is simply absent.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The submission front-end of a running service.
///
/// Owns the worker threads; dropped without [`Handle::drain`], workers are
/// detached and the pool leaks with them — always drain.
pub struct Handle {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    default_policy: RecoveryPolicy,
}

impl Handle {
    /// Start a service: build the engine pool, spawn one worker thread per
    /// engine, and return the submission handle.
    pub fn start(cfg: ServeConfig) -> Handle {
        let pool = EnginePool::new(cfg.engines, cfg.engine);
        let k = pool.len();
        let window = cfg
            .slo
            .as_ref()
            .and_then(|s| s.objectives.iter().find_map(|o| BurnWindow::from_objective(&o.kind)));
        let clock_base = pool.clocks();
        let shared = Arc::new(Shared {
            pool,
            clock_base,
            state: Mutex::new(ServeState {
                next_ticket: 0,
                rejected: 0,
                draining: false,
                window,
                pending: 0,
                pending_bad: 0,
                depth: vec![0; k],
                exec_total_secs: 0.0,
                exec_done: 0,
                completed: 0,
                failed: 0,
                last_t: 0.0,
                done: Vec::new(),
                exec_order: vec![Vec::new(); k],
            }),
            queues: (0..k)
                .map(|_| WorkerQueue {
                    lanes: Mutex::new(Lanes {
                        high: VecDeque::new(),
                        low: VecDeque::new(),
                        draining: false,
                    }),
                    cv: Condvar::new(),
                })
                .collect(),
            tracer: Tracer::global(),
        });
        let workers = (0..k)
            .map(|e| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tcqr-serve-{e}"))
                    .spawn(move || worker_loop(&shared, e))
                    .expect("spawning a worker thread")
            })
            .collect();
        Handle {
            shared,
            workers,
            default_policy: cfg.policy,
        }
    }

    /// The engine pool behind the service. Arm fault plans or read clocks
    /// through this; the single-worker-per-engine discipline makes
    /// mid-stream arming safe (settle the queue first if the arming point
    /// must be deterministic relative to job boundaries).
    pub fn pool(&self) -> &EnginePool {
        &self.shared.pool
    }

    /// Submit a job on the service's default recovery policy.
    pub fn submit(&self, job: Job, priority: Priority) -> Result<Ticket, ServeError> {
        self.submit_batch_job(
            BatchJob {
                job,
                policy: self.default_policy.clone(),
                precision: None,
            },
            priority,
        )
    }

    /// Submit a job with explicit per-tenant knobs (recovery policy,
    /// precision override). Admission control runs first: if admitting the
    /// job would push the live queue-wait burn rate past the SLO spec, the
    /// submission is rejected with [`ServeError::Overloaded`] and nothing
    /// is enqueued.
    pub fn submit_batch_job(
        &self,
        job: BatchJob,
        priority: Priority,
    ) -> Result<Ticket, ServeError> {
        let k = self.shared.pool.len();
        let mut st = lock(&self.shared.state);
        if st.draining {
            return Err(ServeError::Draining);
        }
        let engine = st.next_ticket % k;
        let mut projected_bad = false;
        if let Some(window) = &st.window {
            // Look-ahead: classify the job by its projected wait (queued
            // depth on its engine times the mean observed exec time; an
            // idle engine projects zero, an unknown service conservatively
            // projects infinite), then ask the window what the burn rate
            // would be if every pending job and this one landed now.
            let depth = st.depth[engine];
            let projected_wait = if depth == 0 {
                0.0
            } else if st.exec_done == 0 {
                f64::INFINITY
            } else {
                depth as f64 * (st.exec_total_secs / st.exec_done as f64)
            };
            projected_bad = projected_wait > window.threshold_secs();
            let burn = window.hypothetical_burn(st.pending_bad + projected_bad as u64, st.pending + 1);
            let limit = window.limit();
            if burn > limit {
                st.rejected += 1;
                drop(st);
                self.shared.tracer.info(
                    "serve.rejected",
                    &[("burn", Value::F64(burn)), ("limit", Value::F64(limit))],
                );
                return Err(ServeError::Overloaded { burn, limit });
            }
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.pending += 1;
        st.pending_bad += projected_bad as u64;
        st.depth[engine] += 1;
        drop(st);

        let (tx, rx) = channel();
        let item = WorkItem {
            ticket,
            job,
            projected_bad,
            enqueue_clock: self.shared.pool.engine(engine).clock(),
            tx,
        };
        let q = &self.shared.queues[engine];
        let mut lanes = lock(&q.lanes);
        match priority {
            Priority::High => lanes.high.push_back(item),
            Priority::Low => lanes.low.push_back(item),
        }
        q.cv.notify_one();
        drop(lanes);
        Ok(Ticket {
            id: ticket,
            engine,
            priority,
            rx,
        })
    }

    /// Close intake: subsequent submissions fail with
    /// [`ServeError::Draining`]; queued and in-flight jobs still run to
    /// completion and their tickets still deliver. Terminal — intake never
    /// reopens.
    pub fn close(&self) {
        lock(&self.shared.state).draining = true;
        for q in &self.shared.queues {
            lock(&q.lanes).draining = true;
            q.cv.notify_all();
        }
    }

    /// Graceful shutdown: close intake, finish every queued and in-flight
    /// job, join the workers, and return the final fleet accounting. Every
    /// admitted ticket's result is delivered (buffered in its channel)
    /// before this returns.
    pub fn drain(self) -> DrainOutcome {
        self.close();
        for w in self.workers {
            let _ = w.join();
        }
        let shared = Arc::try_unwrap(self.shared)
            .ok()
            .expect("workers joined and hold no Arc");
        let k = shared.pool.len();
        let mut st = shared.state.into_inner().unwrap_or_else(PoisonError::into_inner);
        let mut done = std::mem::take(&mut st.done);
        // Engine-major, and within an engine in realized execution order
        // (`done` is appended under the state lock as jobs finish, and a
        // lane runs one job at a time, so the per-engine subsequence IS
        // execution order; the stable sort only groups engines together).
        // This keeps `FleetReport::emit`'s per-engine segment narration
        // monotone on the simulated clock — High-priority tickets that
        // jumped the lane would break ticket-ordered narration.
        done.sort_by_key(|d| d.engine);
        let jobs = done
            .into_iter()
            .map(|d| JobReport {
                index: d.ticket,
                engine: d.engine,
                kind: d.kind,
                shape: d.shape,
                ok: d.ok,
                error: d.error,
                queue_wait_secs: d.wait_secs,
                start_secs: d.start_secs,
                exec_secs: d.exec_secs,
                fault_injected: d.fault_injected,
                fault_detected: d.fault_detected,
            })
            .collect();
        let engines = (0..k)
            .map(|e| {
                let eng = shared.pool.engine(e);
                EngineReport {
                    engine: e,
                    jobs: st.exec_order[e].len(),
                    busy_secs: eng.clock() - shared.clock_base[e],
                    clock_secs: eng.clock(),
                    ledger: eng.ledger(),
                    counters: eng.counters(),
                    fault: eng.fault_stats(),
                }
            })
            .collect();
        DrainOutcome {
            report: FleetReport { jobs, engines },
            execution_order: std::mem::take(&mut st.exec_order),
            admitted: st.next_ticket as u64,
            rejected: st.rejected,
            completed: st.completed,
            failed: st.failed,
            worst_burn: st.window.as_ref().map(|w| w.worst_burn()).unwrap_or(0.0),
            burn_limit: st.window.as_ref().map(|w| w.limit()).unwrap_or(0.0),
            admission_enabled: st.window.is_some(),
            pool: shared.pool,
        }
    }
}

/// One engine's worker: pop High before Low, run jobs to completion,
/// record accounting, stream the result to the ticket, exit when draining
/// and empty.
fn worker_loop(shared: &Arc<Shared>, e: usize) {
    loop {
        let item = {
            let q = &shared.queues[e];
            let mut lanes = lock(&q.lanes);
            loop {
                if let Some(it) = lanes.high.pop_front() {
                    break Some(it);
                }
                if let Some(it) = lanes.low.pop_front() {
                    break Some(it);
                }
                if lanes.draining {
                    break None;
                }
                lanes = q.cv.wait(lanes).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(item) = item else { return };
        run_item(shared, e, item);
    }
}

fn run_item(shared: &Arc<Shared>, e: usize, item: WorkItem) {
    let eng = shared.pool.engine(e);
    let kind = item.job.job.kind();
    let shape = item.job.job.shape();
    let before = eng.clock();
    let fault_before = eng.fault_stats();
    // Same single-tenant discipline as the batch scheduler's lane loop:
    // install the tenant's precision override for the job's lifetime.
    let prev = eng.precision_override();
    if item.job.precision.is_some() {
        eng.set_precision_override(item.job.precision);
    }
    let res = item.job.job.run(eng, &item.job.policy);
    if item.job.precision.is_some() {
        eng.set_precision_override(prev);
    }
    let after = eng.clock();
    let fault_after = eng.fault_stats();
    let wait_secs = before - item.enqueue_clock;
    let exec_secs = after - before;
    {
        let mut st = lock(&shared.state);
        let t = if after > st.last_t { after } else { st.last_t };
        st.last_t = t;
        if let Some(w) = st.window.as_mut() {
            w.record(t, wait_secs);
        }
        st.pending -= 1;
        st.pending_bad -= item.projected_bad as u64;
        st.depth[e] -= 1;
        st.exec_total_secs += exec_secs;
        st.exec_done += 1;
        st.completed += 1;
        if res.is_err() {
            st.failed += 1;
        }
        st.done.push(DoneRecord {
            ticket: item.ticket,
            engine: e,
            kind,
            shape,
            ok: res.is_ok(),
            error: res.as_ref().err().map(|err| err.to_string()),
            wait_secs,
            start_secs: before,
            exec_secs,
            fault_injected: fault_after.injected.saturating_sub(fault_before.injected),
            fault_detected: fault_after.detected.saturating_sub(fault_before.detected),
        });
        st.exec_order[e].push(item.ticket);
    }
    // The ticket may have been dropped by an uninterested caller.
    let _ = item.tx.send(res);
}

/// Everything a drained service knows about what it ran.
pub struct DrainOutcome {
    /// Fleet accounting — the same shape the batch scheduler reports, so
    /// every `tcqr-obs` consumer (timelines, SLOs, dashboards) works on
    /// service runs unchanged. Jobs are engine-major in realized
    /// execution order (each [`JobReport::index`] is the ticket id), so
    /// segment narration stays monotone per engine even when a
    /// High-priority ticket jumped its lane.
    pub report: FleetReport,
    /// Realized execution order per engine: ticket ids in run order.
    pub execution_order: Vec<Vec<usize>>,
    /// Tickets admitted (and therefore run).
    pub admitted: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Jobs run to completion (including solver failures).
    pub completed: u64,
    /// Completed jobs whose solver returned a typed error.
    pub failed: u64,
    /// Worst queue-wait burn rate the live window observed (0.0 when
    /// admission control was off).
    pub worst_burn: f64,
    /// The spec's `max_burn_rate` (0.0 when admission control was off).
    pub burn_limit: f64,
    /// Whether a `queue_wait` objective was gating admission.
    pub admission_enabled: bool,
    /// The engine pool, returned to the caller for fingerprinting or
    /// reuse.
    pub pool: EnginePool,
}

impl DrainOutcome {
    /// The job permutation under which [`tcqr_batch::BatchScheduler`]
    /// replays this service run bit-for-bit: position `j*K + e` holds the
    /// `j`-th ticket engine `e` actually ran, so the scheduler's static
    /// lane `e` (`e, e+K, ...`) is exactly the service's realized sequence
    /// on engine `e`.
    pub fn oracle_order(&self) -> Vec<usize> {
        interleave_execution_order(&self.execution_order)
    }

    /// Narrate the outcome into a trace stream: the fleet report's
    /// `engine.segment` / `fleet.*` events (so timelines, SLO evaluation,
    /// and dashboards consume service runs unchanged) followed by one
    /// `serve.summary` op with the service-level tallies.
    pub fn emit(&self, tracer: &Tracer) {
        self.report.emit(tracer);
        tracer.op(
            "serve.summary",
            &[
                ("admitted", Value::from(self.admitted)),
                ("rejected", Value::from(self.rejected)),
                ("completed", Value::from(self.completed)),
                ("failed", Value::from(self.failed)),
                ("engines", Value::from(self.report.engines.len())),
                ("admission", Value::from(self.admission_enabled)),
                ("worst_burn", Value::F64(self.worst_burn)),
                ("burn_limit", Value::F64(self.burn_limit)),
            ],
        );
    }
}

/// Interleave per-engine execution orders into the batch scheduler's
/// submission order: `out[j*K + e] = order[e][j]`. Panics unless the
/// per-engine counts form a valid round-robin split (they always do for a
/// full service run, and for any burst whose size is a multiple of `K`).
pub fn interleave_execution_order(order: &[Vec<usize>]) -> Vec<usize> {
    let k = order.len();
    let n: usize = order.iter().map(|lane| lane.len()).sum();
    let mut out = vec![usize::MAX; n];
    for (e, lane) in order.iter().enumerate() {
        for (j, &t) in lane.iter().enumerate() {
            let pos = j * k + e;
            assert!(
                pos < n && out[pos] == usize::MAX,
                "per-engine counts are not a round-robin split"
            );
            out[pos] = t;
        }
    }
    assert!(
        out.iter().all(|&t| t != usize::MAX),
        "per-engine counts are not a round-robin split"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcqr_batch::jobgen;
    use tcqr_core::RgsqrfConfig;

    fn qr_job(seed: u64) -> Job {
        Job::rgsqrf(jobgen::gaussian_f32(32, 8, seed), RgsqrfConfig::default())
    }

    #[test]
    fn submit_runs_and_streams_results() {
        let handle = Handle::start(ServeConfig {
            engines: 2,
            ..ServeConfig::default()
        });
        let t0 = handle.submit(qr_job(1), Priority::High).unwrap();
        let t1 = handle.submit(qr_job(2), Priority::Low).unwrap();
        assert_eq!((t0.id(), t0.engine()), (0, 0));
        assert_eq!((t1.id(), t1.engine()), (1, 1));
        assert_eq!(t0.priority(), Priority::High);
        let r0 = t0.wait().expect("worker alive");
        assert!(matches!(r0, Ok(JobOutput::Qr(_))));
        let r1 = t1.wait().expect("worker alive");
        assert!(r1.is_ok());
        let out = handle.drain();
        assert_eq!(out.admitted, 2);
        assert_eq!(out.completed, 2);
        assert_eq!(out.failed, 0);
        assert_eq!(out.rejected, 0);
        assert!(!out.admission_enabled);
        assert_eq!(out.report.jobs.len(), 2);
        assert_eq!(out.report.jobs[0].index, 0);
        assert_eq!(out.report.jobs[0].engine, 0);
        assert!(out.report.jobs[0].exec_secs > 0.0);
        assert_eq!(out.oracle_order(), vec![0, 1]);
    }

    #[test]
    fn typed_solver_errors_stream_through() {
        let handle = Handle::start(ServeConfig {
            engines: 1,
            ..ServeConfig::default()
        });
        // Wide input: rejected by the solver with a typed error, not by
        // the service.
        let bad = Job::rgsqrf(jobgen::gaussian_f32(4, 8, 3), RgsqrfConfig::default());
        let t = handle.submit(bad, Priority::Low).unwrap();
        let res = t.wait().expect("worker alive");
        assert!(matches!(res, Err(TcqrError::ShapeMismatch { .. })));
        let out = handle.drain();
        assert_eq!(out.completed, 1);
        assert_eq!(out.failed, 1);
        assert!(!out.report.jobs[0].ok);
        assert!(out.report.jobs[0].error.as_deref().unwrap().contains("rgsqrf"));
    }

    #[test]
    fn close_rejects_new_submissions_but_finishes_queued_work() {
        let handle = Handle::start(ServeConfig {
            engines: 1,
            ..ServeConfig::default()
        });
        let t = handle.submit(qr_job(5), Priority::Low).unwrap();
        handle.close();
        let err = handle.submit(qr_job(6), Priority::Low).unwrap_err();
        assert_eq!(err, ServeError::Draining);
        assert!(t.wait().expect("queued job still runs").is_ok());
        let out = handle.drain();
        assert_eq!(out.admitted, 1);
        assert_eq!(out.completed, 1);
    }

    #[test]
    fn drain_emits_the_serve_summary() {
        use std::sync::Arc;
        use tcqr_trace::{EventKind, MemSink};

        let handle = Handle::start(ServeConfig {
            engines: 2,
            ..ServeConfig::default()
        });
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| handle.submit(qr_job(10 + i), Priority::Low).unwrap())
            .collect();
        for t in tickets {
            t.wait().expect("worker alive").expect("well-posed");
        }
        let out = handle.drain();
        let sink = Arc::new(MemSink::new());
        out.emit(&Tracer::new(sink.clone()));
        let events = sink.snapshot();
        let segs = events.iter().filter(|e| e.name == "engine.segment").count();
        assert_eq!(segs, 4, "one segment per ticket");
        let summary = events.iter().find(|e| e.name == "serve.summary").unwrap();
        assert_eq!(summary.kind, EventKind::Op);
        assert_eq!(summary.u64_field("admitted"), Some(4));
        assert_eq!(summary.u64_field("rejected"), Some(0));
        assert_eq!(summary.bool_field("admission"), Some(false));
        // The fleet.summary rollup precedes it, so obs consumers see the
        // standard event taxonomy.
        assert!(events.iter().any(|e| e.name == "fleet.summary"));
    }

    #[test]
    fn interleave_rebuilds_round_robin_order() {
        // 2 engines; engine 0 ran tickets [0, 2], engine 1 ran [3, 1]
        // (a High overtake): the oracle order alternates lanes.
        let order = vec![vec![0, 2], vec![3, 1]];
        assert_eq!(interleave_execution_order(&order), vec![0, 3, 2, 1]);
        // Uneven (valid round-robin) split: 3 jobs over 2 engines.
        let order = vec![vec![0, 2], vec![1]];
        assert_eq!(interleave_execution_order(&order), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "round-robin")]
    fn interleave_rejects_impossible_splits() {
        // Engine 1 ran two jobs while engine 0 ran none: no round-robin
        // submission order produces that.
        let _ = interleave_execution_order(&[Vec::new(), vec![0, 1]]);
    }
}
