//! The service proper: worker threads owning engines, priority lanes,
//! admission control, and graceful drain.
//!
//! ## Determinism and the oracle
//!
//! Every admitted ticket `n` is pinned to engine `n mod K` at admission —
//! the same static round-robin the deterministic
//! [`tcqr_batch::BatchScheduler`] uses —
//! and each engine is owned by exactly one worker thread, so a job's
//! engine never runs anything concurrently with it. What the host's
//! scheduler *can* change is the per-engine interleaving of priorities:
//! a High submission overtakes queued Low work, so the realized per-engine
//! execution order depends on arrival timing. The service records that
//! realized order, and [`DrainOutcome::oracle_order`] converts it into a
//! job permutation for which `BatchScheduler::run` replays the exact
//! per-engine sequences — making the deterministic batch scheduler a
//! bit-exact oracle for whatever order the live service actually ran.

//!
//! ## Resilience
//!
//! Engines can die mid-job (a `tensor_engine::avail` crash). The worker
//! that owned the corpse marks it [`tcqr_batch::EngineHealth::Dead`],
//! re-homes its queue — and, retry budget permitting, the in-flight job —
//! onto the surviving rotation, and exits; admission re-pins subsequent
//! tickets over the survivors. Every admitted ticket still resolves
//! exactly once: with the job's result, or with a typed
//! [`ServeError::EngineLost`] / [`ServeError::DeadlineExceeded`] when the
//! retry budget, the survivor pool, or the deadline ran out. Because job
//! outputs are pure functions of the job (engine accumulated state never
//! feeds the numerics), a completed ticket's output is bit-identical to
//! what a healthy-pool [`tcqr_batch::BatchScheduler`] computes for the
//! same job, no matter which engine finally ran it. A circuit breaker can
//! additionally quarantine an engine after consecutive job failures and
//! rehabilitate it through `reset_in_place` — the engine re-enters
//! rotation only if it proves state-fingerprint equality with a freshly
//! built engine.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use tcqr_batch::{BatchJob, EnginePool, EngineReport, FleetReport, Job, JobOutput, JobReport};
use tcqr_core::{RecoveryPolicy, TcqrError};
use tensor_engine::EngineCrash;
use tcqr_obs::{BurnWindow, SloSpec};
use tcqr_trace::{Tracer, Value};
use tensor_engine::EngineConfig;

use crate::error::ServeError;

/// Which FIFO lane a submission joins. Workers always drain the High lane
/// of their engine before touching the Low lane; within a lane, order is
/// strictly first-in-first-out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Priority {
    /// Latency-sensitive: overtakes queued (not running) Low work.
    High,
    /// Throughput traffic.
    Low,
}

impl Priority {
    /// Stable lowercase name for reports and trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Low => "low",
        }
    }
}

/// Service construction knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Engines in the pool (one worker thread each, `>= 1`).
    pub engines: usize,
    /// Shared engine configuration / performance model.
    pub engine: EngineConfig,
    /// Recovery policy applied to jobs submitted via [`Handle::submit`]
    /// (full-knob submissions go through [`Handle::submit_batch_job`]).
    pub policy: RecoveryPolicy,
    /// SLO spec for admission control. The first `queue_wait` objective
    /// becomes the live burn-rate gate: submissions that would push the
    /// queue-wait burn rate past its `max_burn_rate` are rejected with
    /// [`ServeError::Overloaded`]. `None` (or a spec with no `queue_wait`
    /// objective) admits everything.
    pub slo: Option<SloSpec>,
    /// Failure-handling knobs: deadline watchdog, failover retry budget,
    /// circuit breaker, and degraded-mode shedding.
    pub resilience: ResilienceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            engines: 2,
            engine: EngineConfig::default(),
            policy: RecoveryPolicy::default(),
            slo: None,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Failure-handling knobs. Everything here runs on the *simulated* clock,
/// so behavior is reproducible across hosts and worker interleavings.
#[derive(Clone, Debug)]
pub struct ResilienceConfig {
    /// Per-job deadline on the simulated clock, measured from enqueue to
    /// execution start (queue wait plus any failover backoff). A popped
    /// job whose accumulated wait exceeds this is cancelled with
    /// [`ServeError::DeadlineExceeded`] instead of running. `None`
    /// disables the watchdog.
    pub deadline_secs: Option<f64>,
    /// How many times a job whose engine died *mid-run* may be re-run on
    /// a survivor before its ticket fails with
    /// [`ServeError::EngineLost`]. Queued (not yet started) jobs stranded
    /// by a death are always re-homed; this budget only limits re-runs of
    /// the crashed job itself.
    pub max_retries: usize,
    /// Modeled backoff added to a retried job's accumulated wait per
    /// retry (counts against `deadline_secs`; never charged to an engine
    /// ledger — the job did not run during the backoff).
    pub backoff_secs: f64,
    /// Circuit breaker: after this many *consecutive* typed job failures
    /// on one engine, quarantine it and attempt rehabilitation via
    /// `reset_in_place` (the engine re-enters rotation only if the
    /// cleanliness proof passes). `0` disables the breaker.
    pub quarantine_after: usize,
    /// Graceful degradation: when at least one engine is out of rotation
    /// and the pending backlog already covers the survivors,
    /// [`Priority::Low`] submissions are shed with
    /// [`ServeError::Degraded`] so High traffic keeps its latency.
    pub shed_low_when_degraded: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            deadline_secs: None,
            max_retries: 1,
            backoff_secs: 0.25,
            quarantine_after: 0,
            shed_low_when_degraded: true,
        }
    }
}

/// A claim on one submitted job's result.
///
/// Results stream back per ticket: the worker sends the job's
/// `Result<JobOutput, TcqrError>` into this ticket's private channel the
/// moment the job finishes, so callers consume completions in whatever
/// order they land without polling the service.
#[derive(Debug)]
pub struct Ticket {
    id: usize,
    engine: usize,
    priority: Priority,
    rx: Receiver<TicketResult>,
}

/// What a ticket's channel carries: the service's verdict (outer), then
/// the solver's own typed outcome (inner).
type TicketResult = Result<Result<JobOutput, TcqrError>, ServeError>;

impl Ticket {
    /// Admission sequence number — also the job's `index` in the final
    /// [`FleetReport`].
    pub fn id(&self) -> usize {
        self.id
    }

    /// Engine the job was pinned to at admission (`id mod` the rotation
    /// size). If that engine later dies, failover may run the job
    /// elsewhere; the final [`FleetReport`] records the realized engine.
    pub fn engine(&self) -> usize {
        self.engine
    }

    /// The lane the submission joined.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Block until the job's result arrives. The outer error is the
    /// service's verdict ([`ServeError::EngineLost`],
    /// [`ServeError::DeadlineExceeded`], or [`ServeError::Disconnected`]
    /// if a worker vanished without one); the inner result is the
    /// solver's own typed outcome, exactly what
    /// [`tcqr_batch::BatchScheduler::run`]
    /// would return for this job.
    ///
    /// Results survive [`Handle::drain`]: a drained service has resolved
    /// every admitted ticket, and each result waits buffered in its
    /// channel.
    pub fn wait(self) -> Result<Result<JobOutput, TcqrError>, ServeError> {
        match self.rx.recv() {
            Ok(r) => r,
            Err(_) => Err(ServeError::Disconnected {
                engine: self.engine,
                job: self.id,
            }),
        }
    }
}

/// One queued submission, owned by its engine's worker once popped.
struct WorkItem {
    ticket: usize,
    job: BatchJob,
    /// Lane the submission joined — kept so failover re-homes the item
    /// into the same lane on the survivor.
    priority: Priority,
    /// Admission-time classification: was this job *projected* to wait
    /// past the SLO threshold? Used to release the admission look-ahead
    /// when the job completes.
    projected_bad: bool,
    /// Engine's simulated clock at enqueue (re-stamped on failover); the
    /// job's queue wait is the clock advance between this and its start,
    /// plus `carried_wait_secs`.
    enqueue_clock: f64,
    /// Wait accumulated on previous engines plus failover backoff —
    /// counted against the deadline and reported in the job's queue wait.
    carried_wait_secs: f64,
    /// Times this job has been re-*run* after its engine died mid-job.
    retries: usize,
    tx: Sender<TicketResult>,
}

/// Per-engine submission queues. Two FIFO lanes; High drains first.
struct Lanes {
    high: VecDeque<WorkItem>,
    low: VecDeque<WorkItem>,
    /// Set by [`Handle::close`]: finish queued work, then exit.
    draining: bool,
}

struct WorkerQueue {
    lanes: Mutex<Lanes>,
    cv: Condvar,
}

/// Live admission + accounting state, behind one mutex.
struct ServeState {
    /// Next admission sequence number.
    next_ticket: usize,
    rejected: u64,
    draining: bool,
    /// Live queue-wait burn window (the SLO spec's first `queue_wait`
    /// objective), fed by completions on the simulated clock.
    window: Option<BurnWindow>,
    /// Admitted but not yet completed jobs.
    pending: u64,
    /// Pending jobs whose projected wait exceeded the threshold.
    pending_bad: u64,
    /// Queued + running jobs per engine.
    depth: Vec<u64>,
    /// Sum of completed jobs' simulated exec seconds (for wait projection).
    exec_total_secs: f64,
    exec_done: u64,
    completed: u64,
    failed: u64,
    /// Monotonicized completion clock fed to the burn window: per-engine
    /// clocks are independent, so out-of-order completion stamps are
    /// clamped forward to keep the window's replay order valid.
    last_t: f64,
    done: Vec<DoneRecord>,
    /// Realized execution order per engine: ticket ids in run order.
    exec_order: Vec<Vec<usize>>,
    /// Engines that died (availability crash).
    deaths: u64,
    /// Work items re-homed onto a survivor after an engine left rotation.
    failovers: u64,
    /// Crashed in-flight jobs re-run on a survivor (subset of failovers).
    retries: u64,
    /// Circuit-breaker quarantines.
    quarantines: u64,
    /// Quarantined engines that passed the reset-in-place cleanliness
    /// proof and re-entered rotation.
    rehabilitated: u64,
    /// Jobs cancelled by the deadline watchdog.
    deadline_missed: u64,
    /// Low-priority submissions shed in degraded mode.
    shed: u64,
    /// Tickets resolved with [`ServeError::EngineLost`].
    lost: u64,
    /// Lifecycle events for timelines, in occurrence order per engine.
    marks: Vec<FleetMark>,
}

/// One fleet lifecycle event, stamped on the simulated clock of the
/// engine it happened on. `kind` is one of `"death"` (availability
/// crash), `"quarantine"` / `"rehabilitated"` (circuit breaker),
/// `"requeue"` (a failed-over item landing on this engine), `"deadline"`
/// (watchdog cancellation), or `"lost"` (ticket resolved
/// [`ServeError::EngineLost`]).
#[derive(Clone, Debug, PartialEq)]
pub struct FleetMark {
    /// Pool index of the engine the event happened on.
    pub engine: usize,
    /// Stable lowercase event kind (see type docs).
    pub kind: &'static str,
    /// The engine's simulated clock at the event.
    pub t_secs: f64,
    /// The ticket involved, for per-job events.
    pub ticket: Option<usize>,
}

/// A live snapshot of the service's resilience counters (see
/// [`Handle::stats`]). All values are read atomically under one lock, so
/// the snapshot is internally consistent.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeStats {
    /// Admitted jobs not yet resolved.
    pub pending: u64,
    /// Queued + running jobs per engine. A dead engine's slot drains to 0
    /// once its failover cleanup has re-homed or resolved every item.
    pub depth: Vec<u64>,
    /// Engines lost to availability crashes so far.
    pub deaths: u64,
    /// Items re-homed onto survivors so far.
    pub failovers: u64,
    /// Crashed in-flight jobs re-run on a survivor so far.
    pub retries: u64,
    /// Circuit-breaker quarantines so far.
    pub quarantines: u64,
    /// Quarantines that passed the reset-in-place proof so far.
    pub rehabilitated: u64,
    /// Watchdog cancellations so far.
    pub deadline_missed: u64,
    /// Low-priority submissions shed while degraded so far.
    pub shed: u64,
    /// Tickets resolved [`ServeError::EngineLost`] so far.
    pub lost: u64,
}

/// One completed job's accounting (mirrors the batch scheduler's).
struct DoneRecord {
    ticket: usize,
    engine: usize,
    kind: &'static str,
    shape: (usize, usize),
    ok: bool,
    error: Option<String>,
    wait_secs: f64,
    /// Absolute engine clock when execution began.
    start_secs: f64,
    exec_secs: f64,
    fault_injected: u64,
    fault_detected: u64,
}

struct Shared {
    pool: EnginePool,
    /// Per-engine clock at service start (pre-existing work if any).
    clock_base: Vec<f64>,
    state: Mutex<ServeState>,
    queues: Vec<WorkerQueue>,
    tracer: Tracer,
    res: ResilienceConfig,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // A worker panicking mid-job poisons nothing we can't still read;
    // accounting for the panicked job is simply absent.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The submission front-end of a running service.
///
/// Owns the worker threads; dropped without [`Handle::drain`], workers are
/// detached and the pool leaks with them — always drain.
pub struct Handle {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    default_policy: RecoveryPolicy,
}

impl Handle {
    /// Start a service: build the engine pool, spawn one worker thread per
    /// engine, and return the submission handle.
    pub fn start(cfg: ServeConfig) -> Handle {
        let pool = EnginePool::new(cfg.engines, cfg.engine);
        let k = pool.len();
        let window = cfg
            .slo
            .as_ref()
            .and_then(|s| s.objectives.iter().find_map(|o| BurnWindow::from_objective(&o.kind)));
        let clock_base = pool.clocks();
        let shared = Arc::new(Shared {
            pool,
            clock_base,
            state: Mutex::new(ServeState {
                next_ticket: 0,
                rejected: 0,
                draining: false,
                window,
                pending: 0,
                pending_bad: 0,
                depth: vec![0; k],
                exec_total_secs: 0.0,
                exec_done: 0,
                completed: 0,
                failed: 0,
                last_t: 0.0,
                done: Vec::new(),
                exec_order: vec![Vec::new(); k],
                deaths: 0,
                failovers: 0,
                retries: 0,
                quarantines: 0,
                rehabilitated: 0,
                deadline_missed: 0,
                shed: 0,
                lost: 0,
                marks: Vec::new(),
            }),
            queues: (0..k)
                .map(|_| WorkerQueue {
                    lanes: Mutex::new(Lanes {
                        high: VecDeque::new(),
                        low: VecDeque::new(),
                        draining: false,
                    }),
                    cv: Condvar::new(),
                })
                .collect(),
            tracer: Tracer::global(),
            res: cfg.resilience,
        });
        let workers = (0..k)
            .map(|e| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tcqr-serve-{e}"))
                    .spawn(move || worker_loop(&shared, e))
                    .expect("spawning a worker thread")
            })
            .collect();
        Handle {
            shared,
            workers,
            default_policy: cfg.policy,
        }
    }

    /// The engine pool behind the service. Arm fault plans or read clocks
    /// through this; the single-worker-per-engine discipline makes
    /// mid-stream arming safe (settle the queue first if the arming point
    /// must be deterministic relative to job boundaries).
    pub fn pool(&self) -> &EnginePool {
        &self.shared.pool
    }

    /// Live snapshot of the resilience counters, taken under the state
    /// lock. Chaos harnesses use this to sequence injected failures
    /// deterministically: after a death, `depth[e] == 0` for the dead
    /// engine means its failover drain has finished re-homing (or typed
    /// away) every stranded item, so the next fault can be released
    /// without racing the previous one's cleanup.
    pub fn stats(&self) -> ServeStats {
        let st = lock(&self.shared.state);
        ServeStats {
            pending: st.pending,
            depth: st.depth.clone(),
            deaths: st.deaths,
            failovers: st.failovers,
            retries: st.retries,
            quarantines: st.quarantines,
            rehabilitated: st.rehabilitated,
            deadline_missed: st.deadline_missed,
            shed: st.shed,
            lost: st.lost,
        }
    }

    /// Submit a job on the service's default recovery policy.
    pub fn submit(&self, job: Job, priority: Priority) -> Result<Ticket, ServeError> {
        self.submit_batch_job(
            BatchJob {
                job,
                policy: self.default_policy.clone(),
                precision: None,
            },
            priority,
        )
    }

    /// Submit a job with explicit per-tenant knobs (recovery policy,
    /// precision override). Admission control runs first: if admitting the
    /// job would push the live queue-wait burn rate past the SLO spec, the
    /// submission is rejected with [`ServeError::Overloaded`] and nothing
    /// is enqueued.
    pub fn submit_batch_job(
        &self,
        job: BatchJob,
        priority: Priority,
    ) -> Result<Ticket, ServeError> {
        let k = self.shared.pool.len();
        let mut st = lock(&self.shared.state);
        if st.draining {
            return Err(ServeError::Draining);
        }
        // Pin over the engines still in rotation — identical to `id mod k`
        // while the fleet is healthy.
        let alive = self.shared.pool.alive_engines();
        if alive.is_empty() {
            return Err(ServeError::Degraded { dead: k, alive: 0 });
        }
        // Graceful degradation: once capacity has dropped and the backlog
        // already covers the survivors, shed Low so High keeps its latency.
        if alive.len() < k
            && priority == Priority::Low
            && self.shared.res.shed_low_when_degraded
            && st.pending >= alive.len() as u64
        {
            st.shed += 1;
            return Err(ServeError::Degraded {
                dead: k - alive.len(),
                alive: alive.len(),
            });
        }
        let engine = alive[st.next_ticket % alive.len()];
        let mut projected_bad = false;
        if let Some(window) = &st.window {
            // Look-ahead: classify the job by its projected wait (queued
            // depth on its engine times the mean observed exec time; an
            // idle engine projects zero, an unknown service conservatively
            // projects infinite), then ask the window what the burn rate
            // would be if every pending job and this one landed now.
            let depth = st.depth[engine];
            let projected_wait = if depth == 0 {
                0.0
            } else if st.exec_done == 0 {
                f64::INFINITY
            } else {
                depth as f64 * (st.exec_total_secs / st.exec_done as f64)
            };
            projected_bad = projected_wait > window.threshold_secs();
            let burn = window.hypothetical_burn(st.pending_bad + projected_bad as u64, st.pending + 1);
            let limit = window.limit();
            if burn > limit {
                st.rejected += 1;
                drop(st);
                self.shared.tracer.info(
                    "serve.rejected",
                    &[("burn", Value::F64(burn)), ("limit", Value::F64(limit))],
                );
                return Err(ServeError::Overloaded { burn, limit });
            }
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.pending += 1;
        st.pending_bad += projected_bad as u64;
        st.depth[engine] += 1;
        drop(st);

        let (tx, rx) = channel();
        let item = WorkItem {
            ticket,
            job,
            priority,
            projected_bad,
            enqueue_clock: self.shared.pool.engine(engine).clock(),
            carried_wait_secs: 0.0,
            retries: 0,
            tx,
        };
        match push_item(&self.shared, engine, item, engine) {
            // Depth accounting moved with the item if the pinned engine
            // left rotation between admission and push.
            Ok(_realized) => {}
            Err(item) => {
                // Every engine left rotation in the race window. The
                // ticket was admitted, so resolve it typed rather than
                // un-admitting it.
                let mut st = lock(&self.shared.state);
                st.lost += 1;
                st.pending -= 1;
                st.pending_bad -= item.projected_bad as u64;
                st.depth[engine] -= 1;
                let wake = st.draining && st.pending == 0;
                drop(st);
                if wake {
                    wake_all_queues(&self.shared);
                }
                let _ = item.tx.send(Err(ServeError::EngineLost {
                    engine,
                    job: ticket,
                }));
            }
        }
        Ok(Ticket {
            id: ticket,
            engine,
            priority,
            rx,
        })
    }

    /// Close intake: subsequent submissions fail with
    /// [`ServeError::Draining`]; queued and in-flight jobs still run to
    /// completion and their tickets still deliver. Terminal — intake never
    /// reopens.
    pub fn close(&self) {
        lock(&self.shared.state).draining = true;
        for q in &self.shared.queues {
            lock(&q.lanes).draining = true;
            q.cv.notify_all();
        }
    }

    /// Graceful shutdown: close intake, finish every queued and in-flight
    /// job, join the workers, and return the final fleet accounting. Every
    /// admitted ticket's result is delivered (buffered in its channel)
    /// before this returns.
    pub fn drain(self) -> DrainOutcome {
        self.close();
        for w in self.workers {
            let _ = w.join();
        }
        let shared = Arc::try_unwrap(self.shared)
            .ok()
            .expect("workers joined and hold no Arc");
        let Shared {
            pool,
            clock_base,
            state,
            queues,
            tracer: _,
            res: _,
        } = shared;
        let k = pool.len();
        let mut st = state.into_inner().unwrap_or_else(PoisonError::into_inner);
        // Backstop: an item stranded in a retired engine's lanes (a push
        // that raced the worker's own failover drain) resolves typed here
        // — no admitted ticket is ever left unresolved.
        for (e, q) in queues.iter().enumerate() {
            let mut lanes = lock(&q.lanes);
            let high: Vec<WorkItem> = lanes.high.drain(..).collect();
            for item in high.into_iter().chain(lanes.low.drain(..)) {
                st.lost += 1;
                st.pending -= 1;
                st.pending_bad -= item.projected_bad as u64;
                st.depth[e] -= 1;
                st.marks.push(FleetMark {
                    engine: e,
                    kind: "lost",
                    t_secs: pool.engine(e).clock(),
                    ticket: Some(item.ticket),
                });
                let _ = item.tx.send(Err(ServeError::EngineLost {
                    engine: e,
                    job: item.ticket,
                }));
            }
        }
        let mut done = std::mem::take(&mut st.done);
        // Engine-major, and within an engine in realized execution order
        // (`done` is appended under the state lock as jobs finish, and a
        // lane runs one job at a time, so the per-engine subsequence IS
        // execution order; the stable sort only groups engines together).
        // This keeps `FleetReport::emit`'s per-engine segment narration
        // monotone on the simulated clock — High-priority tickets that
        // jumped the lane would break ticket-ordered narration.
        done.sort_by_key(|d| d.engine);
        let jobs = done
            .into_iter()
            .map(|d| JobReport {
                index: d.ticket,
                engine: d.engine,
                ran: true,
                kind: d.kind,
                shape: d.shape,
                ok: d.ok,
                error: d.error,
                queue_wait_secs: d.wait_secs,
                start_secs: d.start_secs,
                exec_secs: d.exec_secs,
                fault_injected: d.fault_injected,
                fault_detected: d.fault_detected,
            })
            .collect();
        let engines = (0..k)
            .map(|e| {
                let eng = pool.engine(e);
                EngineReport {
                    engine: e,
                    jobs: st.exec_order[e].len(),
                    busy_secs: (eng.clock() - clock_base[e]).max(0.0),
                    clock_secs: eng.clock(),
                    ledger: eng.ledger(),
                    counters: eng.counters(),
                    fault: eng.fault_stats(),
                }
            })
            .collect();
        let mut marks = std::mem::take(&mut st.marks);
        // Marks land in whatever real-time order workers recorded them;
        // canonicalize so emission and digests are deterministic.
        marks.sort_by(|a, b| {
            a.engine
                .cmp(&b.engine)
                .then(a.t_secs.total_cmp(&b.t_secs))
                .then(a.kind.cmp(b.kind))
                .then(a.ticket.cmp(&b.ticket))
        });
        DrainOutcome {
            report: FleetReport { jobs, engines },
            execution_order: std::mem::take(&mut st.exec_order),
            admitted: st.next_ticket as u64,
            rejected: st.rejected,
            completed: st.completed,
            failed: st.failed,
            worst_burn: st.window.as_ref().map(|w| w.worst_burn()).unwrap_or(0.0),
            burn_limit: st.window.as_ref().map(|w| w.limit()).unwrap_or(0.0),
            admission_enabled: st.window.is_some(),
            deaths: st.deaths,
            failovers: st.failovers,
            retries: st.retries,
            quarantines: st.quarantines,
            rehabilitated: st.rehabilitated,
            deadline_missed: st.deadline_missed,
            shed: st.shed,
            lost: st.lost,
            marks,
            pool,
        }
    }
}

/// Push an item into `target`'s lane, re-checking rotation membership
/// under the queue lock (a dead engine's worker drains its lanes exactly
/// once, so pushing after that check can never strand the item). The
/// item's depth accounting currently sits on `depth_from`; it moves to
/// the engine that takes the item *before* the push becomes poppable, so
/// completion accounting can never underflow the target's depth. Returns
/// the engine that actually took the item, or the item back when no
/// engine in rotation remains (no depth moves in that case).
#[allow(clippy::result_large_err)] // Err returns the item's ownership, not an error code
fn push_item(
    shared: &Arc<Shared>,
    mut target: usize,
    mut item: WorkItem,
    depth_from: usize,
) -> Result<usize, WorkItem> {
    loop {
        item.enqueue_clock = shared.pool.engine(target).clock();
        let q = &shared.queues[target];
        let mut lanes = lock(&q.lanes);
        if shared.pool.health(target).in_rotation() {
            if target != depth_from {
                let mut st = lock(&shared.state);
                st.depth[depth_from] -= 1;
                st.depth[target] += 1;
            }
            match item.priority {
                Priority::High => lanes.high.push_back(item),
                Priority::Low => lanes.low.push_back(item),
            }
            q.cv.notify_one();
            return Ok(target);
        }
        drop(lanes);
        let alive = shared.pool.alive_engines();
        if alive.is_empty() {
            return Err(item);
        }
        target = alive[item.ticket % alive.len()];
    }
}

/// Wake every worker so lingering drain checks re-run. Each queue's lock
/// is taken for the notify so it cannot slip into a worker's
/// check-to-wait window (the check and the wait happen under that lock).
fn wake_all_queues(shared: &Arc<Shared>) {
    for q in &shared.queues {
        let _guard = lock(&q.lanes);
        q.cv.notify_all();
    }
}

/// One engine's worker: pop High before Low, run the deadline watchdog,
/// run jobs to completion, record accounting, stream the result to the
/// ticket. Exits when draining and empty — or when its engine leaves the
/// rotation, after re-homing the backlog onto the survivors.
fn worker_loop(shared: &Arc<Shared>, e: usize) {
    let mut consecutive_failures = 0usize;
    loop {
        let item = {
            let q = &shared.queues[e];
            let mut lanes = lock(&q.lanes);
            loop {
                if let Some(it) = lanes.high.pop_front() {
                    break Some(it);
                }
                if let Some(it) = lanes.low.pop_front() {
                    break Some(it);
                }
                // Don't retire while any job is pending anywhere: a dying
                // engine may yet re-home its backlog into these lanes.
                // The last pending resolution wakes every queue.
                if lanes.draining && lock(&shared.state).pending == 0 {
                    break None;
                }
                lanes = q.cv.wait(lanes).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(item) = item else { return };
        // Deadline watchdog, on the simulated clock: accumulated wait is
        // checked at pop time, before any engine work is charged.
        if let Some(deadline) = shared.res.deadline_secs {
            let waited = (shared.pool.engine(e).clock() - item.enqueue_clock).max(0.0)
                + item.carried_wait_secs;
            if waited > deadline {
                cancel_deadline(shared, e, item, deadline);
                continue;
            }
        }
        match run_item(shared, e, item) {
            RunOutcome::Done { failed } => {
                consecutive_failures = if failed { consecutive_failures + 1 } else { 0 };
                let trip = shared.res.quarantine_after;
                if trip > 0 && consecutive_failures >= trip {
                    consecutive_failures = 0;
                    if !breaker_trip(shared, e) {
                        // Rehabilitation failed the cleanliness proof:
                        // the engine stays out of rotation. Re-home its
                        // backlog and retire this worker.
                        fail_over(shared, e, None);
                        return;
                    }
                }
            }
            RunOutcome::Crashed(item) => {
                fail_over(shared, e, Some(item));
                return;
            }
        }
    }
}

/// What [`run_item`] did with its work item.
enum RunOutcome {
    /// The job ran to completion (possibly with a typed solver error —
    /// `failed` feeds the circuit breaker).
    Done {
        failed: bool,
    },
    /// The engine died mid-job; the item is handed back for failover and
    /// the engine is already marked [`tcqr_batch::EngineHealth::Dead`].
    Crashed(Box<WorkItem>),
}

fn run_item(shared: &Arc<Shared>, e: usize, item: WorkItem) -> RunOutcome {
    let eng = shared.pool.engine(e);
    let kind = item.job.job.kind();
    let shape = item.job.job.shape();
    let before = eng.clock();
    let fault_before = eng.fault_stats();
    // Same single-tenant discipline as the batch scheduler's lane loop:
    // install the tenant's precision override for the job's lifetime.
    let prev = eng.precision_override();
    if item.job.precision.is_some() {
        eng.set_precision_override(item.job.precision);
    }
    let res = match catch_unwind(AssertUnwindSafe(|| item.job.job.run(eng, &item.job.policy))) {
        Ok(res) => res,
        Err(payload) => match payload.downcast::<EngineCrash>() {
            Ok(_crash) => {
                // The engine died *before* accounting the fatal op (see
                // `tensor_engine::avail`): its clock and ledgers stay
                // readable and describe only the work it finished.
                shared.pool.mark_dead(e);
                let mut st = lock(&shared.state);
                st.deaths += 1;
                st.marks.push(FleetMark {
                    engine: e,
                    kind: "death",
                    t_secs: eng.clock(),
                    ticket: Some(item.ticket),
                });
                drop(st);
                return RunOutcome::Crashed(Box::new(item));
            }
            Err(payload) => resume_unwind(payload),
        },
    };
    if item.job.precision.is_some() {
        eng.set_precision_override(prev);
    }
    let after = eng.clock();
    let fault_after = eng.fault_stats();
    let wait_secs = (before - item.enqueue_clock).max(0.0) + item.carried_wait_secs;
    let exec_secs = after - before;
    let failed = res.is_err();
    let wake = {
        let mut st = lock(&shared.state);
        let t = if after > st.last_t { after } else { st.last_t };
        st.last_t = t;
        if let Some(w) = st.window.as_mut() {
            w.record(t, wait_secs);
        }
        st.pending -= 1;
        st.pending_bad -= item.projected_bad as u64;
        st.depth[e] -= 1;
        st.exec_total_secs += exec_secs;
        st.exec_done += 1;
        st.completed += 1;
        if failed {
            st.failed += 1;
        }
        st.done.push(DoneRecord {
            ticket: item.ticket,
            engine: e,
            kind,
            shape,
            ok: res.is_ok(),
            error: res.as_ref().err().map(|err| err.to_string()),
            wait_secs,
            start_secs: before,
            exec_secs,
            fault_injected: fault_after.injected.saturating_sub(fault_before.injected),
            fault_detected: fault_after.detected.saturating_sub(fault_before.detected),
        });
        st.exec_order[e].push(item.ticket);
        st.draining && st.pending == 0
    };
    if wake {
        wake_all_queues(shared);
    }
    // The ticket may have been dropped by an uninterested caller.
    let _ = item.tx.send(Ok(res));
    RunOutcome::Done { failed }
}

/// Cancel a popped job whose accumulated wait blew its deadline: the
/// ticket resolves typed, nothing is charged to the engine.
fn cancel_deadline(shared: &Arc<Shared>, e: usize, item: WorkItem, deadline: f64) {
    let t = shared.pool.engine(e).clock();
    let mut st = lock(&shared.state);
    st.deadline_missed += 1;
    st.pending -= 1;
    st.pending_bad -= item.projected_bad as u64;
    st.depth[e] -= 1;
    st.marks.push(FleetMark {
        engine: e,
        kind: "deadline",
        t_secs: t,
        ticket: Some(item.ticket),
    });
    let wake = st.draining && st.pending == 0;
    drop(st);
    if wake {
        wake_all_queues(shared);
    }
    let _ = item.tx.send(Err(ServeError::DeadlineExceeded {
        deadline_secs: deadline,
    }));
}

/// Circuit breaker: quarantine the engine, then attempt rehabilitation
/// via reset-in-place. Returns whether the engine proved cleanliness and
/// re-entered rotation.
fn breaker_trip(shared: &Arc<Shared>, e: usize) -> bool {
    let t = shared.pool.engine(e).clock();
    shared.pool.quarantine(e);
    {
        let mut st = lock(&shared.state);
        st.quarantines += 1;
        st.marks.push(FleetMark {
            engine: e,
            kind: "quarantine",
            t_secs: t,
            ticket: None,
        });
    }
    let clean = shared.pool.rehabilitate(e);
    if clean {
        let mut st = lock(&shared.state);
        st.rehabilitated += 1;
        // The scrubbed engine's clock restarted from zero.
        st.marks.push(FleetMark {
            engine: e,
            kind: "rehabilitated",
            t_secs: shared.pool.engine(e).clock(),
            ticket: None,
        });
    }
    clean
}

/// Re-home a retired engine's backlog onto the surviving rotation.
/// `crashed` is the in-flight job whose execution the death interrupted,
/// if any: it goes first (it was at the head), charged one retry and the
/// modeled backoff — or resolves [`ServeError::EngineLost`] when its
/// retry budget is spent. Queued items keep their lane and accumulated
/// wait. With no survivors, every item resolves typed.
fn fail_over(shared: &Arc<Shared>, e: usize, crashed: Option<Box<WorkItem>>) {
    let t = shared.pool.engine(e).clock();
    // The health flip happened before this drain and pushers re-check
    // health under the queue lock, so nothing lands in these lanes after
    // the take.
    let (high, low) = {
        let mut lanes = lock(&shared.queues[e].lanes);
        (std::mem::take(&mut lanes.high), std::mem::take(&mut lanes.low))
    };
    let items = crashed
        .into_iter()
        .map(|it| (*it, true))
        .chain(high.into_iter().map(|it| (it, false)))
        .chain(low.into_iter().map(|it| (it, false)));
    let survivors = shared.pool.alive_engines();
    let lose = |item: WorkItem| {
        let mut st = lock(&shared.state);
        st.lost += 1;
        st.pending -= 1;
        st.pending_bad -= item.projected_bad as u64;
        st.depth[e] -= 1;
        st.marks.push(FleetMark {
            engine: e,
            kind: "lost",
            t_secs: t,
            ticket: Some(item.ticket),
        });
        let wake = st.draining && st.pending == 0;
        drop(st);
        if wake {
            wake_all_queues(shared);
        }
        let _ = item.tx.send(Err(ServeError::EngineLost {
            engine: e,
            job: item.ticket,
        }));
    };
    for (i, (mut item, retried)) in items.enumerate() {
        if survivors.is_empty() || (retried && item.retries >= shared.res.max_retries) {
            lose(item);
            continue;
        }
        // Wait already accumulated here carries over; a re-run pays the
        // modeled backoff on top. Neither touches any engine ledger.
        item.carried_wait_secs += (t - item.enqueue_clock).max(0.0);
        if retried {
            item.retries += 1;
            item.carried_wait_secs += shared.res.backoff_secs;
        }
        let ticket = item.ticket;
        match push_item(shared, survivors[i % survivors.len()], item, e) {
            Ok(target) => {
                let mut st = lock(&shared.state);
                st.failovers += 1;
                if retried {
                    st.retries += 1;
                }
                st.marks.push(FleetMark {
                    engine: target,
                    kind: "requeue",
                    t_secs: shared.pool.engine(target).clock(),
                    ticket: Some(ticket),
                });
            }
            Err(item) => lose(item),
        }
    }
}

/// Everything a drained service knows about what it ran.
pub struct DrainOutcome {
    /// Fleet accounting — the same shape the batch scheduler reports, so
    /// every `tcqr-obs` consumer (timelines, SLOs, dashboards) works on
    /// service runs unchanged. Jobs are engine-major in realized
    /// execution order (each [`JobReport::index`] is the ticket id), so
    /// segment narration stays monotone per engine even when a
    /// High-priority ticket jumped its lane.
    pub report: FleetReport,
    /// Realized execution order per engine: ticket ids in run order.
    pub execution_order: Vec<Vec<usize>>,
    /// Tickets admitted (and therefore run).
    pub admitted: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Jobs run to completion (including solver failures).
    pub completed: u64,
    /// Completed jobs whose solver returned a typed error.
    pub failed: u64,
    /// Worst queue-wait burn rate the live window observed (0.0 when
    /// admission control was off).
    pub worst_burn: f64,
    /// The spec's `max_burn_rate` (0.0 when admission control was off).
    pub burn_limit: f64,
    /// Whether a `queue_wait` objective was gating admission.
    pub admission_enabled: bool,
    /// Engines that died to an availability crash.
    pub deaths: u64,
    /// Work items re-homed onto survivors after an engine left rotation.
    pub failovers: u64,
    /// Crashed in-flight jobs re-run on a survivor (subset of failovers).
    pub retries: u64,
    /// Circuit-breaker quarantines.
    pub quarantines: u64,
    /// Quarantined engines that passed the reset-in-place cleanliness
    /// proof and re-entered rotation.
    pub rehabilitated: u64,
    /// Jobs cancelled by the deadline watchdog (resolved typed, never
    /// run).
    pub deadline_missed: u64,
    /// Low-priority submissions shed in degraded mode (never admitted).
    pub shed: u64,
    /// Admitted tickets resolved with [`ServeError::EngineLost`].
    pub lost: u64,
    /// Fleet lifecycle events, engine-major in simulated-clock order.
    pub marks: Vec<FleetMark>,
    /// The engine pool, returned to the caller for fingerprinting or
    /// reuse.
    pub pool: EnginePool,
}

impl DrainOutcome {
    /// The job permutation under which [`tcqr_batch::BatchScheduler`]
    /// replays this service run bit-for-bit: position `j*K + e` holds the
    /// `j`-th ticket engine `e` actually ran, so the scheduler's static
    /// lane `e` (`e, e+K, ...`) is exactly the service's realized sequence
    /// on engine `e`.
    pub fn oracle_order(&self) -> Vec<usize> {
        interleave_execution_order(&self.execution_order)
    }

    /// Narrate the outcome into a trace stream: the fleet report's
    /// `engine.segment` / `fleet.*` events (so timelines, SLO evaluation,
    /// and dashboards consume service runs unchanged), one `engine.mark`
    /// op per fleet lifecycle event (deaths, quarantines, requeues —
    /// engine-major in simulated-clock order, so emission is
    /// deterministic), and finally one `serve.summary` op with the
    /// service-level tallies.
    pub fn emit(&self, tracer: &Tracer) {
        self.report.emit(tracer);
        for m in &self.marks {
            let mut fields = vec![
                ("engine", Value::from(m.engine)),
                ("kind", Value::from(m.kind)),
                ("t", Value::F64(m.t_secs)),
            ];
            if let Some(t) = m.ticket {
                fields.push(("ticket", Value::from(t)));
            }
            tracer.op("engine.mark", &fields);
        }
        tracer.op(
            "serve.summary",
            &[
                ("admitted", Value::from(self.admitted)),
                ("rejected", Value::from(self.rejected)),
                ("completed", Value::from(self.completed)),
                ("failed", Value::from(self.failed)),
                ("engines", Value::from(self.report.engines.len())),
                ("admission", Value::from(self.admission_enabled)),
                ("worst_burn", Value::F64(self.worst_burn)),
                ("burn_limit", Value::F64(self.burn_limit)),
                ("deaths", Value::from(self.deaths)),
                ("failovers", Value::from(self.failovers)),
                ("retries", Value::from(self.retries)),
                ("quarantines", Value::from(self.quarantines)),
                ("rehabilitated", Value::from(self.rehabilitated)),
                ("deadline_missed", Value::from(self.deadline_missed)),
                ("shed", Value::from(self.shed)),
                ("lost", Value::from(self.lost)),
            ],
        );
    }
}

/// Interleave per-engine execution orders into the batch scheduler's
/// submission order: `out[j*K + e] = order[e][j]`. Panics unless the
/// per-engine counts form a valid round-robin split (they always do for a
/// full service run, and for any burst whose size is a multiple of `K`).
pub fn interleave_execution_order(order: &[Vec<usize>]) -> Vec<usize> {
    let k = order.len();
    let n: usize = order.iter().map(|lane| lane.len()).sum();
    let mut out = vec![usize::MAX; n];
    for (e, lane) in order.iter().enumerate() {
        for (j, &t) in lane.iter().enumerate() {
            let pos = j * k + e;
            assert!(
                pos < n && out[pos] == usize::MAX,
                "per-engine counts are not a round-robin split"
            );
            out[pos] = t;
        }
    }
    assert!(
        out.iter().all(|&t| t != usize::MAX),
        "per-engine counts are not a round-robin split"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcqr_batch::{jobgen, EngineHealth};
    use tcqr_core::{RgsqrfConfig, SolveOutput, Solver};
    use tensor_engine::{EngineFaultPlan, GpuSim};

    fn qr_job(seed: u64) -> Job {
        Job::rgsqrf(jobgen::gaussian_f32(32, 8, seed), RgsqrfConfig::default())
    }

    /// A job that blocks on a gate and touches no engine state: holds a
    /// worker busy without advancing clocks or op counters, so tests can
    /// pin queue contents before releasing the fleet.
    #[derive(Debug)]
    struct Plug {
        gate: Arc<(Mutex<bool>, Condvar)>,
    }

    impl Solver for Plug {
        fn kind(&self) -> &'static str {
            "plug"
        }
        fn shape(&self) -> (usize, usize) {
            (0, 0)
        }
        fn solve(&self, _eng: &GpuSim, _policy: &RecoveryPolicy) -> Result<SolveOutput, TcqrError> {
            let (m, cv) = &*self.gate;
            let mut open = m.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            Ok(SolveOutput::Solution(Vec::new()))
        }
    }

    fn plug() -> (Job, Arc<(Mutex<bool>, Condvar)>) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        (
            Job::custom(Plug {
                gate: Arc::clone(&gate),
            }),
            gate,
        )
    }

    fn open_gate(gate: &Arc<(Mutex<bool>, Condvar)>) {
        let (m, cv) = &**gate;
        *m.lock().unwrap() = true;
        cv.notify_all();
    }

    fn wait_for_death(handle: &Handle, e: usize) {
        while handle.pool().health(e) != EngineHealth::Dead {
            std::thread::yield_now();
        }
    }

    #[test]
    fn submit_runs_and_streams_results() {
        let handle = Handle::start(ServeConfig {
            engines: 2,
            ..ServeConfig::default()
        });
        let t0 = handle.submit(qr_job(1), Priority::High).unwrap();
        let t1 = handle.submit(qr_job(2), Priority::Low).unwrap();
        assert_eq!((t0.id(), t0.engine()), (0, 0));
        assert_eq!((t1.id(), t1.engine()), (1, 1));
        assert_eq!(t0.priority(), Priority::High);
        let r0 = t0.wait().expect("worker alive");
        assert!(matches!(r0, Ok(JobOutput::Qr(_))));
        let r1 = t1.wait().expect("worker alive");
        assert!(r1.is_ok());
        let out = handle.drain();
        assert_eq!(out.admitted, 2);
        assert_eq!(out.completed, 2);
        assert_eq!(out.failed, 0);
        assert_eq!(out.rejected, 0);
        assert!(!out.admission_enabled);
        assert_eq!(out.report.jobs.len(), 2);
        assert_eq!(out.report.jobs[0].index, 0);
        assert_eq!(out.report.jobs[0].engine, 0);
        assert!(out.report.jobs[0].exec_secs > 0.0);
        assert_eq!(out.oracle_order(), vec![0, 1]);
    }

    #[test]
    fn typed_solver_errors_stream_through() {
        let handle = Handle::start(ServeConfig {
            engines: 1,
            ..ServeConfig::default()
        });
        // Wide input: rejected by the solver with a typed error, not by
        // the service.
        let bad = Job::rgsqrf(jobgen::gaussian_f32(4, 8, 3), RgsqrfConfig::default());
        let t = handle.submit(bad, Priority::Low).unwrap();
        let res = t.wait().expect("worker alive");
        assert!(matches!(res, Err(TcqrError::ShapeMismatch { .. })));
        let out = handle.drain();
        assert_eq!(out.completed, 1);
        assert_eq!(out.failed, 1);
        assert!(!out.report.jobs[0].ok);
        assert!(out.report.jobs[0].error.as_deref().unwrap().contains("rgsqrf"));
    }

    #[test]
    fn close_rejects_new_submissions_but_finishes_queued_work() {
        let handle = Handle::start(ServeConfig {
            engines: 1,
            ..ServeConfig::default()
        });
        let t = handle.submit(qr_job(5), Priority::Low).unwrap();
        handle.close();
        let err = handle.submit(qr_job(6), Priority::Low).unwrap_err();
        assert_eq!(err, ServeError::Draining);
        assert!(t.wait().expect("queued job still runs").is_ok());
        let out = handle.drain();
        assert_eq!(out.admitted, 1);
        assert_eq!(out.completed, 1);
    }

    #[test]
    fn drain_emits_the_serve_summary() {
        use std::sync::Arc;
        use tcqr_trace::{EventKind, MemSink};

        let handle = Handle::start(ServeConfig {
            engines: 2,
            ..ServeConfig::default()
        });
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| handle.submit(qr_job(10 + i), Priority::Low).unwrap())
            .collect();
        for t in tickets {
            t.wait().expect("worker alive").expect("well-posed");
        }
        let out = handle.drain();
        let sink = Arc::new(MemSink::new());
        out.emit(&Tracer::new(sink.clone()));
        let events = sink.snapshot();
        let segs = events.iter().filter(|e| e.name == "engine.segment").count();
        assert_eq!(segs, 4, "one segment per ticket");
        let summary = events.iter().find(|e| e.name == "serve.summary").unwrap();
        assert_eq!(summary.kind, EventKind::Op);
        assert_eq!(summary.u64_field("admitted"), Some(4));
        assert_eq!(summary.u64_field("rejected"), Some(0));
        assert_eq!(summary.bool_field("admission"), Some(false));
        // The fleet.summary rollup precedes it, so obs consumers see the
        // standard event taxonomy.
        assert!(events.iter().any(|e| e.name == "fleet.summary"));
    }

    #[test]
    fn interleave_rebuilds_round_robin_order() {
        // 2 engines; engine 0 ran tickets [0, 2], engine 1 ran [3, 1]
        // (a High overtake): the oracle order alternates lanes.
        let order = vec![vec![0, 2], vec![3, 1]];
        assert_eq!(interleave_execution_order(&order), vec![0, 3, 2, 1]);
        // Uneven (valid round-robin) split: 3 jobs over 2 engines.
        let order = vec![vec![0, 2], vec![1]];
        assert_eq!(interleave_execution_order(&order), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "round-robin")]
    fn interleave_rejects_impossible_splits() {
        // Engine 1 ran two jobs while engine 0 ran none: no round-robin
        // submission order produces that.
        let _ = interleave_execution_order(&[Vec::new(), vec![0, 1]]);
    }

    #[test]
    fn interleave_handles_empty_and_single_engine_inputs() {
        // Degenerate inputs are valid round-robin splits and must not
        // panic: no engines and no jobs...
        assert_eq!(interleave_execution_order(&[]), Vec::<usize>::new());
        // ...one engine with no jobs...
        assert_eq!(interleave_execution_order(&[Vec::new()]), Vec::<usize>::new());
        // ...and one engine, whose realized order IS the oracle order.
        assert_eq!(interleave_execution_order(&[vec![4, 2, 7]]), vec![4, 2, 7]);
    }

    #[test]
    fn submit_after_close_rejects_both_priorities() {
        let handle = Handle::start(ServeConfig {
            engines: 1,
            ..ServeConfig::default()
        });
        handle.close();
        assert_eq!(
            handle.submit(qr_job(40), Priority::High).unwrap_err(),
            ServeError::Draining
        );
        assert_eq!(
            handle.submit(qr_job(41), Priority::Low).unwrap_err(),
            ServeError::Draining
        );
        let out = handle.drain();
        assert_eq!(out.admitted, 0);
    }

    #[test]
    fn drain_with_zero_submissions_is_empty_but_consistent() {
        let out = Handle::start(ServeConfig {
            engines: 3,
            ..ServeConfig::default()
        })
        .drain();
        assert_eq!(out.admitted, 0);
        assert_eq!(out.completed, 0);
        assert_eq!(out.failed, 0);
        assert_eq!((out.deaths, out.lost, out.deadline_missed, out.shed), (0, 0, 0, 0));
        assert!(out.report.jobs.is_empty());
        assert_eq!(out.report.engines.len(), 3);
        assert!(out.marks.is_empty());
        assert_eq!(out.execution_order, vec![Vec::<usize>::new(); 3]);
        assert_eq!(out.oracle_order(), Vec::<usize>::new());
    }

    #[test]
    fn engine_loss_fails_over_and_outputs_match_the_oracle() {
        use tcqr_batch::{output_fingerprint, BatchScheduler, EnginePool};

        let handle = Handle::start(ServeConfig {
            engines: 2,
            ..ServeConfig::default()
        });
        // Crash engine 0 on its first committed op; plugs commit none, so
        // the first real job popped there dies mid-run.
        handle
            .pool()
            .set_avail_plan(0, Some(EngineFaultPlan::crash_at(0)));
        let (p0, g0) = plug();
        let (p1, g1) = plug();
        let _t0 = handle.submit(p0, Priority::Low).unwrap();
        let _t1 = handle.submit(p1, Priority::Low).unwrap();
        // Tickets 2..6 pin round-robin: 2, 4 on engine 0; 3, 5 on engine 1.
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| handle.submit(qr_job(50 + i), Priority::Low).unwrap())
            .collect();
        open_gate(&g0);
        open_gate(&g1);
        let out = handle.drain();

        assert_eq!(out.deaths, 1);
        // The crashed job (ticket 2) plus the one queued behind it
        // (ticket 4) re-homed onto engine 1; the crashed one was a re-run.
        assert_eq!(out.failovers, 2);
        assert_eq!(out.retries, 1);
        assert_eq!((out.lost, out.deadline_missed), (0, 0));
        assert_eq!(out.admitted, 6);
        assert_eq!(out.completed, 6);
        assert_eq!(out.failed, 0);
        assert_eq!(out.pool.health(0), EngineHealth::Dead);
        // Engine 0 only ever finished its plug; engine 1 ran its own lane
        // then the re-homed work in failover order.
        assert_eq!(out.execution_order[0], vec![0]);
        assert_eq!(out.execution_order[1], vec![1, 3, 5, 2, 4]);
        assert!(out.marks.iter().any(|m| m.kind == "death" && m.engine == 0));
        assert_eq!(out.marks.iter().filter(|m| m.kind == "requeue").count(), 2);

        // Every completed output is bit-identical to the healthy-pool
        // batch oracle: outputs are pure functions of the job.
        let oracle_jobs: Vec<BatchJob> = (0..4)
            .map(|i| BatchJob {
                job: qr_job(50 + i),
                policy: RecoveryPolicy::default(),
                precision: None,
            })
            .collect();
        let oracle = BatchScheduler::with_threads(1).run(
            &EnginePool::new(1, EngineConfig::default()),
            &oracle_jobs,
        );
        for (t, want) in tickets.into_iter().zip(&oracle.results) {
            let got = t.wait().expect("ticket resolves").expect("well-posed job");
            let want = want.as_ref().expect("oracle job is well-posed");
            assert_eq!(output_fingerprint(&got), output_fingerprint(want));
        }
    }

    #[test]
    fn deadline_watchdog_cancels_late_jobs_typed() {
        let handle = Handle::start(ServeConfig {
            engines: 1,
            resilience: ResilienceConfig {
                deadline_secs: Some(0.0),
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        });
        let (p, g) = plug();
        let _t0 = handle.submit(p, Priority::Low).unwrap();
        // Both enqueue at clock 0 (the plug charges nothing). Ticket 1
        // pops at clock 0 (wait 0, not > 0) and runs; ticket 2 pops after
        // ticket 1 advanced the clock and blows the zero deadline.
        let t1 = handle.submit(qr_job(60), Priority::Low).unwrap();
        let t2 = handle.submit(qr_job(61), Priority::Low).unwrap();
        open_gate(&g);
        let out = handle.drain();
        assert!(t1.wait().expect("ran").is_ok());
        assert_eq!(
            t2.wait().unwrap_err(),
            ServeError::DeadlineExceeded { deadline_secs: 0.0 }
        );
        assert_eq!(out.deadline_missed, 1);
        assert_eq!(out.completed, 2, "plug and ticket 1; ticket 2 never ran");
        assert!(out.marks.iter().any(|m| m.kind == "deadline" && m.ticket == Some(2)));
    }

    #[test]
    fn breaker_quarantines_then_rehabilitates_via_reset_proof() {
        let handle = Handle::start(ServeConfig {
            engines: 1,
            resilience: ResilienceConfig {
                quarantine_after: 2,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        });
        let (p, g) = plug();
        let _t0 = handle.submit(p, Priority::Low).unwrap();
        let bad = || Job::rgsqrf(jobgen::gaussian_f32(4, 8, 9), RgsqrfConfig::default());
        let t1 = handle.submit(bad(), Priority::Low).unwrap();
        let t2 = handle.submit(bad(), Priority::Low).unwrap();
        let t3 = handle.submit(qr_job(62), Priority::Low).unwrap();
        open_gate(&g);
        let out = handle.drain();
        assert!(matches!(t1.wait().unwrap(), Err(TcqrError::ShapeMismatch { .. })));
        assert!(matches!(t2.wait().unwrap(), Err(TcqrError::ShapeMismatch { .. })));
        // Two consecutive typed failures tripped the breaker; the engine
        // passed the reset-in-place cleanliness proof, re-entered
        // rotation, and ran the good job.
        assert!(t3.wait().unwrap().is_ok());
        assert_eq!(out.quarantines, 1);
        assert_eq!(out.rehabilitated, 1);
        assert_eq!(out.pool.health(0), EngineHealth::Healthy);
        assert!(out.marks.iter().any(|m| m.kind == "quarantine"));
        assert!(out.marks.iter().any(|m| m.kind == "rehabilitated"));
    }

    #[test]
    fn degraded_fleet_sheds_low_priority_first() {
        let handle = Handle::start(ServeConfig {
            engines: 2,
            ..ServeConfig::default()
        });
        handle
            .pool()
            .set_avail_plan(0, Some(EngineFaultPlan::crash_at(0)));
        let (p0, g0) = plug();
        let (p1, g1) = plug();
        let _t0 = handle.submit(p0, Priority::Low).unwrap();
        let _t1 = handle.submit(p1, Priority::Low).unwrap();
        let t2 = handle.submit(qr_job(70), Priority::Low).unwrap();
        assert_eq!(t2.engine(), 0);
        open_gate(&g0);
        wait_for_death(&handle, 0);
        // One engine dead and the backlog (plug 1 + re-homed ticket 2)
        // covers the lone survivor: Low intake sheds, High still lands.
        let err = handle.submit(qr_job(71), Priority::Low).unwrap_err();
        assert_eq!(err, ServeError::Degraded { dead: 1, alive: 1 });
        let t4 = handle.submit(qr_job(72), Priority::High).unwrap();
        assert_eq!(t4.engine(), 1);
        open_gate(&g1);
        let out = handle.drain();
        assert!(t2.wait().unwrap().is_ok(), "re-homed Low job still completes");
        assert!(t4.wait().unwrap().is_ok());
        assert_eq!(out.shed, 1);
        assert_eq!(out.deaths, 1);
        assert_eq!(out.admitted, 4);
        assert_eq!(out.completed, 4);
        // High overtook the re-homed Low job on the survivor.
        assert_eq!(out.execution_order[1], vec![1, 3, 2]);
    }

    #[test]
    fn no_survivors_resolves_every_ticket_typed() {
        let handle = Handle::start(ServeConfig {
            engines: 1,
            resilience: ResilienceConfig {
                max_retries: 0,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        });
        handle
            .pool()
            .set_avail_plan(0, Some(EngineFaultPlan::crash_at(0)));
        let (p, g) = plug();
        let _t0 = handle.submit(p, Priority::Low).unwrap();
        let t1 = handle.submit(qr_job(80), Priority::Low).unwrap();
        let t2 = handle.submit(qr_job(81), Priority::Low).unwrap();
        open_gate(&g);
        wait_for_death(&handle, 0);
        // The whole rotation is gone: intake rejects even High, typed.
        let err = handle.submit(qr_job(82), Priority::High).unwrap_err();
        assert_eq!(err, ServeError::Degraded { dead: 1, alive: 0 });
        let out = handle.drain();
        // The crashed job had no retry budget; the queued one had no
        // survivor. Both tickets resolved, nothing silently dropped.
        assert_eq!(t1.wait().unwrap_err(), ServeError::EngineLost { engine: 0, job: 1 });
        assert_eq!(t2.wait().unwrap_err(), ServeError::EngineLost { engine: 0, job: 2 });
        assert_eq!(out.lost, 2);
        assert_eq!(out.deaths, 1);
        assert_eq!(out.completed, 1, "only the plug finished");
        assert_eq!(out.marks.iter().filter(|m| m.kind == "lost").count(), 2);
    }
}
