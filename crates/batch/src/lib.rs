//! # tcqr-batch
//!
//! Batched multi-engine execution for the HPDC '20 QR reproduction.
//!
//! The paper motivates TensorCore QR with data-center workloads: many
//! independent least-squares and low-rank problems, not one giant
//! factorization. This crate adds that layer on top of the single-tenant
//! solvers of [`tcqr_core`]:
//!
//! - [`EnginePool`] — N independent [`tensor_engine::GpuSim`] instances
//!   sharing one [`tensor_engine::EngineConfig`] / performance model, with
//!   per-engine fault plans and precision overrides (each tenant keeps its
//!   own recovery ladder);
//! - [`Job`] / [`BatchJob`] — heterogeneous job descriptors (`Rgsqrf`,
//!   `Lls`, `QrSvd`, `LuIr`, plus [`Job::Custom`] for any other
//!   [`tcqr_core::Solver`]) that dispatch through the shared
//!   [`tcqr_core::Solver`] trait and return typed
//!   [`tcqr_core::TcqrError`]s per job;
//! - [`BatchScheduler`] — drains a job queue over rayon, returning per-job
//!   results plus a [`FleetReport`] (per-engine clocks and ledgers,
//!   aggregate simulated throughput, makespan vs. ideal, queue-wait
//!   histogram) fed from the existing ledger/trace machinery into
//!   [`tcqr_metrics`];
//! - [`jobgen`] — a self-contained seeded workload generator for benches
//!   and tests (no external RNG crate, so generated problems are identical
//!   under every build configuration).
//!
//! ## Determinism contract
//!
//! Batched results are **bit-identical regardless of worker count or
//! scheduling order**. The scheduler assigns job `i` to the `i mod S`-th
//! engine *in rotation* (static round-robin lanes over
//! [`pool::EnginePool::alive_engines`] — identical to `i mod K` when every
//! engine is healthy); each lane runs its jobs sequentially in assignment
//! order on an engine that the jobs own for their lifetime, and rayon
//! merely work-steals whole lanes across OS threads. Scheduling therefore
//! decides *when* a lane executes, never *what* it computes: outputs,
//! per-engine ledgers/clocks, and per-engine fault-injection schedules do
//! not depend on thread count. The simulated queue-wait and makespan
//! figures come from the engines' modeled clocks, which are equally
//! scheduling-independent.
//!
//! ## Failover preserves the contract
//!
//! When an engine dies mid-run (a `tensor_engine::avail` crash), its lane
//! unwinds at the job boundary and every job the corpse stranded is
//! re-dispatched in a new *wave*: stranded indices, ascending, are dealt
//! round-robin over the surviving rotation — a pure permutation of the
//! lane assignment, so the PR 5 bit-identity argument still applies wave
//! by wave. Engine crashes fire off deterministic per-engine op counters,
//! lanes run their jobs sequentially, and wave boundaries are joins; no
//! part of the re-dispatch depends on worker count. Job outputs are pure
//! functions of the job (engine accumulated state never feeds the
//! numerics), so a healthy-pool [`BatchScheduler`] run of the same jobs
//! remains the bit-exact oracle for every job that completes, wherever it
//! ended up running.
//!
//! ```
//! use tcqr_batch::{jobgen, BatchScheduler, EnginePool};
//! use tensor_engine::EngineConfig;
//!
//! let pool = EnginePool::new(2, EngineConfig::default());
//! let jobs = jobgen::job_mix(&jobgen::JobMixConfig {
//!     seed: 7,
//!     jobs: 4,
//!     m: 96,
//!     n: 24,
//! });
//! let out = BatchScheduler::new().run(&pool, &jobs);
//! assert_eq!(out.results.len(), 4);
//! assert!(out.results.iter().all(|r| r.is_ok()));
//! assert!(out.report.makespan_secs() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod fingerprint;
pub mod fleet;
pub mod job;
pub mod jobgen;
pub mod pool;
pub mod scheduler;

pub use fleet::{EngineReport, FleetReport, JobReport};
pub use job::{output_fingerprint, result_fingerprint, BatchJob, Job, JobOutput, LlsMethod};
pub use pool::{EngineHealth, EnginePool};
pub use scheduler::{batch_rgsqrf, batch_solve, BatchOutcome, BatchScheduler};
