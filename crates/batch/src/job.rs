//! Heterogeneous job descriptors over the [`tcqr_core::Solver`] workloads.
//!
//! Dispatch lives in `tcqr_core::solver`: each variant wraps a problem
//! struct implementing [`Solver`], and [`Job::run`] delegates through the
//! trait. The batch scheduler and the `tcqr-serve` service therefore share
//! one dispatch surface — a new workload implements [`Solver`] once and
//! rides in via [`Job::Custom`] without touching either scheduler.

use crate::fingerprint::Fingerprint;
use densemat::Mat;
use tcqr_core::lowrank::QrKind;
use tcqr_core::lu_ir::LuIrConfig;
use tcqr_core::{
    LlsProblem, LuIrProblem, QrSvdProblem, RecoveryPolicy, RefineConfig, RgsqrfConfig,
    RgsqrfProblem, Solver, TcqrError,
};
use tensor_engine::{GpuSim, PrecisionOverride};

pub use tcqr_core::solver::LlsMethod;
pub use tcqr_core::solver::SolveOutput as JobOutput;

/// One unit of batched work, delegating to the [`Solver`] implementations
/// of [`tcqr_core`].
#[derive(Debug)]
pub enum Job {
    /// Mixed-precision QR factorization (with column scaling).
    Rgsqrf(RgsqrfProblem),
    /// Least-squares solve `min ||Ax - b||`.
    Lls(LlsProblem),
    /// QR-SVD low-rank approximation pipeline (§3.4).
    QrSvd(QrSvdProblem),
    /// LU with iterative refinement on a square system.
    LuIr(LuIrProblem),
    /// Any other [`Solver`] workload: the extension point that lets new
    /// solvers run on the batch scheduler and the serve front-end without
    /// either learning a new variant.
    Custom(Box<dyn Solver>),
}

impl Job {
    /// Mixed-precision QR factorization job.
    pub fn rgsqrf(a: Mat<f32>, cfg: RgsqrfConfig) -> Job {
        Job::Rgsqrf(RgsqrfProblem { a, cfg })
    }

    /// Least-squares job via `method`.
    pub fn lls(
        a: Mat<f64>,
        b: Vec<f64>,
        method: LlsMethod,
        qr_cfg: RgsqrfConfig,
        refine: RefineConfig,
    ) -> Job {
        Job::Lls(LlsProblem {
            a,
            b,
            method,
            qr_cfg,
            refine,
        })
    }

    /// QR-SVD low-rank approximation job.
    pub fn qr_svd(a: Mat<f32>, qr_kind: QrKind, cfg: RgsqrfConfig) -> Job {
        Job::QrSvd(QrSvdProblem { a, qr_kind, cfg })
    }

    /// LU-with-iterative-refinement job.
    pub fn lu_ir(a: Mat<f64>, b: Vec<f64>, cfg: LuIrConfig) -> Job {
        Job::LuIr(LuIrProblem { a, b, cfg })
    }

    /// Wrap any [`Solver`] workload as a job.
    pub fn custom(solver: impl Solver + 'static) -> Job {
        Job::Custom(Box::new(solver))
    }

    /// The workload behind this job — the single dispatch surface shared
    /// with the serve front-end.
    pub fn solver(&self) -> &dyn Solver {
        match self {
            Job::Rgsqrf(p) => p,
            Job::Lls(p) => p,
            Job::QrSvd(p) => p,
            Job::LuIr(p) => p,
            Job::Custom(s) => s.as_ref(),
        }
    }

    /// Stable job-kind label for reports and trace events.
    pub fn kind(&self) -> &'static str {
        self.solver().kind()
    }

    /// Problem shape `(rows, cols)`, for reports.
    pub fn shape(&self) -> (usize, usize) {
        self.solver().shape()
    }

    /// Run the job on `eng` under `policy`. The engine is owned by this
    /// job for the duration of the call (the scheduler guarantees it).
    pub fn run(&self, eng: &GpuSim, policy: &RecoveryPolicy) -> Result<JobOutput, TcqrError> {
        self.solver().solve(eng, policy)
    }
}

/// A [`Job`] plus its per-tenant execution knobs.
#[derive(Debug)]
pub struct BatchJob {
    /// The work itself.
    pub job: Job,
    /// Recovery ladder for this job's fault retries.
    pub policy: RecoveryPolicy,
    /// Optional per-tenant precision override, installed on the engine for
    /// the duration of the job and restored afterwards (the recovery
    /// ladder's own escalations still nest inside it).
    pub precision: Option<PrecisionOverride>,
}

impl From<Job> for BatchJob {
    fn from(job: Job) -> Self {
        BatchJob {
            job,
            policy: RecoveryPolicy::default(),
            precision: None,
        }
    }
}

/// Bit-exact fingerprint of a [`JobOutput`]'s numerical payload (see
/// [`crate::fingerprint`]): identical runs must produce identical hashes,
/// bit for bit.
pub fn output_fingerprint(out: &JobOutput) -> u64 {
    let mut fp = Fingerprint::new();
    match out {
        JobOutput::Qr(f) => {
            fp.push_str("qr");
            fp.push_u64(f.q.nrows() as u64);
            fp.push_u64(f.q.ncols() as u64);
            fp.push_f32s(f.q.data());
            fp.push_f32s(f.r.data());
        }
        JobOutput::Solution(x) => {
            fp.push_str("solution");
            fp.push_f32s(x);
        }
        JobOutput::Refine(o) => {
            fp.push_str("refine");
            fp.push_f64s(&o.x);
            fp.push_u64(o.iterations as u64);
            fp.push_u64(o.converged as u64);
            fp.push_u64(o.stalled as u64);
            fp.push_f64s(&o.history);
        }
        JobOutput::Svd(s) => {
            fp.push_str("svd");
            fp.push_u64(s.q.nrows() as u64);
            fp.push_u64(s.q.ncols() as u64);
            fp.push_f32s(s.q.data());
            fp.push_f64s(s.u.data());
            fp.push_f64s(&s.s);
            fp.push_f64s(s.v.data());
        }
    }
    fp.finish()
}

/// Fingerprint of a per-job result: the output's hash when it succeeded,
/// a hash of the typed error's message when it failed. Errors are part of
/// the determinism contract too.
pub fn result_fingerprint(r: &Result<JobOutput, TcqrError>) -> u64 {
    match r {
        Ok(out) => output_fingerprint(out),
        Err(e) => {
            let mut fp = Fingerprint::new();
            fp.push_str("err");
            fp.push_str(&e.to_string());
            fp.finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_engine::EngineConfig;

    fn small(m: usize, n: usize, seed: u64) -> Mat<f32> {
        crate::jobgen::gaussian_f32(m, n, seed)
    }

    #[test]
    fn shape_errors_are_typed_not_panics() {
        let eng = GpuSim::new(EngineConfig::default());
        let job = Job::rgsqrf(small(8, 16, 1), RgsqrfConfig::default()); // wide: invalid
        let err = job.run(&eng, &RecoveryPolicy::default()).unwrap_err();
        assert!(matches!(err, TcqrError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn identical_jobs_fingerprint_identically() {
        let cfg = RgsqrfConfig {
            cutoff: 16,
            caqr_width: 4,
            ..RgsqrfConfig::default()
        };
        let job = Job::rgsqrf(small(48, 12, 3), cfg);
        let a = {
            let eng = GpuSim::new(EngineConfig::default());
            result_fingerprint(&job.run(&eng, &RecoveryPolicy::default()))
        };
        let b = {
            let eng = GpuSim::new(EngineConfig::default());
            result_fingerprint(&job.run(&eng, &RecoveryPolicy::default()))
        };
        assert_eq!(a, b);
    }

    #[test]
    fn custom_solver_jobs_dispatch_through_the_trait() {
        /// A workload the batch crate has never heard of: kind/shape/solve
        /// all come from the trait impl.
        #[derive(Debug)]
        struct DoubleQr {
            a: Mat<f32>,
            cfg: RgsqrfConfig,
        }
        impl Solver for DoubleQr {
            fn kind(&self) -> &'static str {
                "double_qr"
            }
            fn shape(&self) -> (usize, usize) {
                (self.a.nrows(), self.a.ncols())
            }
            fn solve(
                &self,
                eng: &GpuSim,
                policy: &RecoveryPolicy,
            ) -> Result<JobOutput, TcqrError> {
                // Factor twice, return the second set: exercises repeated
                // engine use inside one custom job.
                let first = RgsqrfProblem {
                    a: self.a.clone(),
                    cfg: self.cfg,
                }
                .solve(eng, policy)?;
                drop(first);
                RgsqrfProblem {
                    a: self.a.clone(),
                    cfg: self.cfg,
                }
                .solve(eng, policy)
            }
        }

        let job = Job::custom(DoubleQr {
            a: small(32, 8, 9),
            cfg: RgsqrfConfig::default(),
        });
        assert_eq!(job.kind(), "double_qr");
        assert_eq!(job.shape(), (32, 8));
        let eng = GpuSim::new(EngineConfig::default());
        let out = job.run(&eng, &RecoveryPolicy::default()).unwrap();
        assert!(matches!(out, JobOutput::Qr(_)));
    }
}
