//! Heterogeneous job descriptors over the single-tenant `try_*` solvers.

use crate::fingerprint::Fingerprint;
use densemat::Mat;
use tcqr_core::lls;
use tcqr_core::lowrank::{self, QrKind, QrSvd};
use tcqr_core::lu_ir::{self, LuIrConfig};
use tcqr_core::{QrFactors, RecoveryPolicy, RefineConfig, RefineOutcome, RgsqrfConfig, TcqrError};
use tensor_engine::{GpuSim, PrecisionOverride};

/// Which least-squares entry point an [`Job::Lls`] job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LlsMethod {
    /// RGSQRF direct solve: `x = R \ (Q^T b)` in f32.
    Direct,
    /// CGLS refinement with the RGSQRF `R` preconditioner (Algorithm 3).
    Cgls,
    /// CGLS on the re-orthogonalized factorization (§3.3).
    CglsReortho,
    /// LSQR refinement with the RGSQRF `R` preconditioner.
    Lsqr,
}

impl LlsMethod {
    /// Stable lowercase name, used in trace events and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            LlsMethod::Direct => "direct",
            LlsMethod::Cgls => "cgls",
            LlsMethod::CglsReortho => "cgls_reortho",
            LlsMethod::Lsqr => "lsqr",
        }
    }
}

/// One unit of batched work, delegating to the fault-tolerant `try_*`
/// solver entry points of [`tcqr_core`].
#[derive(Debug)]
pub enum Job {
    /// Mixed-precision QR factorization (with column scaling).
    Rgsqrf {
        /// Tall input, `m x n` with `m >= n >= 1`.
        a: Mat<f32>,
        /// Recursion / panel configuration.
        cfg: RgsqrfConfig,
    },
    /// Least-squares solve `min ||Ax - b||`.
    Lls {
        /// Tall input, `m x n`.
        a: Mat<f64>,
        /// Right-hand side, length `m`.
        b: Vec<f64>,
        /// Which solver runs the problem.
        method: LlsMethod,
        /// QR configuration for the preconditioner / direct factorization.
        qr_cfg: RgsqrfConfig,
        /// Refinement tolerance and iteration cap (ignored by
        /// [`LlsMethod::Direct`]).
        refine: RefineConfig,
    },
    /// QR-SVD low-rank approximation pipeline (§3.4).
    QrSvd {
        /// Tall input, `m x n`.
        a: Mat<f32>,
        /// Which QR feeds the SVD.
        kind: QrKind,
        /// QR configuration.
        cfg: RgsqrfConfig,
    },
    /// LU with iterative refinement on a square system.
    LuIr {
        /// Square input, `n x n`.
        a: Mat<f64>,
        /// Right-hand side, length `n`.
        b: Vec<f64>,
        /// Blocked-LU and refinement configuration.
        cfg: LuIrConfig,
    },
}

impl Job {
    /// Stable job-kind label for reports and trace events.
    pub fn kind(&self) -> &'static str {
        match self {
            Job::Rgsqrf { .. } => "rgsqrf",
            Job::Lls { method, .. } => match method {
                LlsMethod::Direct => "lls.direct",
                LlsMethod::Cgls => "lls.cgls",
                LlsMethod::CglsReortho => "lls.cgls_reortho",
                LlsMethod::Lsqr => "lls.lsqr",
            },
            Job::QrSvd { .. } => "qr_svd",
            Job::LuIr { .. } => "lu_ir",
        }
    }

    /// Problem shape `(rows, cols)`, for reports.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            Job::Rgsqrf { a, .. } => (a.nrows(), a.ncols()),
            Job::Lls { a, .. } => (a.nrows(), a.ncols()),
            Job::QrSvd { a, .. } => (a.nrows(), a.ncols()),
            Job::LuIr { a, .. } => (a.nrows(), a.ncols()),
        }
    }

    /// Run the job on `eng` under `policy`. The engine is owned by this
    /// job for the duration of the call (the scheduler guarantees it).
    pub fn run(&self, eng: &GpuSim, policy: &RecoveryPolicy) -> Result<JobOutput, TcqrError> {
        match self {
            Job::Rgsqrf { a, cfg } => {
                lls::try_rgsqrf_scaled(eng, a, cfg, policy).map(JobOutput::Qr)
            }
            Job::Lls {
                a,
                b,
                method,
                qr_cfg,
                refine,
            } => match method {
                LlsMethod::Direct => {
                    let a32: Mat<f32> = a.convert();
                    let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
                    lls::try_rgsqrf_direct(eng, &a32, &b32, qr_cfg, policy)
                        .map(JobOutput::Solution)
                }
                LlsMethod::Cgls => {
                    lls::try_cgls_qr(eng, a, b, qr_cfg, refine, policy).map(JobOutput::Refine)
                }
                LlsMethod::CglsReortho => lls::try_cgls_qr_reortho(eng, a, b, qr_cfg, refine, policy)
                    .map(JobOutput::Refine),
                LlsMethod::Lsqr => {
                    lls::try_lsqr_qr(eng, a, b, qr_cfg, refine, policy).map(JobOutput::Refine)
                }
            },
            Job::QrSvd { a, kind, cfg } => {
                lowrank::try_qr_svd(eng, a, *kind, cfg, policy).map(JobOutput::Svd)
            }
            Job::LuIr { a, b, cfg } => {
                lu_ir::try_lu_ir_solve(eng, a, b, cfg, policy).map(JobOutput::Refine)
            }
        }
    }
}

/// A [`Job`] plus its per-tenant execution knobs.
#[derive(Debug)]
pub struct BatchJob {
    /// The work itself.
    pub job: Job,
    /// Recovery ladder for this job's fault retries.
    pub policy: RecoveryPolicy,
    /// Optional per-tenant precision override, installed on the engine for
    /// the duration of the job and restored afterwards (the recovery
    /// ladder's own escalations still nest inside it).
    pub precision: Option<PrecisionOverride>,
}

impl From<Job> for BatchJob {
    fn from(job: Job) -> Self {
        BatchJob {
            job,
            policy: RecoveryPolicy::default(),
            precision: None,
        }
    }
}

/// What a successfully completed [`Job`] produced.
#[derive(Debug)]
pub enum JobOutput {
    /// QR factors from [`Job::Rgsqrf`].
    Qr(QrFactors),
    /// f32 direct-solve solution from [`Job::Lls`] with
    /// [`LlsMethod::Direct`].
    Solution(Vec<f32>),
    /// Refinement outcome from iterative [`Job::Lls`] methods and
    /// [`Job::LuIr`].
    Refine(RefineOutcome),
    /// Factors from [`Job::QrSvd`].
    Svd(QrSvd),
}

impl JobOutput {
    /// Bit-exact fingerprint of the numerical payload (see
    /// [`crate::fingerprint`]): identical runs must produce identical
    /// hashes, bit for bit.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        match self {
            JobOutput::Qr(f) => {
                fp.push_str("qr");
                fp.push_u64(f.q.nrows() as u64);
                fp.push_u64(f.q.ncols() as u64);
                fp.push_f32s(f.q.data());
                fp.push_f32s(f.r.data());
            }
            JobOutput::Solution(x) => {
                fp.push_str("solution");
                fp.push_f32s(x);
            }
            JobOutput::Refine(o) => {
                fp.push_str("refine");
                fp.push_f64s(&o.x);
                fp.push_u64(o.iterations as u64);
                fp.push_u64(o.converged as u64);
                fp.push_u64(o.stalled as u64);
                fp.push_f64s(&o.history);
            }
            JobOutput::Svd(s) => {
                fp.push_str("svd");
                fp.push_u64(s.q.nrows() as u64);
                fp.push_u64(s.q.ncols() as u64);
                fp.push_f32s(s.q.data());
                fp.push_f64s(s.u.data());
                fp.push_f64s(&s.s);
                fp.push_f64s(s.v.data());
            }
        }
        fp.finish()
    }
}

/// Fingerprint of a per-job result: the output's hash when it succeeded,
/// a hash of the typed error's message when it failed. Errors are part of
/// the determinism contract too.
pub fn result_fingerprint(r: &Result<JobOutput, TcqrError>) -> u64 {
    match r {
        Ok(out) => out.fingerprint(),
        Err(e) => {
            let mut fp = Fingerprint::new();
            fp.push_str("err");
            fp.push_str(&e.to_string());
            fp.finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_engine::EngineConfig;

    fn small(m: usize, n: usize, seed: u64) -> Mat<f32> {
        crate::jobgen::gaussian_f32(m, n, seed)
    }

    #[test]
    fn shape_errors_are_typed_not_panics() {
        let eng = GpuSim::new(EngineConfig::default());
        let job = Job::Rgsqrf {
            a: small(8, 16, 1), // wide: invalid
            cfg: RgsqrfConfig::default(),
        };
        let err = job.run(&eng, &RecoveryPolicy::default()).unwrap_err();
        assert!(matches!(err, TcqrError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn identical_jobs_fingerprint_identically() {
        let cfg = RgsqrfConfig {
            cutoff: 16,
            caqr_width: 4,
            ..RgsqrfConfig::default()
        };
        let job = Job::Rgsqrf {
            a: small(48, 12, 3),
            cfg,
        };
        let a = {
            let eng = GpuSim::new(EngineConfig::default());
            result_fingerprint(&job.run(&eng, &RecoveryPolicy::default()))
        };
        let b = {
            let eng = GpuSim::new(EngineConfig::default());
            result_fingerprint(&job.run(&eng, &RecoveryPolicy::default()))
        };
        assert_eq!(a, b);
    }
}
