//! Fleet-level accounting: what the batch ran, where, and how fast.
//!
//! All figures come from the engines' *modeled* clocks and ledgers — the
//! same machinery behind Figures 5–8 — so batched throughput numbers are
//! comparable to the paper's single-problem TFLOPS/s figures and are
//! independent of host scheduling (see the crate-level determinism
//! contract).

use tcqr_metrics::Registry;
use tcqr_trace::{Tracer, Value};
use tensor_engine::{Counters, FaultStats, Ledger};

/// Per-job accounting, in submission order.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Index of the job in the submitted queue.
    pub index: usize,
    /// Engine (pool index) that ran the job.
    pub engine: usize,
    /// Stable job-kind label (`"rgsqrf"`, `"lls.cgls"`, ...).
    pub kind: &'static str,
    /// Problem shape `(rows, cols)`.
    pub shape: (usize, usize),
    /// Whether the job returned `Ok`.
    pub ok: bool,
    /// Display form of the typed error, when the job failed.
    pub error: Option<String>,
    /// Simulated seconds the job waited between arrival and execution
    /// start. Batch jobs all arrive at batch start, so this is the
    /// engine's modeled clock advance before the job began; the serving
    /// layer stamps arrival at submission instead, so later submissions
    /// report genuinely shorter waits.
    pub queue_wait_secs: f64,
    /// Absolute engine clock when execution began (segment placement for
    /// the observability layer; the segment ends at
    /// `start_secs + exec_secs`). Unlike `queue_wait_secs` this is always
    /// a point on the engine's own timeline, whatever the arrival
    /// discipline.
    pub start_secs: f64,
    /// Simulated seconds of engine time the job consumed.
    pub exec_secs: f64,
    /// Faults injected into the engine while this job ran (delta of the
    /// engine's fault campaign counters across the job).
    pub fault_injected: u64,
    /// Faults detected (checksum / non-finite) while this job ran.
    pub fault_detected: u64,
    /// Whether the job ever executed. False only for jobs stranded with
    /// no surviving engine ([`tcqr_core::TcqrError::EngineLost`]): they
    /// carry a typed error but no timeline segment, and
    /// [`FleetReport::emit`] skips their `engine.segment` event.
    pub ran: bool,
}

/// Per-engine accounting, in pool order.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// Pool index of the engine.
    pub engine: usize,
    /// Jobs the static round-robin assignment routed here.
    pub jobs: usize,
    /// Modeled seconds this engine spent on the batch.
    pub busy_secs: f64,
    /// Absolute engine clock after the batch (includes any pre-batch work
    /// if the pool was reused without a reset).
    pub clock_secs: f64,
    /// Per-phase ledger snapshot after the batch.
    pub ledger: Ledger,
    /// Work-counter snapshot after the batch.
    pub counters: Counters,
    /// Fault-campaign statistics after the batch.
    pub fault: FaultStats,
}

/// What a batch run did, fleet-wide: per-job and per-engine accounting
/// plus the aggregate throughput figures the bench harness publishes.
#[derive(Clone, Debug, Default)]
pub struct FleetReport {
    /// Per-job accounting, in submission order.
    pub jobs: Vec<JobReport>,
    /// Per-engine accounting, in pool order.
    pub engines: Vec<EngineReport>,
}

impl FleetReport {
    /// Jobs that completed successfully.
    pub fn ok_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| j.ok).count()
    }

    /// Jobs that returned a typed error.
    pub fn failed_jobs(&self) -> usize {
        self.jobs.len() - self.ok_jobs()
    }

    /// Simulated makespan: the busiest engine's modeled time on the batch.
    pub fn makespan_secs(&self) -> f64 {
        self.engines.iter().map(|e| e.busy_secs).fold(0.0, f64::max)
    }

    /// Total modeled engine-seconds spent across the fleet.
    pub fn busy_secs(&self) -> f64 {
        self.engines.iter().map(|e| e.busy_secs).sum()
    }

    /// Perfect-balance makespan: total busy time spread evenly over the
    /// pool. The gap to [`FleetReport::makespan_secs`] is load imbalance.
    pub fn ideal_secs(&self) -> f64 {
        if self.engines.is_empty() {
            0.0
        } else {
            self.busy_secs() / self.engines.len() as f64
        }
    }

    /// `ideal / makespan` in `(0, 1]`; 1.0 means perfectly balanced lanes.
    /// `None` when the batch ran no simulated work (zero jobs or zero
    /// engines) — the ratio is undefined there, and returning a typed
    /// empty value instead of `0/0` keeps NaN out of every downstream
    /// metric, SLO, and baseline.
    pub fn efficiency(&self) -> Option<f64> {
        let mk = self.makespan_secs();
        if mk > 0.0 {
            Some(self.ideal_secs() / mk)
        } else {
            None
        }
    }

    /// Completed jobs per simulated second of makespan; `None` for an
    /// empty batch (no makespan to divide by).
    pub fn throughput_jobs_per_sec(&self) -> Option<f64> {
        let mk = self.makespan_secs();
        if mk > 0.0 {
            Some(self.ok_jobs() as f64 / mk)
        } else {
            None
        }
    }

    /// `makespan / ideal` in `[1, ∞)`: how much longer the batch took than
    /// a perfectly balanced schedule would have (the reciprocal of
    /// [`FleetReport::efficiency`]). `None` for an empty batch.
    pub fn makespan_vs_ideal(&self) -> Option<f64> {
        let ideal = self.ideal_secs();
        if ideal > 0.0 {
            Some(self.makespan_secs() / ideal)
        } else {
            None
        }
    }

    /// Mean simulated queue wait across jobs (0 when the batch is empty).
    pub fn queue_wait_mean_secs(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            self.jobs.iter().map(|j| j.queue_wait_secs).sum::<f64>() / self.jobs.len() as f64
        }
    }

    /// Largest *finite* simulated queue wait across jobs. Non-finite waits
    /// (NaN / infinity — only producible by a buggy or adversarial
    /// accounting source, never by the scheduler) are excluded explicitly
    /// rather than leaning on `f64::max`'s quiet NaN-ignoring: they are
    /// reported through [`FleetReport::non_finite_queue_waits`] and the
    /// `fleet.queue_wait.non_finite` warning instead of being able to
    /// poison the maximum with `inf` or vanish silently.
    pub fn queue_wait_max_secs(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| j.queue_wait_secs)
            .filter(|w| w.is_finite())
            .fold(0.0, f64::max)
    }

    /// Indices (submission order) of jobs whose recorded queue wait is not
    /// finite. The deterministic scheduler never produces these; a
    /// hand-built or deserialized report can. They are excluded from the
    /// histogram, the percentiles, and the maximum, and [`FleetReport::emit`]
    /// narrates them as a typed `fleet.queue_wait.non_finite` warning so
    /// the corruption is visible instead of silently mis-bucketed.
    pub fn non_finite_queue_waits(&self) -> Vec<usize> {
        self.jobs
            .iter()
            .filter(|j| !j.queue_wait_secs.is_finite())
            .map(|j| j.index)
            .collect()
    }

    /// Log2-bucketed histogram of simulated queue waits: `(upper_bound,
    /// count)` pairs covering every nonzero bucket, plus a leading
    /// zero-wait bucket when present. Buckets are powers of two seconds.
    ///
    /// Only finite waits are counted. A NaN wait would otherwise cast to
    /// bucket 0 (`log2().ceil() as i32` sends NaN to 0) and be silently
    /// tallied in the (0.5, 1] bucket; non-finite waits are instead
    /// surfaced via [`FleetReport::non_finite_queue_waits`].
    pub fn queue_wait_histogram(&self) -> Vec<(f64, u64)> {
        let mut zero = 0u64;
        let mut buckets: std::collections::BTreeMap<i32, u64> = std::collections::BTreeMap::new();
        for j in &self.jobs {
            if !j.queue_wait_secs.is_finite() {
                continue; // see non_finite_queue_waits
            }
            if j.queue_wait_secs <= 0.0 {
                zero += 1;
            } else {
                // Bucket k covers (2^(k-1), 2^k].
                let k = j.queue_wait_secs.log2().ceil() as i32;
                *buckets.entry(k).or_insert(0) += 1;
            }
        }
        let mut out = Vec::new();
        if zero > 0 {
            out.push((0.0, zero));
        }
        out.extend(buckets.into_iter().map(|(k, c)| (2f64.powi(k), c)));
        out
    }

    /// Simulated queue-wait percentile (`q` in `[0, 1]`), read from
    /// [`FleetReport::queue_wait_histogram`] by nearest rank so every
    /// consumer — SLO specs, the baseline file, and the trace differ —
    /// shares the histogram as its one source of truth; 0.0 for an empty
    /// batch (or one whose every wait is non-finite).
    ///
    /// Edge semantics, pinned by tests:
    /// - `q = 0.0` is the minimum: the first bucket's *lower* bound (0.0
    ///   for the zero bucket, `upper / 2` for a power-of-two bucket) — not
    ///   the first bucket's upper bound.
    /// - `0 < q <= 1` is nearest-rank: the upper bound of the bucket
    ///   holding the `ceil(q * n)`-th smallest wait, so `q = 1.0` is the
    ///   last bucket's upper bound.
    /// - Out-of-range `q` clamps to `[0, 1]`.
    ///
    /// With a single bucket, `q = 0` gives its lower bound and any
    /// `q > 0` its upper bound.
    pub fn queue_wait_percentile_secs(&self, q: f64) -> f64 {
        let hist = self.queue_wait_histogram();
        let total: u64 = hist.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            // Minimum wait at histogram resolution: the first occupied
            // bucket's lower bound.
            let (upper, _) = hist[0];
            return if upper == 0.0 { 0.0 } else { upper / 2.0 };
        }
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(upper, count) in &hist {
            seen += count;
            if seen >= rank {
                return upper;
            }
        }
        hist.last().map(|&(upper, _)| upper).unwrap_or(0.0)
    }

    /// Summed fault statistics across the fleet.
    pub fn fault_totals(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for e in &self.engines {
            total.injected += e.fault.injected;
            total.detected += e.fault.detected;
        }
        total
    }

    /// Emit the fleet summary into a trace stream: one `engine.segment` op
    /// event per job (in submission order), one `fleet.engine` op event
    /// per engine, and one `fleet.summary` op event with the aggregate
    /// figures (the bench harness turns the latter into `batch.fleet.*`
    /// baseline metrics; `tcqr-obs` reconstructs timelines from the
    /// segments).
    ///
    /// This is the observability tap: it runs post-hoc on the calling
    /// thread from accounting the deterministic scheduler already
    /// collected, so both the events' content and their order are
    /// bit-identical for any rayon worker count, and the hot lane loop
    /// stays uninstrumented.
    pub fn emit(&self, tracer: &Tracer) {
        for j in &self.jobs {
            // A job that never executed (stranded, no survivors) has no
            // segment on any engine's timeline.
            if !j.ran {
                continue;
            }
            // Segments sit at the job's recorded absolute start — not at
            // clock_base + wait, which only coincides when every job
            // arrived at batch start (true for the batch scheduler, not
            // for the serving layer's later submissions).
            let start = j.start_secs;
            tracer.op(
                "engine.segment",
                &[
                    ("engine", Value::from(j.engine)),
                    ("job", Value::from(j.index)),
                    ("kind", Value::from(j.kind)),
                    ("wait_secs", Value::F64(j.queue_wait_secs)),
                    ("start_secs", Value::F64(start)),
                    ("end_secs", Value::F64(start + j.exec_secs)),
                    ("ok", Value::from(j.ok)),
                    ("fault_injected", Value::from(j.fault_injected)),
                    ("fault_detected", Value::from(j.fault_detected)),
                ],
            );
        }
        for e in &self.engines {
            tracer.op(
                "fleet.engine",
                &[
                    ("engine", Value::from(e.engine)),
                    ("jobs", Value::from(e.jobs)),
                    ("busy_secs", Value::F64(e.busy_secs)),
                    ("clock_secs", Value::F64(e.clock_secs)),
                    ("fault_injected", Value::from(e.fault.injected)),
                    ("fault_detected", Value::from(e.fault.detected)),
                ],
            );
        }
        let non_finite = self.non_finite_queue_waits();
        if !non_finite.is_empty() {
            // Corrupted accounting is narrated, never silently bucketed:
            // these jobs are absent from the histogram, percentiles, and
            // the maximum (see queue_wait_histogram).
            tracer.warn(
                "fleet.queue_wait.non_finite",
                &[
                    ("jobs", Value::from(non_finite.len())),
                    (
                        "first_job",
                        Value::from(non_finite.first().copied().unwrap_or(0)),
                    ),
                ],
            );
        }
        let faults = self.fault_totals();
        tracer.op(
            "fleet.summary",
            &[
                ("jobs", Value::from(self.jobs.len())),
                ("ok", Value::from(self.ok_jobs())),
                ("err", Value::from(self.failed_jobs())),
                ("engines", Value::from(self.engines.len())),
                ("makespan_secs", Value::F64(self.makespan_secs())),
                ("busy_secs", Value::F64(self.busy_secs())),
                ("ideal_secs", Value::F64(self.ideal_secs())),
                // Undefined ratios (empty batch) emit as 0.0 to keep the
                // wire format total; the typed accessors are the API.
                ("efficiency", Value::F64(self.efficiency().unwrap_or(0.0))),
                (
                    "makespan_vs_ideal",
                    Value::F64(self.makespan_vs_ideal().unwrap_or(0.0)),
                ),
                (
                    "throughput_jobs_per_sec",
                    Value::F64(self.throughput_jobs_per_sec().unwrap_or(0.0)),
                ),
                (
                    "queue_wait_mean_secs",
                    Value::F64(self.queue_wait_mean_secs()),
                ),
                (
                    "queue_wait_max_secs",
                    Value::F64(self.queue_wait_max_secs()),
                ),
                (
                    "queue_wait_p50_secs",
                    Value::F64(self.queue_wait_percentile_secs(0.50)),
                ),
                (
                    "queue_wait_p90_secs",
                    Value::F64(self.queue_wait_percentile_secs(0.90)),
                ),
                (
                    "queue_wait_p99_secs",
                    Value::F64(self.queue_wait_percentile_secs(0.99)),
                ),
                ("fault_injected", Value::from(faults.injected)),
                ("fault_detected", Value::from(faults.detected)),
            ],
        );
    }

    /// Export the fleet figures into a metrics registry as
    /// `tcqr_batch_*` counters, gauges, and histograms.
    pub fn export(&self, reg: &Registry) {
        reg.counter("tcqr_batch_jobs_total")
            .add(self.jobs.len() as u64);
        reg.counter("tcqr_batch_jobs_failed_total")
            .add(self.failed_jobs() as u64);
        reg.gauge("tcqr_batch_engines").set(self.engines.len() as f64);
        reg.gauge("tcqr_batch_makespan_secs").set(self.makespan_secs());
        reg.gauge("tcqr_batch_busy_secs").set(self.busy_secs());
        reg.gauge("tcqr_batch_efficiency")
            .set(self.efficiency().unwrap_or(0.0));
        reg.gauge("tcqr_batch_throughput_jobs_per_sec")
            .set(self.throughput_jobs_per_sec().unwrap_or(0.0));
        reg.gauge("tcqr_batch_queue_wait_p50_secs")
            .set(self.queue_wait_percentile_secs(0.50));
        reg.gauge("tcqr_batch_queue_wait_p90_secs")
            .set(self.queue_wait_percentile_secs(0.90));
        reg.gauge("tcqr_batch_queue_wait_p99_secs")
            .set(self.queue_wait_percentile_secs(0.99));
        let waits = reg.histogram("tcqr_batch_queue_wait_secs");
        let execs = reg.histogram("tcqr_batch_exec_secs");
        for j in &self.jobs {
            waits.observe(j.queue_wait_secs);
            execs.observe(j.exec_secs);
        }
        let faults = self.fault_totals();
        reg.counter("tcqr_batch_fault_injected_total")
            .add(faults.injected);
        reg.counter("tcqr_batch_fault_detected_total")
            .add(faults.detected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(index: usize, engine: usize, wait: f64, exec: f64, ok: bool) -> JobReport {
        JobReport {
            index,
            engine,
            kind: "rgsqrf",
            shape: (8, 4),
            ok,
            error: if ok { None } else { Some("boom".into()) },
            queue_wait_secs: wait,
            // Test engines start their batch at clock 0, so the absolute
            // start coincides with the wait.
            start_secs: wait,
            exec_secs: exec,
            fault_injected: 0,
            fault_detected: 0,
            ran: true,
        }
    }

    fn engine(engine: usize, jobs: usize, busy: f64) -> EngineReport {
        EngineReport {
            engine,
            jobs,
            busy_secs: busy,
            clock_secs: busy,
            ledger: Ledger::default(),
            counters: Counters::default(),
            fault: FaultStats::default(),
        }
    }

    #[test]
    fn aggregates() {
        let r = FleetReport {
            jobs: vec![
                job(0, 0, 0.0, 2.0, true),
                job(1, 1, 0.0, 1.0, true),
                job(2, 0, 2.0, 1.0, false),
            ],
            engines: vec![engine(0, 2, 3.0), engine(1, 1, 1.0)],
        };
        assert_eq!(r.ok_jobs(), 2);
        assert_eq!(r.failed_jobs(), 1);
        assert_eq!(r.makespan_secs(), 3.0);
        assert_eq!(r.busy_secs(), 4.0);
        assert_eq!(r.ideal_secs(), 2.0);
        assert!((r.efficiency().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.makespan_vs_ideal().unwrap() - 1.5).abs() < 1e-12);
        assert!((r.throughput_jobs_per_sec().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.queue_wait_max_secs(), 2.0);
        let hist = r.queue_wait_histogram();
        assert_eq!(hist[0], (0.0, 2)); // two zero-wait jobs
        assert_eq!(hist[1], (2.0, 1)); // one wait in (1, 2]
    }

    #[test]
    fn queue_wait_percentiles_come_from_the_histogram() {
        // 8 zero-wait jobs, one in (1,2], one in (2,4]: p50 sits in the
        // zero bucket, p90 in (1,2], p99 in the top bucket — always a
        // bucket upper bound, never an interpolated value.
        let mut jobs: Vec<JobReport> = (0..8).map(|i| job(i, 0, 0.0, 1.0, true)).collect();
        jobs.push(job(8, 0, 1.5, 1.0, true));
        jobs.push(job(9, 0, 3.0, 1.0, true));
        let r = FleetReport {
            jobs,
            engines: vec![engine(0, 10, 10.0)],
        };
        assert_eq!(r.queue_wait_percentile_secs(0.50), 0.0);
        assert_eq!(r.queue_wait_percentile_secs(0.90), 2.0);
        assert_eq!(r.queue_wait_percentile_secs(0.99), 4.0);
        assert_eq!(r.queue_wait_percentile_secs(1.0), 4.0);
        assert_eq!(FleetReport::default().queue_wait_percentile_secs(0.99), 0.0);
        // The summary narration carries all three percentiles.
        use std::sync::Arc;
        use tcqr_trace::{MemSink, Tracer};
        let sink = Arc::new(MemSink::new());
        r.emit(&Tracer::new(sink.clone()));
        let events = sink.snapshot();
        let summary = events.iter().find(|e| e.name == "fleet.summary").unwrap();
        assert_eq!(summary.f64_field("queue_wait_p50_secs"), Some(0.0));
        assert_eq!(summary.f64_field("queue_wait_p90_secs"), Some(2.0));
        assert_eq!(summary.f64_field("queue_wait_p99_secs"), Some(4.0));
    }

    #[test]
    fn empty_report_has_typed_empty_ratios_not_nan() {
        // Regression: zero jobs / zero engines used to produce 0/0-shaped
        // figures. The ratios are now typed as `None`, and every wire
        // format (trace, metrics) renders them as an exact 0.0 — never NaN.
        for r in [
            FleetReport::default(),
            // Engines but no jobs (no simulated time accrued).
            FleetReport {
                jobs: vec![],
                engines: vec![engine(0, 0, 0.0), engine(1, 0, 0.0)],
            },
        ] {
            assert_eq!(r.makespan_secs(), 0.0);
            assert_eq!(r.ideal_secs(), 0.0);
            assert_eq!(r.efficiency(), None);
            assert_eq!(r.throughput_jobs_per_sec(), None);
            assert_eq!(r.makespan_vs_ideal(), None);
            assert!(r.queue_wait_histogram().is_empty());
        }
    }

    #[test]
    fn non_finite_queue_waits_are_warned_not_bucketed() {
        use std::sync::Arc;
        use tcqr_trace::{EventKind, MemSink, Tracer};

        // Regression: a NaN wait used to ride `log2().ceil() as i32`
        // straight into bucket 0 (the (0.5, 1] bin) because NaN casts to
        // 0, and +inf saturated into an absurd top bucket. Both are now
        // excluded and narrated.
        let r = FleetReport {
            jobs: vec![
                job(0, 0, 0.0, 1.0, true),
                job(1, 0, f64::NAN, 1.0, true),
                job(2, 0, 1.5, 1.0, true),
                job(3, 0, f64::INFINITY, 1.0, true),
            ],
            engines: vec![engine(0, 4, 4.0)],
        };
        assert_eq!(r.non_finite_queue_waits(), vec![1, 3]);
        // Histogram counts only the two finite waits — nothing in (0.5, 1].
        assert_eq!(r.queue_wait_histogram(), vec![(0.0, 1), (2.0, 1)]);
        // The max is the largest finite wait: inf does not poison it and
        // NaN does not (silently or otherwise) participate.
        assert_eq!(r.queue_wait_max_secs(), 1.5);
        // All-non-finite degrades to the typed empty values.
        let poisoned = FleetReport {
            jobs: vec![job(0, 0, f64::NAN, 1.0, true)],
            engines: vec![engine(0, 1, 1.0)],
        };
        assert!(poisoned.queue_wait_histogram().is_empty());
        assert_eq!(poisoned.queue_wait_max_secs(), 0.0);
        assert_eq!(poisoned.queue_wait_percentile_secs(0.99), 0.0);
        // emit narrates the corruption as a typed warning.
        let sink = Arc::new(MemSink::new());
        r.emit(&Tracer::new(sink.clone()));
        let events = sink.snapshot();
        let warn = events
            .iter()
            .find(|e| e.name == "fleet.queue_wait.non_finite")
            .expect("non-finite waits warn");
        assert_eq!(warn.kind, EventKind::Warn);
        assert_eq!(warn.u64_field("jobs"), Some(2));
        assert_eq!(warn.u64_field("first_job"), Some(1));
        // A clean report emits no such warning.
        let clean_sink = Arc::new(MemSink::new());
        FleetReport {
            jobs: vec![job(0, 0, 0.0, 1.0, true)],
            engines: vec![engine(0, 1, 1.0)],
        }
        .emit(&Tracer::new(clean_sink.clone()));
        assert!(clean_sink
            .snapshot()
            .iter()
            .all(|e| e.name != "fleet.queue_wait.non_finite"));
    }

    #[test]
    fn percentile_edge_cases_are_pinned() {
        // q = 0 is the minimum (first bucket's LOWER bound), not the first
        // bucket's upper bound as the old `rank.max(1)` made it.
        let with_zero_bucket = FleetReport {
            jobs: vec![job(0, 0, 0.0, 1.0, true), job(1, 0, 1.5, 1.0, true)],
            engines: vec![engine(0, 2, 2.0)],
        };
        assert_eq!(with_zero_bucket.queue_wait_percentile_secs(0.0), 0.0);
        assert_eq!(with_zero_bucket.queue_wait_percentile_secs(1.0), 2.0);
        // No zero bucket: all waits in (1, 2], so the minimum reads as the
        // bucket's lower bound 1.0 at histogram resolution.
        let no_zero_bucket = FleetReport {
            jobs: vec![job(0, 0, 1.5, 1.0, true), job(1, 0, 1.7, 1.0, true)],
            engines: vec![engine(0, 2, 2.0)],
        };
        assert_eq!(no_zero_bucket.queue_wait_percentile_secs(0.0), 1.0);
        // Single bucket: q = 0 gives its lower bound, any q > 0 its upper.
        assert_eq!(no_zero_bucket.queue_wait_percentile_secs(0.01), 2.0);
        assert_eq!(no_zero_bucket.queue_wait_percentile_secs(0.5), 2.0);
        assert_eq!(no_zero_bucket.queue_wait_percentile_secs(1.0), 2.0);
        // Out-of-range q clamps instead of panicking or extrapolating.
        assert_eq!(no_zero_bucket.queue_wait_percentile_secs(-3.0), 1.0);
        assert_eq!(no_zero_bucket.queue_wait_percentile_secs(7.0), 2.0);
        // Empty report: everything is the typed 0.0.
        assert_eq!(FleetReport::default().queue_wait_percentile_secs(0.0), 0.0);
        assert_eq!(FleetReport::default().queue_wait_percentile_secs(1.0), 0.0);
    }

    #[test]
    fn emit_narrates_segments_in_submission_order() {
        use std::sync::Arc;
        use tcqr_trace::{EventKind, MemSink, Tracer};

        let r = FleetReport {
            jobs: vec![
                job(0, 0, 0.0, 2.0, true),
                job(1, 1, 0.0, 1.0, true),
                job(2, 0, 2.0, 1.0, false),
            ],
            engines: vec![engine(0, 2, 3.0), engine(1, 1, 1.0)],
        };
        let sink = Arc::new(MemSink::new());
        r.emit(&Tracer::new(sink.clone()));
        let events = sink.snapshot();
        let segs: Vec<_> = events.iter().filter(|e| e.name == "engine.segment").collect();
        assert_eq!(segs.len(), 3, "one segment per job");
        for (i, s) in segs.iter().enumerate() {
            assert_eq!(s.kind, EventKind::Op);
            assert_eq!(s.u64_field("job"), Some(i as u64), "submission order");
        }
        // Job 2 follows job 0 on engine 0: starts at wait=2, ends at 3.
        assert_eq!(segs[2].u64_field("engine"), Some(0));
        assert_eq!(segs[2].f64_field("start_secs"), Some(2.0));
        assert_eq!(segs[2].f64_field("end_secs"), Some(3.0));
        assert_eq!(segs[2].bool_field("ok"), Some(false));
        // Segments precede the rollups; the summary carries the new ratio.
        let summary = events.iter().find(|e| e.name == "fleet.summary").unwrap();
        assert!((summary.f64_field("makespan_vs_ideal").unwrap() - 1.5).abs() < 1e-12);
        let empty_sink = Arc::new(MemSink::new());
        FleetReport::default().emit(&Tracer::new(empty_sink.clone()));
        let summary_only = empty_sink.snapshot();
        assert_eq!(summary_only.len(), 1, "empty fleet emits just the summary");
        assert_eq!(summary_only[0].f64_field("efficiency"), Some(0.0));
    }
}
