//! Seeded synthetic workload generation for benches and tests.
//!
//! Deliberately self-contained: problems are derived from a splitmix64
//! stream implemented here rather than an external RNG crate, so the same
//! seed produces bit-identical job mixes under every build configuration.
//! That keeps the committed `batch.*` baseline values meaningful — the
//! throughput numbers depend only on the seed, not on which RNG backend
//! the build happened to link.

use crate::job::{BatchJob, Job, LlsMethod};
use densemat::Mat;
use tcqr_core::lowrank::QrKind;
use tcqr_core::lu_ir::LuIrConfig;
use tcqr_core::{RefineConfig, RgsqrfConfig};

/// splitmix64 step: the standard 64-bit finalizer over a Weyl sequence.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[-1, 1)` from the top 53 bits of a splitmix64 draw.
fn uniform(state: &mut u64) -> f64 {
    let u = (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    2.0 * u - 1.0
}

/// Seeded dense `m x n` matrix with entries uniform in `[-1, 1)`,
/// column-major fill order (deterministic).
pub fn gaussian_f32(m: usize, n: usize, seed: u64) -> Mat<f32> {
    let mut state = seed;
    let mut a: Mat<f32> = Mat::zeros(m, n);
    for v in a.data_mut() {
        *v = uniform(&mut state) as f32;
    }
    a
}

/// Seeded dense `m x n` matrix with entries uniform in `[-1, 1)` in `f64`.
pub fn gaussian_f64(m: usize, n: usize, seed: u64) -> Mat<f64> {
    let mut state = seed;
    let mut a: Mat<f64> = Mat::zeros(m, n);
    for v in a.data_mut() {
        *v = uniform(&mut state);
    }
    a
}

/// Seeded diagonally dominant `n x n` system (always nonsingular and well
/// conditioned, so LU-IR converges).
pub fn diag_dominant_f64(n: usize, seed: u64) -> Mat<f64> {
    let mut a = gaussian_f64(n, n, seed);
    for i in 0..n {
        let d = a.data()[i * n + i];
        a.data_mut()[i * n + i] = d + n as f64;
    }
    a
}

/// Parameters of a synthetic job mix.
#[derive(Clone, Copy, Debug)]
pub struct JobMixConfig {
    /// Base seed; every matrix and right-hand side derives from it.
    pub seed: u64,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Upper bound on problem rows; each job draws from `[m/2, m]`.
    pub m: usize,
    /// Upper bound on problem columns; each job draws from `[n/2, n]`.
    pub n: usize,
}

/// Generate a deterministic heterogeneous job mix: jobs cycle through
/// RGSQRF factorizations, CGLS / LSQR / direct least-squares solves,
/// QR-SVD, and LU-IR, with shapes varied per job from the seed.
///
/// Job `i` depends only on `(cfg.seed, i)` — prefixes of longer mixes are
/// themselves valid mixes.
pub fn job_mix(cfg: &JobMixConfig) -> Vec<BatchJob> {
    assert!(cfg.m >= 8 && cfg.n >= 4, "job mix needs m >= 8, n >= 4");
    (0..cfg.jobs).map(|i| job_at(cfg, i)).collect()
}

/// The `i`-th job of the mix described by `cfg`.
pub fn job_at(cfg: &JobMixConfig, i: usize) -> BatchJob {
    // Per-job stream, decorrelated from the neighbors.
    let mut state = cfg.seed ^ (i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
    let draw = splitmix64(&mut state);

    // Shape in [m/2, m] x [n/2, n], keeping the problem tall.
    let m = cfg.m / 2 + (draw as usize % (cfg.m / 2 + 1));
    let n = (cfg.n / 2 + ((draw >> 32) as usize % (cfg.n / 2 + 1))).min(m);
    let n = n.max(2);
    let m = m.max(2 * n);

    // Small-problem QR configuration: exercise the recursion even at the
    // modest batched sizes.
    let qr_cfg = RgsqrfConfig {
        cutoff: 32,
        caqr_width: 8,
        ..RgsqrfConfig::default()
    };
    let refine = RefineConfig::default();
    let mat_seed = splitmix64(&mut state);

    let job = match i % 6 {
        0 => Job::rgsqrf(gaussian_f32(m, n, mat_seed), qr_cfg),
        1 => Job::lls(
            gaussian_f64(m, n, mat_seed),
            gaussian_f64(m, 1, splitmix64(&mut state)).data().to_vec(),
            LlsMethod::Cgls,
            qr_cfg,
            refine,
        ),
        2 => Job::lls(
            gaussian_f64(m, n, mat_seed),
            gaussian_f64(m, 1, splitmix64(&mut state)).data().to_vec(),
            LlsMethod::Lsqr,
            qr_cfg,
            refine,
        ),
        3 => Job::qr_svd(gaussian_f32(m, n, mat_seed), QrKind::Rgsqrf, qr_cfg),
        4 => Job::lu_ir(
            diag_dominant_f64(n, mat_seed),
            gaussian_f64(n, 1, splitmix64(&mut state)).data().to_vec(),
            LuIrConfig {
                block: 8,
                ..LuIrConfig::default()
            },
        ),
        _ => Job::lls(
            gaussian_f64(m, n, mat_seed),
            gaussian_f64(m, 1, splitmix64(&mut state)).data().to_vec(),
            LlsMethod::Direct,
            qr_cfg,
            refine,
        ),
    };
    BatchJob::from(job)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_prefix_stable() {
        let cfg = JobMixConfig {
            seed: 11,
            jobs: 8,
            m: 64,
            n: 16,
        };
        let a = job_mix(&cfg);
        let b = job_mix(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.job.kind(), y.job.kind());
            assert_eq!(x.job.shape(), y.job.shape());
        }
        // Prefix stability: job i of a longer mix equals job i alone.
        let longer = job_mix(&JobMixConfig { jobs: 12, ..cfg });
        for (x, y) in a.iter().zip(&longer) {
            assert_eq!(x.job.kind(), y.job.kind());
            assert_eq!(x.job.shape(), y.job.shape());
        }
    }

    #[test]
    fn shapes_are_solvable() {
        let cfg = JobMixConfig {
            seed: 3,
            jobs: 24,
            m: 96,
            n: 24,
        };
        for bj in job_mix(&cfg) {
            let (m, n) = bj.job.shape();
            assert!(n >= 2);
            if bj.job.kind() != "lu_ir" {
                assert!(m >= 2 * n, "tall problems only (got {m} x {n})");
            }
        }
    }

    #[test]
    fn generators_match_their_seeds() {
        let a = gaussian_f32(16, 4, 9);
        let b = gaussian_f32(16, 4, 9);
        assert_eq!(a.data(), b.data());
        let c = gaussian_f32(16, 4, 10);
        assert_ne!(a.data(), c.data());
        let d = diag_dominant_f64(8, 5);
        for i in 0..8 {
            assert!(d.data()[i * 8 + i].abs() > 4.0);
        }
    }
}
