//! A fleet of independent simulated engines sharing one configuration.

use crate::fingerprint::Fingerprint;
use tensor_engine::{
    Counters, EngineConfig, FaultPlan, FaultStats, GpuSim, Ledger, Phase, PrecisionOverride,
};
use tcqr_trace::Tracer;

/// `N` independent [`GpuSim`] instances sharing one [`EngineConfig`] (and
/// therefore one performance model), standing in for a device partitioned
/// into `N` single-tenant slices.
///
/// Each engine keeps its own clock, ledger, counters, fault plan, and
/// precision override, so one tenant's fault campaign or bf16/f32
/// escalation never bleeds into a neighbor. The pool itself is `Sync`:
/// the [`crate::BatchScheduler`] shares it across rayon workers, with the
/// job-to-engine assignment guaranteeing that at most one job touches an
/// engine at a time.
///
/// Observability contract: mid-run engine events reach the trace from
/// whichever rayon worker holds the lane, so their interleaving across
/// engines is *not* deterministic (only the per-engine content is). Fleet
/// observability — timelines, SLOs, dashboards in `tcqr-obs` — therefore
/// consumes the post-hoc `engine.segment` / `fleet.*` events that
/// `FleetReport::emit` replays from this accounting on the calling thread,
/// never the raw mid-run stream.
pub struct EnginePool {
    engines: Vec<GpuSim>,
    cfg: EngineConfig,
}

impl EnginePool {
    /// Create a pool of `n` engines (`n >= 1`) sharing `cfg`.
    ///
    /// Like [`GpuSim::new`], every engine picks up the process-global
    /// fault plan (if armed) and the global tracer; use
    /// [`EnginePool::set_fault_plan`] / [`EnginePool::arm`] for per-tenant
    /// plans and [`EnginePool::with_tracer`] for per-engine sinks.
    pub fn new(n: usize, cfg: EngineConfig) -> Self {
        assert!(n >= 1, "EnginePool needs at least one engine");
        EnginePool {
            engines: (0..n).map(|_| GpuSim::new(cfg)).collect(),
            cfg,
        }
    }

    /// Create a pool whose engine `i` traces into `mk(i)`.
    pub fn with_tracer(n: usize, cfg: EngineConfig, mut mk: impl FnMut(usize) -> Tracer) -> Self {
        assert!(n >= 1, "EnginePool needs at least one engine");
        EnginePool {
            engines: (0..n).map(|i| GpuSim::with_tracer(cfg, mk(i))).collect(),
            cfg,
        }
    }

    /// Number of engines in the pool.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Always false: the constructors reject empty pools.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// The shared engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// Borrow engine `i`.
    pub fn engine(&self, i: usize) -> &GpuSim {
        &self.engines[i]
    }

    /// All engines, in pool order.
    pub fn engines(&self) -> &[GpuSim] {
        &self.engines
    }

    /// Install (or clear, with `None`) a fault plan on engine `i` only.
    pub fn set_fault_plan(&self, i: usize, plan: Option<FaultPlan>) {
        self.engines[i].set_fault_plan(plan);
    }

    /// Arm every engine with a copy of `base` whose seed is decorrelated
    /// per engine (splitmix64 of `base.seed` and the engine index), so
    /// tenants see independent fault schedules from one campaign spec.
    pub fn arm(&self, base: &FaultPlan) {
        for (i, eng) in self.engines.iter().enumerate() {
            let mut plan = base.clone();
            plan.seed = derive_seed(base.seed, i as u64);
            eng.set_fault_plan(Some(plan));
        }
    }

    /// Clear every engine's fault plan.
    pub fn disarm(&self) {
        for eng in &self.engines {
            eng.set_fault_plan(None);
        }
    }

    /// Set (or clear) a precision override on engine `i` only.
    pub fn set_precision_override(&self, i: usize, o: Option<PrecisionOverride>) {
        self.engines[i].set_precision_override(o);
    }

    /// Per-engine modeled clocks, in pool order.
    pub fn clocks(&self) -> Vec<f64> {
        self.engines.iter().map(|e| e.clock()).collect()
    }

    /// Per-engine ledgers, in pool order.
    pub fn ledgers(&self) -> Vec<Ledger> {
        self.engines.iter().map(|e| e.ledger()).collect()
    }

    /// Per-engine work counters, in pool order.
    pub fn counters(&self) -> Vec<Counters> {
        self.engines.iter().map(|e| e.counters()).collect()
    }

    /// Per-engine fault-campaign statistics, in pool order.
    pub fn fault_stats(&self) -> Vec<FaultStats> {
        self.engines.iter().map(|e| e.fault_stats()).collect()
    }

    /// Reset every engine's clock, ledger, counters, and fault statistics.
    pub fn reset(&self) {
        for eng in &self.engines {
            eng.reset();
        }
    }

    /// Bit-exact fingerprint of the pool's observable accounting state:
    /// per-engine clock, per-phase ledger seconds, counters, and fault
    /// statistics. Two runs of the same job set must agree on this hash
    /// regardless of worker count.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        for eng in &self.engines {
            fp.push_f64(eng.clock());
            let led = eng.ledger();
            for p in Phase::ALL {
                fp.push_f64(led.get(p));
            }
            let c = eng.counters();
            fp.push_f64(c.tc_flops);
            fp.push_f64(c.fp32_flops);
            fp.push_f64(c.fp64_flops);
            fp.push_u64(c.gemm_calls);
            fp.push_u64(c.panel_calls);
            fp.push_u64(c.overflow_ops);
            fp.push_u64(c.round.total);
            fp.push_u64(c.round.overflow);
            fp.push_u64(c.round.underflow);
            fp.push_u64(c.round.nan);
            let fs = eng.fault_stats();
            fp.push_u64(fs.injected);
            fp.push_u64(fs.detected);
        }
        fp.finish()
    }
}

/// splitmix64-style seed decorrelation for per-engine fault schedules.
fn derive_seed(base: u64, lane: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(lane.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_are_independent() {
        let pool = EnginePool::new(3, EngineConfig::default());
        assert_eq!(pool.len(), 3);
        // Arming one engine leaves the others untouched.
        pool.set_fault_plan(1, Some(FaultPlan::all(42)));
        assert!(!pool.engine(0).fault_armed());
        assert!(pool.engine(1).fault_armed());
        assert!(!pool.engine(2).fault_armed());
        pool.disarm();
        assert!(!pool.engine(1).fault_armed());
    }

    #[test]
    fn arm_decorrelates_seeds() {
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
        assert_ne!(derive_seed(7, 1), derive_seed(8, 1));
    }

    #[test]
    #[should_panic(expected = "at least one engine")]
    fn empty_pool_rejected() {
        let _ = EnginePool::new(0, EngineConfig::default());
    }
}
