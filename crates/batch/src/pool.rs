//! A fleet of independent simulated engines sharing one configuration.

use crate::fingerprint::Fingerprint;
use std::sync::atomic::{AtomicU8, Ordering};
use tensor_engine::{
    AvailStats, Counters, EngineConfig, EngineFaultPlan, FaultPlan, FaultStats, GpuSim, Ledger,
    Phase, PrecisionOverride,
};
use tcqr_trace::Tracer;

/// Lifecycle state of one engine in the pool.
///
/// The ladder only ever moves in one direction during a run —
/// `Healthy → Degraded → Quarantined → Dead` — except for the one
/// supervised transition back: [`EnginePool::rehabilitate`] returns a
/// `Quarantined` engine to `Healthy` **iff** its
/// [`GpuSim::reset_in_place`] cleanliness proof passes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineHealth {
    /// In rotation, no observed failures.
    Healthy,
    /// In rotation, but has failed jobs since its last clean bill of
    /// health — a circuit breaker watches it.
    Degraded,
    /// Out of rotation pending a reset-in-place cleanliness proof.
    Quarantined,
    /// Crashed; only [`EnginePool::rehabilitate`] can revive it.
    Dead,
}

impl EngineHealth {
    /// Stable lowercase name used in trace events and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            EngineHealth::Healthy => "healthy",
            EngineHealth::Degraded => "degraded",
            EngineHealth::Quarantined => "quarantined",
            EngineHealth::Dead => "dead",
        }
    }

    /// Whether the engine may be handed new work.
    pub fn in_rotation(self) -> bool {
        matches!(self, EngineHealth::Healthy | EngineHealth::Degraded)
    }

    fn to_u8(self) -> u8 {
        match self {
            EngineHealth::Healthy => 0,
            EngineHealth::Degraded => 1,
            EngineHealth::Quarantined => 2,
            EngineHealth::Dead => 3,
        }
    }

    fn from_u8(v: u8) -> EngineHealth {
        match v {
            0 => EngineHealth::Healthy,
            1 => EngineHealth::Degraded,
            2 => EngineHealth::Quarantined,
            _ => EngineHealth::Dead,
        }
    }
}

/// `N` independent [`GpuSim`] instances sharing one [`EngineConfig`] (and
/// therefore one performance model), standing in for a device partitioned
/// into `N` single-tenant slices.
///
/// Each engine keeps its own clock, ledger, counters, fault plan, and
/// precision override, so one tenant's fault campaign or bf16/f32
/// escalation never bleeds into a neighbor. The pool itself is `Sync`:
/// the [`crate::BatchScheduler`] shares it across rayon workers, with the
/// job-to-engine assignment guaranteeing that at most one job touches an
/// engine at a time.
///
/// Observability contract: mid-run engine events reach the trace from
/// whichever rayon worker holds the lane, so their interleaving across
/// engines is *not* deterministic (only the per-engine content is). Fleet
/// observability — timelines, SLOs, dashboards in `tcqr-obs` — therefore
/// consumes the post-hoc `engine.segment` / `fleet.*` events that
/// `FleetReport::emit` replays from this accounting on the calling thread,
/// never the raw mid-run stream.
pub struct EnginePool {
    engines: Vec<GpuSim>,
    cfg: EngineConfig,
    /// Per-engine [`EngineHealth`], `to_u8`-encoded. Atomics (not a
    /// `Mutex<Vec<_>>`) so a rayon worker can mark its engine dead while
    /// other lanes keep running.
    health: Vec<AtomicU8>,
}

impl EnginePool {
    /// Create a pool of `n` engines (`n >= 1`) sharing `cfg`.
    ///
    /// Like [`GpuSim::new`], every engine picks up the process-global
    /// fault plan (if armed) and the global tracer; use
    /// [`EnginePool::set_fault_plan`] / [`EnginePool::arm`] for per-tenant
    /// plans and [`EnginePool::with_tracer`] for per-engine sinks.
    pub fn new(n: usize, cfg: EngineConfig) -> Self {
        assert!(n >= 1, "EnginePool needs at least one engine");
        EnginePool {
            engines: (0..n).map(|_| GpuSim::new(cfg)).collect(),
            cfg,
            health: (0..n).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Create a pool whose engine `i` traces into `mk(i)`.
    pub fn with_tracer(n: usize, cfg: EngineConfig, mut mk: impl FnMut(usize) -> Tracer) -> Self {
        assert!(n >= 1, "EnginePool needs at least one engine");
        EnginePool {
            engines: (0..n).map(|i| GpuSim::with_tracer(cfg, mk(i))).collect(),
            cfg,
            health: (0..n).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Number of engines in the pool.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Always false: the constructors reject empty pools.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// The shared engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// Borrow engine `i`.
    pub fn engine(&self, i: usize) -> &GpuSim {
        &self.engines[i]
    }

    /// All engines, in pool order.
    pub fn engines(&self) -> &[GpuSim] {
        &self.engines
    }

    /// Install (or clear, with `None`) a fault plan on engine `i` only.
    pub fn set_fault_plan(&self, i: usize, plan: Option<FaultPlan>) {
        self.engines[i].set_fault_plan(plan);
    }

    /// Arm every engine with a copy of `base` whose seed is decorrelated
    /// per engine (splitmix64 of `base.seed` and the engine index), so
    /// tenants see independent fault schedules from one campaign spec.
    pub fn arm(&self, base: &FaultPlan) {
        for (i, eng) in self.engines.iter().enumerate() {
            let mut plan = base.clone();
            plan.seed = derive_seed(base.seed, i as u64);
            eng.set_fault_plan(Some(plan));
        }
    }

    /// Clear every engine's fault plan.
    pub fn disarm(&self) {
        for eng in &self.engines {
            eng.set_fault_plan(None);
        }
    }

    /// Set (or clear) a precision override on engine `i` only.
    pub fn set_precision_override(&self, i: usize, o: Option<PrecisionOverride>) {
        self.engines[i].set_precision_override(o);
    }

    /// Install (or clear) an availability-fault plan on engine `i` only.
    pub fn set_avail_plan(&self, i: usize, plan: Option<EngineFaultPlan>) {
        self.engines[i].set_avail_plan(plan);
    }

    /// Per-engine availability-campaign statistics, in pool order.
    pub fn avail_stats(&self) -> Vec<AvailStats> {
        self.engines.iter().map(|e| e.avail_stats()).collect()
    }

    /// Current health of engine `i`.
    pub fn health(&self, i: usize) -> EngineHealth {
        EngineHealth::from_u8(self.health[i].load(Ordering::Acquire))
    }

    /// Force engine `i` into `h`. Schedulers use the specific transitions
    /// ([`EnginePool::mark_dead`], [`EnginePool::mark_degraded`],
    /// [`EnginePool::quarantine`], [`EnginePool::rehabilitate`]); this raw
    /// setter exists for tests and campaign setup.
    pub fn set_health(&self, i: usize, h: EngineHealth) {
        self.health[i].store(h.to_u8(), Ordering::Release);
    }

    /// Record that engine `i` crashed. Idempotent.
    pub fn mark_dead(&self, i: usize) {
        self.health[i].store(EngineHealth::Dead.to_u8(), Ordering::Release);
    }

    /// Record a job failure on engine `i`: `Healthy → Degraded`. Never
    /// promotes a `Quarantined`/`Dead` engine back into rotation.
    pub fn mark_degraded(&self, i: usize) {
        let _ = self.health[i].compare_exchange(
            EngineHealth::Healthy.to_u8(),
            EngineHealth::Degraded.to_u8(),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Take engine `i` out of rotation pending a cleanliness proof.
    pub fn quarantine(&self, i: usize) {
        self.health[i].store(EngineHealth::Quarantined.to_u8(), Ordering::Release);
    }

    /// Attempt to return engine `i` to rotation: run the
    /// [`GpuSim::reset_in_place`] scrub and, iff its fingerprint matches a
    /// fresh engine's, mark the engine `Healthy` again. On a failed proof
    /// the engine is left `Quarantined`. Returns whether rehabilitation
    /// succeeded.
    pub fn rehabilitate(&self, i: usize) -> bool {
        let clean = self.engines[i].reset_in_place();
        if clean {
            self.set_health(i, EngineHealth::Healthy);
        } else {
            self.quarantine(i);
        }
        clean
    }

    /// Pool indices of engines currently in rotation
    /// ([`EngineHealth::in_rotation`]), ascending. The deterministic
    /// routing domain: lane assignment is a pure function of this set.
    pub fn alive_engines(&self) -> Vec<usize> {
        (0..self.engines.len())
            .filter(|&i| self.health(i).in_rotation())
            .collect()
    }

    /// Number of dead engines.
    pub fn dead_count(&self) -> usize {
        (0..self.engines.len())
            .filter(|&i| self.health(i) == EngineHealth::Dead)
            .count()
    }

    /// Per-engine modeled clocks, in pool order.
    pub fn clocks(&self) -> Vec<f64> {
        self.engines.iter().map(|e| e.clock()).collect()
    }

    /// Per-engine ledgers, in pool order.
    pub fn ledgers(&self) -> Vec<Ledger> {
        self.engines.iter().map(|e| e.ledger()).collect()
    }

    /// Per-engine work counters, in pool order.
    pub fn counters(&self) -> Vec<Counters> {
        self.engines.iter().map(|e| e.counters()).collect()
    }

    /// Per-engine fault-campaign statistics, in pool order.
    pub fn fault_stats(&self) -> Vec<FaultStats> {
        self.engines.iter().map(|e| e.fault_stats()).collect()
    }

    /// Reset every engine's clock, ledger, counters, and fault statistics.
    pub fn reset(&self) {
        for eng in &self.engines {
            eng.reset();
        }
    }

    /// Bit-exact fingerprint of the pool's observable accounting state:
    /// per-engine clock, per-phase ledger seconds, counters, and fault
    /// statistics. Two runs of the same job set must agree on this hash
    /// regardless of worker count.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        for eng in &self.engines {
            fp.push_f64(eng.clock());
            let led = eng.ledger();
            for p in Phase::ALL {
                fp.push_f64(led.get(p));
            }
            let c = eng.counters();
            fp.push_f64(c.tc_flops);
            fp.push_f64(c.fp32_flops);
            fp.push_f64(c.fp64_flops);
            fp.push_u64(c.gemm_calls);
            fp.push_u64(c.panel_calls);
            fp.push_u64(c.overflow_ops);
            fp.push_u64(c.round.total);
            fp.push_u64(c.round.overflow);
            fp.push_u64(c.round.underflow);
            fp.push_u64(c.round.nan);
            let fs = eng.fault_stats();
            fp.push_u64(fs.injected);
            fp.push_u64(fs.detected);
        }
        fp.finish()
    }
}

/// splitmix64-style seed decorrelation for per-engine fault schedules.
fn derive_seed(base: u64, lane: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(lane.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_are_independent() {
        let pool = EnginePool::new(3, EngineConfig::default());
        assert_eq!(pool.len(), 3);
        // Arming one engine leaves the others untouched.
        pool.set_fault_plan(1, Some(FaultPlan::all(42)));
        assert!(!pool.engine(0).fault_armed());
        assert!(pool.engine(1).fault_armed());
        assert!(!pool.engine(2).fault_armed());
        pool.disarm();
        assert!(!pool.engine(1).fault_armed());
    }

    #[test]
    fn arm_decorrelates_seeds() {
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
        assert_ne!(derive_seed(7, 1), derive_seed(8, 1));
    }

    #[test]
    #[should_panic(expected = "at least one engine")]
    fn empty_pool_rejected() {
        let _ = EnginePool::new(0, EngineConfig::default());
    }

    #[test]
    fn health_ladder_and_rotation() {
        let pool = EnginePool::new(3, EngineConfig::default());
        assert_eq!(pool.alive_engines(), vec![0, 1, 2]);
        pool.mark_degraded(1);
        assert_eq!(pool.health(1), EngineHealth::Degraded);
        assert_eq!(pool.alive_engines(), vec![0, 1, 2], "degraded stays in rotation");
        pool.mark_dead(2);
        assert_eq!(pool.alive_engines(), vec![0, 1]);
        assert_eq!(pool.dead_count(), 1);
        // mark_degraded never resurrects a dead engine.
        pool.mark_degraded(2);
        assert_eq!(pool.health(2), EngineHealth::Dead);
        pool.quarantine(1);
        assert_eq!(pool.alive_engines(), vec![0]);
    }

    #[test]
    fn rehabilitate_requires_the_cleanliness_proof() {
        let pool = EnginePool::new(2, EngineConfig::default());
        // Dirty engine 1 and kill it.
        pool.engine(1).charge_secs(Phase::Other, 3.0);
        pool.mark_dead(1);
        assert_eq!(pool.alive_engines(), vec![0]);
        assert!(pool.rehabilitate(1), "reset-in-place scrub must pass");
        assert_eq!(pool.health(1), EngineHealth::Healthy);
        assert_eq!(pool.engine(1).clock(), 0.0, "tenant state scrubbed");
        assert_eq!(pool.alive_engines(), vec![0, 1]);
    }
}
