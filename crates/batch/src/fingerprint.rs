//! Order-sensitive 64-bit fingerprints over numerical state.
//!
//! The batch layer's determinism contract is *bit*-identity, so its tests
//! and the `repro batch` self-check compare FNV-1a hashes over the raw bit
//! patterns of outputs, clocks, and ledgers instead of approximate
//! comparisons. NaNs hash by their payload bits like any other value.

/// Incremental FNV-1a hasher over 64-bit words.
///
/// Not a general-purpose hasher: it exists so two runs of the same job set
/// can be compared for exact equality without keeping both result sets
/// alive.
#[derive(Clone, Copy, Debug)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// FNV-1a offset basis.
    pub fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    /// Absorb one 64-bit word.
    pub fn push_u64(&mut self, v: u64) {
        // FNV-1a over the word's 8 bytes.
        let mut h = self.0;
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    /// Absorb an `f64` by bit pattern.
    pub fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    /// Absorb an `f32` by bit pattern.
    pub fn push_f32(&mut self, v: f32) {
        self.push_u64(v.to_bits() as u64);
    }

    /// Absorb a slice of `f64` by bit pattern, in order.
    pub fn push_f64s(&mut self, vs: &[f64]) {
        for &v in vs {
            self.push_f64(v);
        }
    }

    /// Absorb a slice of `f32` by bit pattern, in order.
    pub fn push_f32s(&mut self, vs: &[f32]) {
        for &v in vs {
            self.push_f32(v);
        }
    }

    /// Absorb a string's bytes.
    pub fn push_str(&mut self, s: &str) {
        for &b in s.as_bytes() {
            self.push_u64(b as u64);
        }
        // Length terminator so "ab"+"c" != "a"+"bc".
        self.push_u64(s.len() as u64);
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_sensitive_and_bit_exact() {
        let mut a = Fingerprint::new();
        a.push_f64s(&[1.0, 2.0]);
        let mut b = Fingerprint::new();
        b.push_f64s(&[2.0, 1.0]);
        assert_ne!(a.finish(), b.finish());

        // -0.0 and +0.0 are numerically equal but bit-distinct.
        let mut p = Fingerprint::new();
        p.push_f64(0.0);
        let mut q = Fingerprint::new();
        q.push_f64(-0.0);
        assert_ne!(p.finish(), q.finish());

        // NaN payloads hash stably.
        let mut x = Fingerprint::new();
        x.push_f64(f64::NAN);
        let mut y = Fingerprint::new();
        y.push_f64(f64::NAN);
        assert_eq!(x.finish(), y.finish());
    }

    #[test]
    fn strings_are_length_delimited() {
        let mut a = Fingerprint::new();
        a.push_str("ab");
        a.push_str("c");
        let mut b = Fingerprint::new();
        b.push_str("a");
        b.push_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
