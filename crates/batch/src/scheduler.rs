//! Deterministic work-stealing execution of a heterogeneous job queue.
//!
//! ## How determinism survives work stealing
//!
//! The scheduler splits the queue into `K` *lanes* up front: job `i`
//! belongs to lane `i mod K` and lane `l` owns engine `l` exclusively.
//! Each lane executes its jobs sequentially in assignment order; rayon's
//! work stealing moves whole lanes between OS threads, never individual
//! jobs. Since an engine's clock, ledger, fault-injection schedule, and
//! precision state are only ever advanced from its own lane, nothing an
//! engine computes depends on *when* the host ran its lane — outputs and
//! accounting are bit-identical under 1, 2, or 64 workers.
//!
//! The inner solvers also use rayon, and stay deterministic for the same
//! structural reason: their parallel regions either write disjoint output
//! blocks or reduce integer counters, so no floating-point result depends
//! on the split.

use crate::fleet::{EngineReport, FleetReport, JobReport};
use crate::job::{BatchJob, Job, JobOutput};
use crate::pool::EnginePool;
use rayon::prelude::*;
use tcqr_core::{QrFactors, RgsqrfConfig, TcqrError};

/// Drains a queue of [`BatchJob`]s across an [`EnginePool`].
///
/// A scheduler built by [`BatchScheduler::with_threads`] owns its rayon
/// pool: the pool is constructed once, up front, and shared by every
/// [`BatchScheduler::run`] call (and every clone), so long-lived callers —
/// the `tcqr-serve` service, repeated bench batches — don't pay thread
/// spawn/teardown per batch.
#[derive(Clone, Default)]
pub struct BatchScheduler {
    /// Dedicated rayon pool; `None` runs on the ambient pool.
    pool: Option<std::sync::Arc<rayon::ThreadPool>>,
}

impl std::fmt::Debug for BatchScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchScheduler")
            .field(
                "threads",
                &self.pool.as_ref().map(|p| p.current_num_threads()),
            )
            .finish()
    }
}

/// Per-job results (submission order) plus the fleet-wide accounting.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One result per submitted job, in submission order.
    pub results: Vec<Result<JobOutput, TcqrError>>,
    /// Fleet accounting for the batch.
    pub report: FleetReport,
}

/// One lane's mutable state while the batch runs.
struct Lane {
    engine: usize,
    /// Queue indices assigned to this lane, in submission order.
    jobs: Vec<usize>,
    /// Completed jobs, in lane execution order.
    done: Vec<DoneJob>,
    /// Engine clock when the lane started (pre-batch work, if any).
    clock_base: f64,
}

/// One completed job's accounting, recorded by the lane that ran it.
struct DoneJob {
    idx: usize,
    res: Result<JobOutput, TcqrError>,
    queue_wait_secs: f64,
    /// Absolute engine clock when the job began executing.
    start_secs: f64,
    exec_secs: f64,
    /// Fault-campaign deltas on the lane's engine across this job — the
    /// per-segment attribution the observability layer's recovery shading
    /// and fault-escape objectives consume.
    fault_injected: u64,
    fault_detected: u64,
}

impl BatchScheduler {
    /// Scheduler running on the ambient rayon thread pool.
    pub fn new() -> Self {
        BatchScheduler { pool: None }
    }

    /// Scheduler running on a dedicated rayon pool of `n` threads
    /// (`n >= 1`), built here and reused across every subsequent
    /// [`BatchScheduler::run`]. Worker count affects wall time only —
    /// results are bit-identical either way.
    pub fn with_threads(n: usize) -> Self {
        assert!(n >= 1, "need at least one worker thread");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("building a rayon pool cannot fail with these options");
        BatchScheduler {
            pool: Some(std::sync::Arc::new(pool)),
        }
    }

    /// Run every job to completion and collect per-job results plus the
    /// [`FleetReport`].
    ///
    /// Job `i` runs on engine `i % pool.len()`; per-job recovery policies
    /// and precision overrides apply to that engine for exactly the job's
    /// lifetime. Engine state (clock, ledger, fault budget) accumulates
    /// across the batch — call [`EnginePool::reset`] between batches if
    /// fresh accounting is wanted.
    pub fn run(&self, pool: &EnginePool, jobs: &[BatchJob]) -> BatchOutcome {
        let k = pool.len();
        let mut lanes: Vec<Lane> = (0..k)
            .map(|e| Lane {
                engine: e,
                jobs: (e..jobs.len()).step_by(k).collect(),
                done: Vec::new(),
                clock_base: 0.0,
            })
            .collect();

        let drain = |lanes: &mut Vec<Lane>| {
            lanes
                .par_iter_mut()
                .for_each(|lane| run_lane(lane, pool, jobs));
        };
        match &self.pool {
            None => drain(&mut lanes),
            Some(tp) => tp.install(|| drain(&mut lanes)),
        }

        // Stitch lane results back into submission order.
        let mut slots: Vec<Option<DoneJob>> = (0..jobs.len()).map(|_| None).collect();
        let mut engines = Vec::with_capacity(k);
        for lane in lanes {
            let eng = pool.engine(lane.engine);
            engines.push(EngineReport {
                engine: lane.engine,
                jobs: lane.jobs.len(),
                busy_secs: eng.clock() - lane.clock_base,
                clock_secs: eng.clock(),
                ledger: eng.ledger(),
                counters: eng.counters(),
                fault: eng.fault_stats(),
            });
            for done in lane.done {
                let idx = done.idx;
                slots[idx] = Some(done);
            }
        }

        let mut results = Vec::with_capacity(jobs.len());
        let mut job_reports = Vec::with_capacity(jobs.len());
        for (idx, slot) in slots.into_iter().enumerate() {
            let done = slot.expect("every job index is assigned to exactly one lane");
            job_reports.push(JobReport {
                index: idx,
                engine: idx % k,
                kind: jobs[idx].job.kind(),
                shape: jobs[idx].job.shape(),
                ok: done.res.is_ok(),
                error: done.res.as_ref().err().map(|e| e.to_string()),
                queue_wait_secs: done.queue_wait_secs,
                start_secs: done.start_secs,
                exec_secs: done.exec_secs,
                fault_injected: done.fault_injected,
                fault_detected: done.fault_detected,
            });
            results.push(done.res);
        }

        BatchOutcome {
            results,
            report: FleetReport {
                jobs: job_reports,
                engines,
            },
        }
    }
}

/// Execute one lane: its jobs, sequentially, on its own engine.
fn run_lane(lane: &mut Lane, pool: &EnginePool, jobs: &[BatchJob]) {
    let eng = pool.engine(lane.engine);
    lane.clock_base = eng.clock();
    for &idx in &lane.jobs {
        let bj = &jobs[idx];
        let before = eng.clock();
        let fault_before = eng.fault_stats();
        // Install the tenant's precision override for the job's lifetime;
        // the recovery ladder saves/restores around its own escalations,
        // so the tenant default is back in force on every fresh attempt.
        let prev = eng.precision_override();
        if bj.precision.is_some() {
            eng.set_precision_override(bj.precision);
        }
        let res = bj.job.run(eng, &bj.policy);
        if bj.precision.is_some() {
            eng.set_precision_override(prev);
        }
        let after = eng.clock();
        let fault_after = eng.fault_stats();
        lane.done.push(DoneJob {
            idx,
            res,
            queue_wait_secs: before - lane.clock_base,
            start_secs: before,
            exec_secs: after - before,
            fault_injected: fault_after.injected.saturating_sub(fault_before.injected),
            fault_detected: fault_after.detected.saturating_sub(fault_before.detected),
        });
    }
}

/// Batched QR: factor every `(a, cfg)` problem across the pool.
///
/// Convenience wrapper over [`BatchScheduler::run`] with default recovery
/// policies; results come back in submission order.
pub fn batch_rgsqrf(
    pool: &EnginePool,
    problems: Vec<(densemat::Mat<f32>, RgsqrfConfig)>,
) -> (Vec<Result<QrFactors, TcqrError>>, FleetReport) {
    let jobs: Vec<BatchJob> = problems
        .into_iter()
        .map(|(a, cfg)| BatchJob::from(Job::rgsqrf(a, cfg)))
        .collect();
    let out = BatchScheduler::new().run(pool, &jobs);
    let factors = out
        .results
        .into_iter()
        .map(|r| {
            r.map(|o| match o {
                JobOutput::Qr(f) => f,
                _ => unreachable!("rgsqrf jobs produce QR factors"),
            })
        })
        .collect();
    (factors, out.report)
}

/// Batched heterogeneous solve: drain `jobs` across the pool on the
/// ambient rayon thread pool.
pub fn batch_solve(
    pool: &EnginePool,
    jobs: &[BatchJob],
) -> (Vec<Result<JobOutput, TcqrError>>, FleetReport) {
    let out = BatchScheduler::new().run(pool, jobs);
    (out.results, out.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobgen::{self, JobMixConfig};
    use tensor_engine::EngineConfig;

    #[test]
    fn round_robin_assignment_and_order() {
        let pool = EnginePool::new(3, EngineConfig::default());
        let jobs = jobgen::job_mix(&JobMixConfig {
            seed: 2,
            jobs: 7,
            m: 48,
            n: 12,
        });
        let out = BatchScheduler::with_threads(2).run(&pool, &jobs);
        assert_eq!(out.results.len(), 7);
        for (i, j) in out.report.jobs.iter().enumerate() {
            assert_eq!(j.index, i);
            assert_eq!(j.engine, i % 3);
        }
        // Lane loads: 3, 2, 2.
        let loads: Vec<usize> = out.report.engines.iter().map(|e| e.jobs).collect();
        assert_eq!(loads, vec![3, 2, 2]);
        // Queue waits within a lane are non-decreasing in submission order.
        for e in 0..3 {
            let waits: Vec<f64> = out
                .report
                .jobs
                .iter()
                .filter(|j| j.engine == e)
                .map(|j| j.queue_wait_secs)
                .collect();
            assert!(waits.windows(2).all(|w| w[0] <= w[1]), "{waits:?}");
            assert_eq!(waits.first().copied().unwrap_or(0.0), 0.0);
        }
    }

    #[test]
    fn batch_rgsqrf_returns_factors() {
        let pool = EnginePool::new(2, EngineConfig::default());
        let cfg = RgsqrfConfig {
            cutoff: 16,
            caqr_width: 4,
            ..RgsqrfConfig::default()
        };
        let problems = (0..4)
            .map(|i| (jobgen::gaussian_f32(40, 10, 100 + i), cfg))
            .collect();
        let (factors, report) = batch_rgsqrf(&pool, problems);
        assert_eq!(factors.len(), 4);
        for f in &factors {
            let f = f.as_ref().expect("well-posed problems factor");
            assert_eq!(f.q.ncols(), 10);
            assert_eq!(f.r.nrows(), 10);
        }
        assert_eq!(report.ok_jobs(), 4);
        assert!(report.makespan_secs() > 0.0);
        let eff = report.efficiency().expect("non-empty batch has a defined efficiency");
        assert!(eff > 0.0 && eff <= 1.0 + 1e-12);
    }

    #[test]
    fn one_scheduler_reused_across_runs_stays_bit_identical() {
        // Regression: with_threads used to build a fresh rayon pool inside
        // every run call. The pool now lives in the scheduler; reusing one
        // scheduler (the serve service's pattern) must keep results and
        // accounting bit-identical to the first run.
        let jobs = jobgen::job_mix(&JobMixConfig {
            seed: 11,
            jobs: 9,
            m: 48,
            n: 12,
        });
        let sched = BatchScheduler::with_threads(3);
        let fingerprints = |out: &crate::scheduler::BatchOutcome| -> Vec<u64> {
            out.results.iter().map(crate::job::result_fingerprint).collect()
        };
        let pool_a = EnginePool::new(3, EngineConfig::default());
        let first = sched.run(&pool_a, &jobs);
        let pool_b = EnginePool::new(3, EngineConfig::default());
        let second = sched.run(&pool_b, &jobs);
        assert_eq!(fingerprints(&first), fingerprints(&second));
        assert_eq!(pool_a.fingerprint(), pool_b.fingerprint());
        // Clones share the same pool and agree too.
        let pool_c = EnginePool::new(3, EngineConfig::default());
        let third = sched.clone().run(&pool_c, &jobs);
        assert_eq!(fingerprints(&first), fingerprints(&third));
    }

    #[test]
    fn typed_errors_surface_per_job() {
        let pool = EnginePool::new(2, EngineConfig::default());
        let good = Job::rgsqrf(jobgen::gaussian_f32(32, 8, 1), RgsqrfConfig::default());
        let bad = Job::rgsqrf(
            jobgen::gaussian_f32(4, 8, 1), // wide: rejected
            RgsqrfConfig::default(),
        );
        let jobs = vec![BatchJob::from(good), BatchJob::from(bad)];
        let (results, report) = batch_solve(&pool, &jobs);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(TcqrError::ShapeMismatch { .. })
        ));
        assert_eq!(report.ok_jobs(), 1);
        assert_eq!(report.failed_jobs(), 1);
        assert!(report.jobs[1].error.as_deref().unwrap().contains("rgsqrf"));
    }
}
