//! Deterministic work-stealing execution of a heterogeneous job queue.
//!
//! ## How determinism survives work stealing
//!
//! The scheduler splits the queue into `S` *lanes* up front, one per
//! engine in rotation: queue position `i` belongs to lane `i mod S` and a
//! lane owns its engine exclusively. Each lane executes its jobs
//! sequentially in assignment order; rayon's work stealing moves whole
//! lanes between OS threads, never individual jobs. Since an engine's
//! clock, ledger, fault-injection schedule, and precision state are only
//! ever advanced from its own lane, nothing an engine computes depends on
//! *when* the host ran its lane — outputs and accounting are bit-identical
//! under 1, 2, or 64 workers.
//!
//! ## How determinism survives engine loss
//!
//! An availability crash (`tensor_engine::avail`) unwinds the lane at the
//! job boundary: the lane catches the [`EngineCrash`] payload, marks its
//! engine [`EngineHealth::Dead`](crate::EngineHealth), and reports the
//! crashed job plus the rest of its queue as *stranded*. When every lane
//! of the wave has joined, stranded indices — ascending — are dealt
//! round-robin over the surviving rotation and run as the next wave. The
//! re-dispatch is a pure permutation of the lane assignment (no job is
//! duplicated, none dropped), crashes fire off deterministic per-engine
//! op counters, and wave boundaries are joins, so the whole failover path
//! is as worker-count-independent as the healthy path. If the rotation
//! empties, every remaining job fails with the typed
//! [`TcqrError::EngineLost`].
//!
//! The inner solvers also use rayon, and stay deterministic for the same
//! structural reason: their parallel regions either write disjoint output
//! blocks or reduce integer counters, so no floating-point result depends
//! on the split.

use crate::fleet::{EngineReport, FleetReport, JobReport};
use crate::job::{BatchJob, Job, JobOutput};
use crate::pool::EnginePool;
use rayon::prelude::*;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use tcqr_core::{QrFactors, RgsqrfConfig, TcqrError};
use tensor_engine::EngineCrash;

/// Drains a queue of [`BatchJob`]s across an [`EnginePool`].
///
/// A scheduler built by [`BatchScheduler::with_threads`] owns its rayon
/// pool: the pool is constructed once, up front, and shared by every
/// [`BatchScheduler::run`] call (and every clone), so long-lived callers —
/// the `tcqr-serve` service, repeated bench batches — don't pay thread
/// spawn/teardown per batch.
#[derive(Clone, Default)]
pub struct BatchScheduler {
    /// Dedicated rayon pool; `None` runs on the ambient pool.
    pool: Option<std::sync::Arc<rayon::ThreadPool>>,
}

impl std::fmt::Debug for BatchScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchScheduler")
            .field(
                "threads",
                &self.pool.as_ref().map(|p| p.current_num_threads()),
            )
            .finish()
    }
}

/// Per-job results (submission order) plus the fleet-wide accounting.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One result per submitted job, in submission order.
    pub results: Vec<Result<JobOutput, TcqrError>>,
    /// Fleet accounting for the batch.
    pub report: FleetReport,
    /// Dispatch waves the batch needed (1 when no engine died).
    pub waves: usize,
    /// Stranded-job re-dispatches performed (0 when no engine died).
    pub failovers: u64,
}

/// One lane's mutable state while a wave runs.
struct Lane {
    engine: usize,
    /// Queue indices assigned to this lane, in submission order.
    jobs: Vec<usize>,
    /// Completed jobs, in lane execution order.
    done: Vec<DoneJob>,
    /// Engine clock when the lane started (pre-batch work, if any).
    clock_base: f64,
    /// Queue indices the engine stranded by crashing: the job it died
    /// under plus everything still queued behind it.
    stranded: Vec<usize>,
}

/// One completed job's accounting, recorded by the lane that ran it.
struct DoneJob {
    idx: usize,
    res: Result<JobOutput, TcqrError>,
    queue_wait_secs: f64,
    /// Absolute engine clock when the job began executing.
    start_secs: f64,
    exec_secs: f64,
    /// Fault-campaign deltas on the lane's engine across this job — the
    /// per-segment attribution the observability layer's recovery shading
    /// and fault-escape objectives consume.
    fault_injected: u64,
    fault_detected: u64,
    /// False for jobs that never executed (stranded with no survivors):
    /// they have a typed error but no timeline segment.
    ran: bool,
}

impl BatchScheduler {
    /// Scheduler running on the ambient rayon thread pool.
    pub fn new() -> Self {
        BatchScheduler { pool: None }
    }

    /// Scheduler running on a dedicated rayon pool of `n` threads
    /// (`n >= 1`), built here and reused across every subsequent
    /// [`BatchScheduler::run`]. Worker count affects wall time only —
    /// results are bit-identical either way.
    pub fn with_threads(n: usize) -> Self {
        assert!(n >= 1, "need at least one worker thread");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("building a rayon pool cannot fail with these options");
        BatchScheduler {
            pool: Some(std::sync::Arc::new(pool)),
        }
    }

    /// Run every job to completion (or a typed failure) and collect
    /// per-job results plus the [`FleetReport`].
    ///
    /// Queue position `i` runs on the `i mod S`-th engine in rotation
    /// (`i % pool.len()` when every engine is healthy); per-job recovery
    /// policies and precision overrides apply to that engine for exactly
    /// the job's lifetime. When an engine crashes mid-wave its stranded
    /// jobs are re-dispatched round-robin over the survivors (see the
    /// module docs); with an empty rotation they fail with
    /// [`TcqrError::EngineLost`]. Engine state (clock, ledger, fault
    /// budget) accumulates across the batch — call [`EnginePool::reset`]
    /// between batches if fresh accounting is wanted.
    pub fn run(&self, pool: &EnginePool, jobs: &[BatchJob]) -> BatchOutcome {
        let k = pool.len();
        let run_base: Vec<f64> = (0..k).map(|e| pool.engine(e).clock()).collect();
        // (realized engine, accounting) per submission index.
        let mut slots: Vec<Option<(usize, DoneJob)>> = (0..jobs.len()).map(|_| None).collect();
        let mut engine_jobs = vec![0usize; k];
        let mut pending: Vec<usize> = (0..jobs.len()).collect();
        // The engine each pending job was last stranded on, for the typed
        // error when the rotation empties.
        let mut last_engine: Vec<usize> = vec![0; jobs.len()];
        let mut waves = 0usize;
        let mut failovers = 0u64;

        while !pending.is_empty() {
            let alive = pool.alive_engines();
            if alive.is_empty() {
                for &idx in &pending {
                    let e = last_engine[idx];
                    slots[idx] = Some((
                        e,
                        DoneJob {
                            idx,
                            res: Err(TcqrError::EngineLost {
                                op: "batch",
                                engine: e,
                                detail: format!(
                                    "no engine in rotation to re-run stranded job {idx}"
                                ),
                            }),
                            queue_wait_secs: 0.0,
                            start_secs: 0.0,
                            exec_secs: 0.0,
                            fault_injected: 0,
                            fault_detected: 0,
                            ran: false,
                        },
                    ));
                }
                break;
            }
            if waves > 0 {
                failovers += pending.len() as u64;
            }
            let s = alive.len();
            let mut lanes: Vec<Lane> = alive
                .iter()
                .enumerate()
                .map(|(l, &e)| Lane {
                    engine: e,
                    jobs: pending.iter().copied().skip(l).step_by(s).collect(),
                    done: Vec::new(),
                    clock_base: 0.0,
                    stranded: Vec::new(),
                })
                .collect();

            let drain = |lanes: &mut Vec<Lane>| {
                lanes
                    .par_iter_mut()
                    .for_each(|lane| run_lane(lane, pool, jobs));
            };
            match &self.pool {
                None => drain(&mut lanes),
                Some(tp) => tp.install(|| drain(&mut lanes)),
            }

            // Harvest the wave: completed jobs into their slots, stranded
            // jobs (ascending) into the next wave's queue.
            pending.clear();
            for lane in lanes {
                engine_jobs[lane.engine] += lane.done.len();
                for done in lane.done {
                    let idx = done.idx;
                    slots[idx] = Some((lane.engine, done));
                }
                for &idx in &lane.stranded {
                    last_engine[idx] = lane.engine;
                }
                pending.extend(lane.stranded);
            }
            pending.sort_unstable();
            waves += 1;
        }

        let engines = (0..k)
            .map(|e| {
                let eng = pool.engine(e);
                EngineReport {
                    engine: e,
                    jobs: engine_jobs[e],
                    busy_secs: eng.clock() - run_base[e],
                    clock_secs: eng.clock(),
                    ledger: eng.ledger(),
                    counters: eng.counters(),
                    fault: eng.fault_stats(),
                }
            })
            .collect();

        let mut results = Vec::with_capacity(jobs.len());
        let mut job_reports = Vec::with_capacity(jobs.len());
        for (idx, slot) in slots.into_iter().enumerate() {
            let (engine, done) = slot.expect("every job completes or fails typed");
            job_reports.push(JobReport {
                index: idx,
                engine,
                kind: jobs[idx].job.kind(),
                shape: jobs[idx].job.shape(),
                ok: done.res.is_ok(),
                error: done.res.as_ref().err().map(|e| e.to_string()),
                queue_wait_secs: done.queue_wait_secs,
                start_secs: done.start_secs,
                exec_secs: done.exec_secs,
                fault_injected: done.fault_injected,
                fault_detected: done.fault_detected,
                ran: done.ran,
            });
            results.push(done.res);
        }

        BatchOutcome {
            results,
            report: FleetReport {
                jobs: job_reports,
                engines,
            },
            waves,
            failovers,
        }
    }
}

/// Execute one lane: its jobs, sequentially, on its own engine. An
/// [`EngineCrash`] unwinding out of a job marks the engine dead and
/// reports the crashed job plus the rest of the lane as stranded; any
/// other panic payload is a genuine bug and is resumed.
fn run_lane(lane: &mut Lane, pool: &EnginePool, jobs: &[BatchJob]) {
    let eng = pool.engine(lane.engine);
    lane.clock_base = eng.clock();
    for (pos, &idx) in lane.jobs.iter().enumerate() {
        let bj = &jobs[idx];
        let before = eng.clock();
        let fault_before = eng.fault_stats();
        // Install the tenant's precision override for the job's lifetime;
        // the recovery ladder saves/restores around its own escalations,
        // so the tenant default is back in force on every fresh attempt.
        let prev = eng.precision_override();
        if bj.precision.is_some() {
            eng.set_precision_override(bj.precision);
        }
        let res = match catch_unwind(AssertUnwindSafe(|| bj.job.run(eng, &bj.policy))) {
            Ok(res) => res,
            Err(payload) => {
                if payload.downcast_ref::<EngineCrash>().is_some() {
                    pool.mark_dead(lane.engine);
                    lane.stranded = lane.jobs[pos..].to_vec();
                    return;
                }
                resume_unwind(payload);
            }
        };
        if bj.precision.is_some() {
            eng.set_precision_override(prev);
        }
        if res.is_err() {
            pool.mark_degraded(lane.engine);
        }
        let after = eng.clock();
        let fault_after = eng.fault_stats();
        lane.done.push(DoneJob {
            idx,
            res,
            queue_wait_secs: before - lane.clock_base,
            start_secs: before,
            exec_secs: after - before,
            fault_injected: fault_after.injected.saturating_sub(fault_before.injected),
            fault_detected: fault_after.detected.saturating_sub(fault_before.detected),
            ran: true,
        });
    }
}

/// Batched QR: factor every `(a, cfg)` problem across the pool.
///
/// Convenience wrapper over [`BatchScheduler::run`] with default recovery
/// policies; results come back in submission order.
pub fn batch_rgsqrf(
    pool: &EnginePool,
    problems: Vec<(densemat::Mat<f32>, RgsqrfConfig)>,
) -> (Vec<Result<QrFactors, TcqrError>>, FleetReport) {
    let jobs: Vec<BatchJob> = problems
        .into_iter()
        .map(|(a, cfg)| BatchJob::from(Job::rgsqrf(a, cfg)))
        .collect();
    let out = BatchScheduler::new().run(pool, &jobs);
    let factors = out
        .results
        .into_iter()
        .map(|r| {
            r.map(|o| match o {
                JobOutput::Qr(f) => f,
                _ => unreachable!("rgsqrf jobs produce QR factors"),
            })
        })
        .collect();
    (factors, out.report)
}

/// Batched heterogeneous solve: drain `jobs` across the pool on the
/// ambient rayon thread pool.
pub fn batch_solve(
    pool: &EnginePool,
    jobs: &[BatchJob],
) -> (Vec<Result<JobOutput, TcqrError>>, FleetReport) {
    let out = BatchScheduler::new().run(pool, jobs);
    (out.results, out.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobgen::{self, JobMixConfig};
    use tensor_engine::EngineConfig;

    #[test]
    fn round_robin_assignment_and_order() {
        let pool = EnginePool::new(3, EngineConfig::default());
        let jobs = jobgen::job_mix(&JobMixConfig {
            seed: 2,
            jobs: 7,
            m: 48,
            n: 12,
        });
        let out = BatchScheduler::with_threads(2).run(&pool, &jobs);
        assert_eq!(out.results.len(), 7);
        for (i, j) in out.report.jobs.iter().enumerate() {
            assert_eq!(j.index, i);
            assert_eq!(j.engine, i % 3);
        }
        // Lane loads: 3, 2, 2.
        let loads: Vec<usize> = out.report.engines.iter().map(|e| e.jobs).collect();
        assert_eq!(loads, vec![3, 2, 2]);
        // Queue waits within a lane are non-decreasing in submission order.
        for e in 0..3 {
            let waits: Vec<f64> = out
                .report
                .jobs
                .iter()
                .filter(|j| j.engine == e)
                .map(|j| j.queue_wait_secs)
                .collect();
            assert!(waits.windows(2).all(|w| w[0] <= w[1]), "{waits:?}");
            assert_eq!(waits.first().copied().unwrap_or(0.0), 0.0);
        }
    }

    #[test]
    fn batch_rgsqrf_returns_factors() {
        let pool = EnginePool::new(2, EngineConfig::default());
        let cfg = RgsqrfConfig {
            cutoff: 16,
            caqr_width: 4,
            ..RgsqrfConfig::default()
        };
        let problems = (0..4)
            .map(|i| (jobgen::gaussian_f32(40, 10, 100 + i), cfg))
            .collect();
        let (factors, report) = batch_rgsqrf(&pool, problems);
        assert_eq!(factors.len(), 4);
        for f in &factors {
            let f = f.as_ref().expect("well-posed problems factor");
            assert_eq!(f.q.ncols(), 10);
            assert_eq!(f.r.nrows(), 10);
        }
        assert_eq!(report.ok_jobs(), 4);
        assert!(report.makespan_secs() > 0.0);
        let eff = report.efficiency().expect("non-empty batch has a defined efficiency");
        assert!(eff > 0.0 && eff <= 1.0 + 1e-12);
    }

    #[test]
    fn one_scheduler_reused_across_runs_stays_bit_identical() {
        // Regression: with_threads used to build a fresh rayon pool inside
        // every run call. The pool now lives in the scheduler; reusing one
        // scheduler (the serve service's pattern) must keep results and
        // accounting bit-identical to the first run.
        let jobs = jobgen::job_mix(&JobMixConfig {
            seed: 11,
            jobs: 9,
            m: 48,
            n: 12,
        });
        let sched = BatchScheduler::with_threads(3);
        let fingerprints = |out: &crate::scheduler::BatchOutcome| -> Vec<u64> {
            out.results.iter().map(crate::job::result_fingerprint).collect()
        };
        let pool_a = EnginePool::new(3, EngineConfig::default());
        let first = sched.run(&pool_a, &jobs);
        let pool_b = EnginePool::new(3, EngineConfig::default());
        let second = sched.run(&pool_b, &jobs);
        assert_eq!(fingerprints(&first), fingerprints(&second));
        assert_eq!(pool_a.fingerprint(), pool_b.fingerprint());
        // Clones share the same pool and agree too.
        let pool_c = EnginePool::new(3, EngineConfig::default());
        let third = sched.clone().run(&pool_c, &jobs);
        assert_eq!(fingerprints(&first), fingerprints(&third));
    }

    #[test]
    fn failover_redispatches_stranded_jobs_bit_identically() {
        use crate::job::result_fingerprint;
        use crate::pool::EngineHealth;
        use tensor_engine::EngineFaultPlan;

        let mix = JobMixConfig {
            seed: 5,
            jobs: 9,
            m: 48,
            n: 12,
        };
        // Healthy-pool oracle: same jobs, no chaos.
        let oracle_pool = EnginePool::new(3, EngineConfig::default());
        let oracle = BatchScheduler::with_threads(1).run(&oracle_pool, &jobgen::job_mix(&mix));
        assert_eq!(oracle.waves, 1);
        assert_eq!(oracle.failovers, 0);

        let chaos = |threads: usize| {
            let pool = EnginePool::new(3, EngineConfig::default());
            pool.set_avail_plan(1, Some(EngineFaultPlan::crash_at(5)));
            let out = BatchScheduler::with_threads(threads).run(&pool, &jobgen::job_mix(&mix));
            assert_eq!(pool.health(1), EngineHealth::Dead);
            out
        };
        let out = chaos(2);
        assert!(out.waves >= 2, "the crash must force a re-dispatch wave");
        assert!(out.failovers >= 1);
        // Zero lost, zero duplicated: exactly one result per submission
        // slot, and every completed output is bit-identical to the
        // healthy-pool oracle wherever it ended up running.
        assert_eq!(out.results.len(), 9);
        for (r, o) in out.results.iter().zip(&oracle.results) {
            assert!(r.is_ok(), "{r:?}");
            assert_eq!(result_fingerprint(r), result_fingerprint(o));
        }
        // No job reports engine 1 after its death wave beyond what it
        // completed, and realized engines are recorded.
        for j in &out.report.jobs {
            assert!(j.ran);
            assert!(j.engine < 3);
        }
        // Worker count changes nothing: the failover permutation is pure.
        let out1 = chaos(1);
        let fp = |o: &BatchOutcome| -> Vec<u64> { o.results.iter().map(result_fingerprint).collect() };
        assert_eq!(fp(&out), fp(&out1));
        assert_eq!(out.waves, out1.waves);
        assert_eq!(out.failovers, out1.failovers);
    }

    #[test]
    fn empty_rotation_fails_typed_not_lost() {
        use tensor_engine::EngineFaultPlan;
        let pool = EnginePool::new(1, EngineConfig::default());
        pool.set_avail_plan(0, Some(EngineFaultPlan::crash_at(0)));
        let jobs = jobgen::job_mix(&JobMixConfig {
            seed: 3,
            jobs: 3,
            m: 32,
            n: 8,
        });
        let out = BatchScheduler::new().run(&pool, &jobs);
        assert_eq!(out.results.len(), 3, "no ticket is lost");
        for (i, r) in out.results.iter().enumerate() {
            match r {
                Err(TcqrError::EngineLost { op, engine, .. }) => {
                    assert_eq!(*op, "batch");
                    assert_eq!(*engine, 0);
                }
                other => panic!("job {i}: expected EngineLost, got {other:?}"),
            }
            assert!(!out.report.jobs[i].ran);
        }
        assert_eq!(out.report.failed_jobs(), 3);
    }

    #[test]
    fn typed_errors_surface_per_job() {
        let pool = EnginePool::new(2, EngineConfig::default());
        let good = Job::rgsqrf(jobgen::gaussian_f32(32, 8, 1), RgsqrfConfig::default());
        let bad = Job::rgsqrf(
            jobgen::gaussian_f32(4, 8, 1), // wide: rejected
            RgsqrfConfig::default(),
        );
        let jobs = vec![BatchJob::from(good), BatchJob::from(bad)];
        let (results, report) = batch_solve(&pool, &jobs);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(TcqrError::ShapeMismatch { .. })
        ));
        assert_eq!(report.ok_jobs(), 1);
        assert_eq!(report.failed_jobs(), 1);
        assert!(report.jobs[1].error.as_deref().unwrap().contains("rgsqrf"));
    }
}
