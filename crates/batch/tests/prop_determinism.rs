//! Property test over job mixes: for any seeded mix, pool size, and
//! per-tenant precision overrides, running under 1, 2, and 8 workers
//! produces bit-identical outputs, ledgers, and per-engine clocks.

use proptest::prelude::*;
use tcqr_batch::job::result_fingerprint;
use tcqr_batch::jobgen::{self, JobMixConfig};
use tcqr_batch::{BatchJob, BatchScheduler, EnginePool};
use tensor_engine::{EngineConfig, FaultPlan, PrecisionOverride};

fn run_once(
    jobs: &[BatchJob],
    engines: usize,
    threads: usize,
    plan: Option<&FaultPlan>,
) -> (Vec<u64>, u64) {
    let pool = EnginePool::new(engines, EngineConfig::default());
    if let Some(p) = plan {
        pool.arm(p);
    }
    let out = BatchScheduler::with_threads(threads).run(&pool, jobs);
    let fps = out.results.iter().map(result_fingerprint).collect();
    (fps, pool.fingerprint())
}

proptest! {
    // Each case factors several matrices through the full solver stack;
    // keep the case count modest so the suite stays in CI budget.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_job_mix_is_scheduling_invariant(
        seed in 0u64..10_000,
        njobs in 1usize..10,
        engines in 1usize..5,
        m in 32usize..80,
        n in 4usize..16,
        override_mask in any::<u16>(),
        armed in any::<bool>(),
    ) {
        let mut jobs = jobgen::job_mix(&JobMixConfig { seed, jobs: njobs, m, n });
        // Sprinkle per-tenant precision overrides from the mask.
        for (i, job) in jobs.iter_mut().enumerate() {
            job.precision = match (override_mask >> (2 * (i % 8))) & 0b11 {
                1 => Some(PrecisionOverride::Bf16),
                2 => Some(PrecisionOverride::Fp32),
                _ => None,
            };
        }
        let plan = FaultPlan { period: 4, ..FaultPlan::all(seed ^ 0xfa417) };
        let plan = armed.then_some(&plan);

        let (fp1, pool1) = run_once(&jobs, engines, 1, plan);
        let (fp2, pool2) = run_once(&jobs, engines, 2, plan);
        let (fp8, pool8) = run_once(&jobs, engines, 8, plan);

        prop_assert_eq!(&fp1, &fp2, "outputs differ between 1 and 2 workers");
        prop_assert_eq!(&fp1, &fp8, "outputs differ between 1 and 8 workers");
        prop_assert_eq!(pool1, pool2, "accounting differs between 1 and 2 workers");
        prop_assert_eq!(pool1, pool8, "accounting differs between 1 and 8 workers");
    }
}
