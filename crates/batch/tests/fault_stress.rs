//! Concurrency fault stress: a fault-armed campaign across the pool must
//! detect every injected fault, recover every job, and never bleed one
//! tenant's fault plan into a neighbor's engine.

use tcqr_batch::job::result_fingerprint;
use tcqr_batch::jobgen::{self, JobMixConfig};
use tcqr_batch::{BatchScheduler, EnginePool};
use tensor_engine::{EngineConfig, FaultPlan};

fn mix(seed: u64, jobs: usize) -> Vec<tcqr_batch::BatchJob> {
    jobgen::job_mix(&JobMixConfig {
        seed,
        jobs,
        m: 80,
        n: 20,
    })
}

#[test]
fn armed_campaign_has_zero_escapes_fleet_wide() {
    let jobs = mix(77, 12);
    let pool = EnginePool::new(4, EngineConfig::default());
    pool.arm(&FaultPlan {
        period: 3,
        ..FaultPlan::all(999)
    });
    let out = BatchScheduler::with_threads(8).run(&pool, &jobs);

    // The default recovery ladder ends in an injection-free f32 rung, so
    // every job must come back clean.
    for (i, r) in out.results.iter().enumerate() {
        assert!(r.is_ok(), "job {i} failed under recovery: {:?}", r.as_ref().err());
    }
    // Fleet-wide ABFT: every injected fault was detected (zero escapes).
    let totals = out.report.fault_totals();
    assert!(totals.injected > 0, "campaign injected nothing — not a stress test");
    assert_eq!(
        totals.injected, totals.detected,
        "escaped faults: {} injected vs {} detected",
        totals.injected, totals.detected
    );
    // And per engine, not just in aggregate.
    for e in &out.report.engines {
        assert_eq!(
            e.fault.injected, e.fault.detected,
            "engine {} let a fault escape",
            e.engine
        );
    }
}

/// Jobs that are guaranteed to run TensorCore GEMMs (recursion above the
/// cutoff with trailing updates), so an armed engine always has injection
/// sites.
fn tc_heavy_jobs(n_jobs: usize) -> Vec<tcqr_batch::BatchJob> {
    use tcqr_batch::Job;
    use tcqr_core::RgsqrfConfig;
    (0..n_jobs)
        .map(|i| {
            tcqr_batch::BatchJob::from(Job::rgsqrf(
                jobgen::gaussian_f32(160, 48, 900 + i as u64),
                RgsqrfConfig {
                    cutoff: 16,
                    caqr_width: 8,
                    ..RgsqrfConfig::default()
                },
            ))
        })
        .collect()
}

#[test]
fn fault_plans_do_not_bleed_across_engines() {
    let jobs = tc_heavy_jobs(8);

    // Reference: a completely unarmed fleet.
    let clean_pool = EnginePool::new(4, EngineConfig::default());
    let clean = BatchScheduler::with_threads(4).run(&clean_pool, &jobs);

    // Same fleet, but only engine 1 is armed.
    let pool = EnginePool::new(4, EngineConfig::default());
    pool.set_fault_plan(1, Some(FaultPlan::all(555)));
    let out = BatchScheduler::with_threads(4).run(&pool, &jobs);

    for (i, (a, b)) in clean.results.iter().zip(&out.results).enumerate() {
        if i % 4 == 1 {
            // The armed tenant's jobs may take the recovery ladder; they
            // must still succeed.
            assert!(b.is_ok(), "armed-engine job {i} failed: {:?}", b.as_ref().err());
        } else {
            // Unarmed engines must be bit-identical to the clean fleet —
            // a neighbor's campaign is invisible.
            assert_eq!(
                result_fingerprint(a),
                result_fingerprint(b),
                "job {i} on an unarmed engine changed because engine 1 was armed"
            );
        }
    }
    // No injections outside engine 1.
    let stats = pool.fault_stats();
    for (e, s) in stats.iter().enumerate() {
        if e == 1 {
            assert!(s.injected > 0, "armed engine never injected");
            assert_eq!(s.injected, s.detected, "engine 1 let a fault escape");
        } else {
            assert_eq!(s.injected, 0, "fault plan bled into engine {e}");
        }
    }
}

#[test]
fn repeated_armed_batches_are_reproducible() {
    // Stress the whole path twice from scratch: same seeds, same plans,
    // same worker count — the campaign (injections included) must replay
    // bit-for-bit.
    let jobs = mix(13, 10);
    let run = || {
        let pool = EnginePool::new(3, EngineConfig::default());
        pool.arm(&FaultPlan::all(4242));
        let out = BatchScheduler::with_threads(8).run(&pool, &jobs);
        let fps: Vec<u64> = out.results.iter().map(result_fingerprint).collect();
        (fps, pool.fingerprint())
    };
    let (fp_a, pool_a) = run();
    let (fp_b, pool_b) = run();
    assert_eq!(fp_a, fp_b);
    assert_eq!(pool_a, pool_b);
}
