//! Scheduling-determinism contract: the same job set produces bit-identical
//! outputs, ledgers, and per-engine clocks under 1, 2, and 8 workers.

use tcqr_batch::job::result_fingerprint;
use tcqr_batch::jobgen::{self, JobMixConfig};
use tcqr_batch::{BatchScheduler, EnginePool};
use tcqr_core::{RecoveryPolicy, Rung};
use tensor_engine::{EngineConfig, FaultPlan, PrecisionOverride};

/// Run `jobs` on a fresh pool of `engines` with `threads` workers and
/// return (per-job result fingerprints, pool accounting fingerprint).
fn run_once(
    jobs: &[tcqr_batch::BatchJob],
    engines: usize,
    threads: usize,
    arm: Option<&FaultPlan>,
) -> (Vec<u64>, u64) {
    let pool = EnginePool::new(engines, EngineConfig::default());
    if let Some(plan) = arm {
        pool.arm(plan);
    }
    let out = BatchScheduler::with_threads(threads).run(&pool, jobs);
    let fps = out.results.iter().map(result_fingerprint).collect();
    (fps, pool.fingerprint())
}

#[test]
fn worker_count_never_changes_results() {
    let jobs = jobgen::job_mix(&JobMixConfig {
        seed: 42,
        jobs: 13,
        m: 96,
        n: 24,
    });
    for engines in [1, 3] {
        let (fp1, pool1) = run_once(&jobs, engines, 1, None);
        let (fp2, pool2) = run_once(&jobs, engines, 2, None);
        let (fp8, pool8) = run_once(&jobs, engines, 8, None);
        assert_eq!(fp1, fp2, "outputs differ between 1 and 2 workers");
        assert_eq!(fp1, fp8, "outputs differ between 1 and 8 workers");
        assert_eq!(pool1, pool2, "clocks/ledgers differ between 1 and 2 workers");
        assert_eq!(pool1, pool8, "clocks/ledgers differ between 1 and 8 workers");
    }
}

#[test]
fn worker_count_never_changes_results_under_faults() {
    // A fault-armed fleet exercises the recovery ladder (retries, rescale,
    // precision escalation) — all of it must stay scheduling-independent.
    let jobs = jobgen::job_mix(&JobMixConfig {
        seed: 7,
        jobs: 9,
        m: 80,
        n: 20,
    });
    let plan = FaultPlan::all(1234);
    let (fp1, pool1) = run_once(&jobs, 3, 1, Some(&plan));
    let (fp8, pool8) = run_once(&jobs, 3, 8, Some(&plan));
    assert_eq!(fp1, fp8, "fault-armed outputs depend on worker count");
    assert_eq!(pool1, pool8, "fault-armed accounting depends on worker count");
}

#[test]
fn ambient_pool_matches_dedicated_pools() {
    let jobs = jobgen::job_mix(&JobMixConfig {
        seed: 5,
        jobs: 6,
        m: 64,
        n: 16,
    });
    let pool_a = EnginePool::new(2, EngineConfig::default());
    let out_a = BatchScheduler::new().run(&pool_a, &jobs);
    let (fp1, pool1) = run_once(&jobs, 2, 1, None);
    let fps_a: Vec<u64> = out_a.results.iter().map(result_fingerprint).collect();
    assert_eq!(fps_a, fp1);
    assert_eq!(pool_a.fingerprint(), pool1);
}

#[test]
fn per_tenant_precision_overrides_are_scoped_to_the_job() {
    let mut jobs = jobgen::job_mix(&JobMixConfig {
        seed: 19,
        jobs: 4,
        m: 64,
        n: 16,
    });
    // Tenant 2 insists on f32 (no half rounding at all for its job).
    jobs[2].precision = Some(PrecisionOverride::Fp32);
    jobs[2].policy = RecoveryPolicy {
        max_retries: 1,
        escalation: vec![Rung::Recompute],
        ..RecoveryPolicy::default()
    };

    let pool = EnginePool::new(2, EngineConfig::default());
    let out = BatchScheduler::with_threads(2).run(&pool, &jobs);
    assert!(out.results.iter().all(|r| r.is_ok()));
    // The override must not leak: engines report no precision override
    // once the batch is done.
    for eng in pool.engines() {
        assert_eq!(eng.precision_override(), None);
    }
    // And the overridden schedule is still deterministic.
    let pool2 = EnginePool::new(2, EngineConfig::default());
    let out2 = BatchScheduler::with_threads(8).run(&pool2, &jobs);
    let a: Vec<u64> = out.results.iter().map(result_fingerprint).collect();
    let b: Vec<u64> = out2.results.iter().map(result_fingerprint).collect();
    assert_eq!(a, b);
    assert_eq!(pool.fingerprint(), pool2.fingerprint());
}

#[test]
fn pool_size_changes_schedule_but_not_per_job_math() {
    // Different pool sizes assign jobs to different engines, so clocks and
    // queue waits legitimately change — but each job's numerical output is
    // the same because every engine is an identical, isolated simulator.
    let jobs = jobgen::job_mix(&JobMixConfig {
        seed: 23,
        jobs: 8,
        m: 64,
        n: 16,
    });
    let (fp_k1, _) = run_once(&jobs, 1, 4, None);
    let (fp_k4, _) = run_once(&jobs, 4, 4, None);
    assert_eq!(fp_k1, fp_k4, "job outputs must not depend on pool size");
}
